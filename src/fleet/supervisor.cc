#include "fleet/supervisor.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include "common/parallel.h"
#include "control/adaptive_retuner.h"
#include "control/fault_tolerant_executor.h"
#include "durability/crc32c.h"
#include "durability/serialize.h"
#include "durability/snapshot.h"
#include "obs/obs.h"
#include "spec/job_spec.h"
#include "tuning/repetition_allocator.h"

namespace htune {

namespace {

Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return OkStatus();
  }
  return InternalError("fleet: cannot create directory " + path + ": " +
                       std::strerror(errno));
}

/// Parses "jobs/<id>.journal" back to its job id; false for anything else.
bool ParseJournalPathId(const std::string& path, uint64_t* job_id) {
  constexpr std::string_view kPrefix = "jobs/";
  constexpr std::string_view kSuffix = ".journal";
  if (path.size() <= kPrefix.size() + kSuffix.size() ||
      path.compare(0, kPrefix.size(), kPrefix) != 0 ||
      path.compare(path.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return false;
  }
  const std::string digits = path.substr(
      kPrefix.size(), path.size() - kPrefix.size() - kSuffix.size());
  if (digits.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *job_id = value;
  return true;
}

/// Canonical byte encoding of a FaultTolerantReport, for bitwise
/// comparison against a reference run and for the completion digest.
std::string EncodeFaultTolerantReport(const FaultTolerantReport& report) {
  Encoder e;
  e.PutDouble(report.latency);
  e.PutI64(report.spent);
  e.PutI32(report.reviews);
  e.PutI32(report.stragglers);
  e.PutI32(report.escalations);
  e.PutI32(report.abandoned_attempts);
  e.PutI32(report.expired_posts);
  e.PutBool(report.degraded);
  e.PutI32(report.floor_repetitions);
  e.PutBool(report.deadline_expired);
  e.PutU64(report.answers.size());
  for (const std::vector<int>& per_question : report.answers) {
    e.PutI32Vector(per_question);
  }
  return e.Release();
}

std::string EncodeRetunerReport(const RetunerReport& report) {
  Encoder e;
  e.PutDouble(report.latency);
  e.PutI64(report.spent);
  e.PutI32(report.retunes);
  e.PutI32(report.reviews);
  e.PutDoubleVector(report.final_scale);
  e.PutI32Vector(report.final_prices);
  return e.Release();
}

}  // namespace

// ---------------------------------------------------------------------------
// Storage providers

StatusOr<JournalStorage*> InMemoryFleetStorage::Storage(
    const std::string& path) {
  MutexLock lock(mu_);
  auto it = storages_.find(path);
  if (it == storages_.end()) {
    it = storages_
             .emplace(path, std::make_unique<InMemoryJournalStorage>())
             .first;
  }
  return static_cast<JournalStorage*>(it->second.get());
}

StatusOr<std::vector<std::string>> InMemoryFleetStorage::ListJournals() {
  MutexLock lock(mu_);
  std::vector<std::string> paths;
  for (const auto& [path, storage] : storages_) {
    if (path.compare(0, 5, "jobs/") == 0 && !storage->bytes().empty()) {
      paths.push_back(path);
    }
  }
  return paths;
}

InMemoryJournalStorage* InMemoryFleetStorage::Find(const std::string& path) {
  MutexLock lock(mu_);
  const auto it = storages_.find(path);
  return it == storages_.end() ? nullptr : it->second.get();
}

StatusOr<JournalStorage*> FileFleetStorage::Storage(const std::string& path) {
  MutexLock lock(mu_);
  if (!dirs_ready_) {
    HTUNE_RETURN_IF_ERROR(MakeDir(root_));
    HTUNE_RETURN_IF_ERROR(MakeDir(root_ + "/jobs"));
    dirs_ready_ = true;
  }
  auto it = storages_.find(path);
  if (it == storages_.end()) {
    it = storages_
             .emplace(path,
                      std::make_unique<FileJournalStorage>(root_ + "/" + path))
             .first;
  }
  return static_cast<JournalStorage*>(it->second.get());
}

StatusOr<std::vector<std::string>> FileFleetStorage::ListJournals() {
  const std::string dir = root_ + "/jobs";
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    if (errno == ENOENT) {
      return std::vector<std::string>();  // fresh fleet directory
    }
    return InternalError("fleet: cannot list " + dir + ": " +
                         std::strerror(errno));
  }
  std::vector<std::string> paths;
  for (;;) {
    errno = 0;
    const struct dirent* entry = ::readdir(handle);
    if (entry == nullptr) {
      break;
    }
    const std::string name = entry->d_name;
    if (name == "." || name == "..") {
      continue;
    }
    struct stat st;
    const std::string full = dir + "/" + name;
    if (::stat(full.c_str(), &st) == 0 && st.st_size > 0) {
      paths.push_back("jobs/" + name);
    }
  }
  ::closedir(handle);
  std::sort(paths.begin(), paths.end());
  return paths;
}

// ---------------------------------------------------------------------------
// Config

Status ValidateFleetConfig(const FleetConfig& config) {
  if (config.max_running < 1) {
    return InvalidArgumentError("FleetConfig: max_running must be >= 1, got " +
                                std::to_string(config.max_running));
  }
  if (config.max_admitted < 0) {
    return InvalidArgumentError("FleetConfig: max_admitted must be >= 0, got " +
                                std::to_string(config.max_admitted));
  }
  if (config.watchdog_stall_limit < 1) {
    return InvalidArgumentError(
        "FleetConfig: watchdog_stall_limit must be >= 1, got " +
        std::to_string(config.watchdog_stall_limit));
  }
  HTUNE_RETURN_IF_ERROR(ValidateRetryPolicy(config.restart));
  HTUNE_RETURN_IF_ERROR(ValidateRetryPolicy(config.journal_retry));
  HTUNE_RETURN_IF_ERROR(ValidateRetryPolicy(config.market_retry));
  HTUNE_RETURN_IF_ERROR(ValidateCircuitBreakerConfig(config.breaker));
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Supervisor

struct FleetSupervisor::Outcome {
  enum class Kind {
    /// Completed with a verified report.
    kDone,
    /// Transient failure (controller parked / retries exhausted): eligible
    /// for restart or a watchdog hang verdict.
    kTransient,
    /// Poison: terminal quarantine with `detail` as the diagnostic.
    kQuarantine,
    /// The injected whole-process kill (or an unrecoverable storage
    /// error): the fleet stops as a unit.
    kFleetDead,
  };

  Kind kind = Kind::kFleetDead;
  Status status = OkStatus();
  std::string detail;
  /// Durable journal mark after the run (valid prefix bytes).
  uint64_t journal_bytes = 0;
  /// True when the run grew the journal past its starting mark.
  bool progressed = false;
  FleetJobResult result;
};

FleetSupervisor::FleetSupervisor(FleetStorageProvider* provider,
                                 FleetConfig config)
    : provider_(provider),
      config_(std::move(config)),
      breaker_(config_.breaker),
      restart_jitter_(config_.seed) {}

FleetSupervisor::~FleetSupervisor() = default;

Status FleetSupervisor::Open() {
  MutexLock lock(mu_);
  if (manifest_ != nullptr) {
    return FailedPreconditionError("fleet: Open called twice");
  }
  HTUNE_ASSIGN_OR_RETURN(JournalStorage * raw,
                         provider_->Storage(FleetManifestFileName()));
  JournalStorage* storage = raw;
  if (config_.decorate_storage) {
    storage = config_.decorate_storage(0, raw);
  }
  HTUNE_ASSIGN_OR_RETURN(FleetManifest manifest, FleetManifest::Open(storage));
  manifest_ = std::make_unique<FleetManifest>(std::move(manifest));
  if (config_.journal_retry.max_attempts > 1) {
    manifest_->EnableRetry(config_.journal_retry, config_.seed ^ 0x4d414e49ULL);
  }
  PublishGauges();
  return OkStatus();
}

Status FleetSupervisor::Recover() {
  HTUNE_RETURN_IF_ERROR(Open());
  MutexLock lock(mu_);
  // Journals with no manifest job: the manifest lost (at least) those kJob
  // records to a torn tail. The spec is gone, so the job cannot be re-run;
  // record the quarantine durably so the journal is never misattributed to
  // a future job reusing the id.
  HTUNE_ASSIGN_OR_RETURN(const std::vector<std::string> journals,
                         provider_->ListJournals());
  for (const std::string& path : journals) {
    uint64_t job_id = 0;
    if (!ParseJournalPathId(path, &job_id)) {
      continue;
    }
    if (manifest_->jobs().count(job_id) != 0) {
      continue;
    }
    HTUNE_RETURN_IF_ERROR(manifest_->AppendState(
        job_id, FleetJobState::kQuarantined, 0, 0,
        "orphan journal: manifest holds no job record (truncated manifest "
        "tail); spec unrecoverable"));
    orphans_.push_back(job_id);
    HTUNE_OBS_COUNTER_ADD("fleet.quarantines", 1);
  }
  if (!orphans_.empty()) {
    HTUNE_RETURN_IF_ERROR(manifest_->Flush());
  }
  return OkStatus();
}

StatusOr<uint64_t> FleetSupervisor::Submit(const FleetJobSpec& spec) {
  MutexLock lock(mu_);
  if (manifest_ == nullptr) {
    return FailedPreconditionError("fleet: Submit before Open");
  }
  uint64_t job_id = manifest_->next_job_id();
  for (const uint64_t orphan : orphans_) {
    job_id = std::max(job_id, orphan + 1);
  }
  if (config_.max_admitted > 0) {
    // Admission control: count the backlog (jobs admitted but not yet
    // terminal). Running jobs are not shed — shedding only ever cancels
    // work that has not started.
    std::vector<std::pair<int, uint64_t>> pending;  // (priority, id)
    for (const auto& [id, entry] : manifest_->jobs()) {
      if (entry.state == FleetJobState::kPending) {
        pending.emplace_back(entry.spec.priority, id);
      }
    }
    const int backlog = static_cast<int>(pending.size());
    if (backlog >= config_.max_admitted) {
      // Admitting the newcomer must leave the backlog at or under the cap,
      // so backlog - max_admitted + 1 victims have to go. The backlog can
      // already sit past the cap (a fleet reopened with a smaller
      // max_admitted), so the need is not always exactly one — shedding a
      // single victim there would admit past the cap. Shedding is
      // all-or-nothing: every victim must be strictly outranked by the
      // newcomer, or the newcomer is rejected and the backlog keeps every
      // job it had (a rejection never costs a pending job).
      const size_t need =
          static_cast<size_t>(backlog - config_.max_admitted) + 1;
      // Shed order: lowest priority first, youngest (highest id) among
      // ties — fairness keeps older equal-priority work ahead of newer.
      std::sort(pending.begin(), pending.end(),
                [](const std::pair<int, uint64_t>& a,
                   const std::pair<int, uint64_t>& b) {
                  if (a.first != b.first) return a.first < b.first;
                  return a.second > b.second;
                });
      bool outranks_enough = pending.size() >= need;
      for (size_t i = 0; outranks_enough && i < need; ++i) {
        outranks_enough = pending[i].first < spec.priority;
      }
      if (!outranks_enough) {
        HTUNE_OBS_COUNTER_ADD("fleet.admission_rejects", 1);
        return ResourceExhaustedError(
            "fleet admission: backlog full (" + std::to_string(backlog) +
            " pending >= max_admitted " +
            std::to_string(config_.max_admitted) + ") and priority " +
            std::to_string(spec.priority) + " does not outrank the " +
            std::to_string(need) + " lowest-priority pending job(s)");
      }
      for (size_t i = 0; i < need; ++i) {
        HTUNE_RETURN_IF_ERROR(Transition(
            pending[i].second, FleetJobState::kShed, 0, 0,
            "shed: admission control preferred job " +
                std::to_string(job_id) + " (priority " +
                std::to_string(spec.priority) + " > " +
                std::to_string(pending[i].first) + ")"));
        HTUNE_OBS_COUNTER_ADD("fleet.shed", 1);
      }
    }
  }
  HTUNE_RETURN_IF_ERROR(manifest_->AppendJob(job_id, spec));
  PublishGauges();
  return job_id;
}

std::map<uint64_t, ManifestJobEntry> FleetSupervisor::jobs() const {
  MutexLock lock(mu_);
  if (manifest_ == nullptr) {
    return {};
  }
  return manifest_->jobs();
}

Status FleetSupervisor::Transition(uint64_t job_id, FleetJobState state,
                                   int32_t restarts, uint64_t journal_bytes,
                                   const std::string& detail) {
  HTUNE_RETURN_IF_ERROR(
      manifest_->AppendState(job_id, state, restarts, journal_bytes, detail));
  // Every edge is made durable immediately: the manifest must never claim
  // less than what the fleet believes (the recovery contract compares the
  // journal against the recorded mark).
  HTUNE_RETURN_IF_ERROR(manifest_->Flush());
  PublishGauges();
  return OkStatus();
}

void FleetSupervisor::PublishGauges() {
  int pending = 0, running = 0, parked = 0, quarantined = 0, done = 0;
  for (const auto& [id, entry] : manifest_->jobs()) {
    switch (entry.state) {
      case FleetJobState::kPending:
        ++pending;
        break;
      case FleetJobState::kRunning:
        ++running;
        break;
      case FleetJobState::kParked:
        ++parked;
        break;
      case FleetJobState::kQuarantined:
        ++quarantined;
        break;
      case FleetJobState::kDone:
        ++done;
        break;
      case FleetJobState::kShed:
        break;
    }
  }
  HTUNE_OBS_GAUGE_SET("fleet.jobs_pending", pending);
  HTUNE_OBS_GAUGE_SET("fleet.jobs_running", running);
  HTUNE_OBS_GAUGE_SET("fleet.jobs_parked", parked);
  HTUNE_OBS_GAUGE_SET("fleet.jobs_quarantined", quarantined);
  HTUNE_OBS_GAUGE_SET("fleet.jobs_done", done);
}

StatusOr<JournalStorage*> FleetSupervisor::JobStorage(uint64_t job_id) {
  const auto cached = job_storage_.find(job_id);
  if (cached != job_storage_.end()) {
    return cached->second;
  }
  HTUNE_ASSIGN_OR_RETURN(JournalStorage * raw,
                         provider_->Storage(FleetJobJournalPath(job_id)));
  JournalStorage* storage = raw;
  if (config_.decorate_storage) {
    storage = config_.decorate_storage(job_id, raw);
  }
  job_storage_[job_id] = storage;
  return storage;
}

void FleetSupervisor::MarkDead(const Status& status) {
  if (!fleet_dead_) {
    fleet_dead_ = true;
    death_status_ = status;
  }
  ready_cv_.NotifyAll();
}

StatusOr<FleetRunStats> FleetSupervisor::RunAll() {
  FleetRunStats stats;
  {
    MutexLock lock(mu_);
    if (manifest_ == nullptr) {
      return FailedPreconditionError("fleet: RunAll before Open");
    }
    fleet_dead_ = false;
    death_status_ = OkStatus();
    ready_.clear();
    for (const auto& [job_id, entry] : manifest_->jobs()) {
      const bool runnable =
          entry.state == FleetJobState::kPending ||
          entry.state == FleetJobState::kRunning ||
          (config_.resume_parked && entry.state == FleetJobState::kParked);
      if (runnable) {
        ready_.push_back(job_id);
      }
    }
    // Highest priority first, submission order within a priority. The
    // queue is consumed from the front.
    const auto& jobs = manifest_->jobs();
    std::stable_sort(ready_.begin(), ready_.end(),
                     [&jobs](uint64_t a, uint64_t b) {
                       const int pa = jobs.at(a).spec.priority;
                       const int pb = jobs.at(b).spec.priority;
                       if (pa != pb) {
                         return pa > pb;
                       }
                       return a < b;
                     });
  }
  const int lanes = config_.max_running;
  ParallelFor(static_cast<size_t>(lanes),
              [this, &stats](size_t) { WorkerLane(&stats); });
  MutexLock lock(mu_);
  if (fleet_dead_ && !death_status_.ok()) {
    return death_status_;
  }
  return stats;
}

StatusOr<FleetRunStats> FleetSupervisor::RunAllShared(SharedJobDriver* driver) {
  if (driver == nullptr) {
    return InvalidArgumentError("fleet: RunAllShared needs a driver");
  }
  FleetRunStats stats;
  {
    MutexLock lock(mu_);
    if (manifest_ == nullptr) {
      return FailedPreconditionError("fleet: RunAllShared before Open");
    }
    fleet_dead_ = false;
    death_status_ = OkStatus();
    ready_.clear();
    for (const auto& [job_id, entry] : manifest_->jobs()) {
      const bool runnable =
          entry.state == FleetJobState::kPending ||
          entry.state == FleetJobState::kRunning ||
          (config_.resume_parked && entry.state == FleetJobState::kParked);
      if (runnable) {
        ready_.push_back(job_id);
      }
    }
    const auto& jobs = manifest_->jobs();
    std::stable_sort(ready_.begin(), ready_.end(),
                     [&jobs](uint64_t a, uint64_t b) {
                       const int pa = jobs.at(a).spec.priority;
                       const int pb = jobs.at(b).spec.priority;
                       if (pa != pb) {
                         return pa > pb;
                       }
                       return a < b;
                     });
  }

  // Rounds: each consumes the whole ready queue into one gang, drives the
  // shared simulation unlocked, folds the outcomes, and repeats while
  // restarts re-entered the queue.
  for (;;) {
    std::vector<SharedJobDriver::JobRun> runs;
    std::map<uint64_t, ManifestJobEntry> entries;
    std::map<uint64_t, uint64_t> start_valid;
    bool drained = false;
    {
      MutexLock lock(mu_);
      if (fleet_dead_ || ready_.empty()) {
        drained = true;
      } else {
        std::vector<uint64_t> round;
        round.swap(ready_);
        for (const uint64_t job_id : round) {
          const ManifestJobEntry entry = manifest_->jobs().at(job_id);

          breaker_clock_ += 1.0;
          if (!breaker_.AllowRequest(breaker_clock_)) {
            const Status parked = Transition(
                job_id, FleetJobState::kParked, entry.restarts,
                entry.journal_bytes, "parked: fleet breaker open");
            if (!parked.ok()) {
              MarkDead(parked);
              break;
            }
            ++stats.breaker_parks;
            HTUNE_OBS_COUNTER_ADD("fleet.breaker_parks", 1);
            continue;
          }

          // Pre-flight validation, identical to the lane path: a job whose
          // journal cannot be trusted never reaches the shared simulation.
          const auto storage_or = JobStorage(job_id);
          if (!storage_or.ok()) {
            MarkDead(storage_or.status());
            break;
          }
          JournalStorage* storage = *storage_or;
          const auto loaded = storage->Load();
          if (!loaded.ok()) {
            if (loaded.status().code() == StatusCode::kResourceExhausted) {
              MarkDead(loaded.status());
              break;
            }
            Outcome out;
            out.kind = Outcome::Kind::kTransient;
            out.status = loaded.status();
            out.journal_bytes = entry.journal_bytes;
            ++stats.dispatched;
            FoldOutcome(job_id, entry, out, &stats);
            if (fleet_dead_) {
              break;
            }
            continue;
          }
          const auto scan = ScanJournal(*loaded);
          std::string quarantine_reason;
          if (!scan.ok()) {
            quarantine_reason =
                "journal failed validation: " + scan.status().ToString();
          } else if (scan->valid_bytes < entry.journal_bytes) {
            quarantine_reason =
                "journal regressed below durable mark (" +
                std::to_string(scan->valid_bytes) + " < " +
                std::to_string(entry.journal_bytes) +
                " bytes intact): corrupted inside the recorded prefix";
          }
          if (!quarantine_reason.empty()) {
            breaker_.RecordFailure(breaker_clock_);
            const Status q = Transition(
                job_id, FleetJobState::kQuarantined, entry.restarts,
                scan.ok() ? scan->valid_bytes : 0, quarantine_reason);
            if (!q.ok()) {
              MarkDead(q);
              break;
            }
            ++stats.quarantined;
            HTUNE_OBS_COUNTER_ADD("fleet.quarantines", 1);
            continue;
          }

          const Status running =
              Transition(job_id, FleetJobState::kRunning, entry.restarts,
                         scan->valid_bytes, "");
          if (!running.ok()) {
            MarkDead(running);
            break;
          }
          ++stats.dispatched;
          HTUNE_OBS_COUNTER_ADD("fleet.dispatches", 1);

          SharedJobDriver::JobRun run;
          run.job_id = job_id;
          run.spec = entry.spec;
          run.storage = storage;
          run.start_valid_bytes = scan->valid_bytes;
          runs.push_back(std::move(run));
          entries.emplace(job_id, entry);
          start_valid.emplace(job_id, scan->valid_bytes);
        }
        if (fleet_dead_) {
          drained = true;
        }
      }
    }
    if (drained) {
      break;
    }
    if (runs.empty()) {
      continue;  // everything parked/quarantined; re-check the queue
    }

    auto outcomes_or = driver->RunJobs(std::move(runs));

    MutexLock lock(mu_);
    if (!outcomes_or.ok()) {
      MarkDead(outcomes_or.status());
      break;
    }
    for (const auto& [job_id, entry] : entries) {
      const SharedJobDriver::JobOutcome* reported = nullptr;
      for (const SharedJobDriver::JobOutcome& candidate : *outcomes_or) {
        if (candidate.job_id == job_id) {
          reported = &candidate;
          break;
        }
      }
      Outcome out;
      if (reported == nullptr) {
        out.kind = Outcome::Kind::kQuarantine;
        out.status = InternalError("shared driver dropped the job");
        out.detail = "poison job: shared driver returned no outcome for job " +
                     std::to_string(job_id);
        out.journal_bytes = start_valid.at(job_id);
      } else {
        out.journal_bytes = reported->journal_bytes;
        out.progressed = reported->journal_bytes > start_valid.at(job_id);
        if (reported->status.ok()) {
          out.kind = Outcome::Kind::kDone;
          out.result = reported->result;
        } else {
          out.status = reported->status;
          const std::string context =
              reported->detail.empty() ? "" : reported->detail + ": ";
          switch (reported->status.code()) {
            case StatusCode::kUnavailable:
              out.kind = Outcome::Kind::kTransient;
              break;
            case StatusCode::kResourceExhausted:
              out.kind = Outcome::Kind::kFleetDead;
              break;
            case StatusCode::kInternal:
              out.kind = Outcome::Kind::kQuarantine;
              out.detail = "divergent replay: " + context +
                           reported->status.ToString();
              break;
            default:
              out.kind = Outcome::Kind::kQuarantine;
              out.detail =
                  "poison job: " + context + reported->status.ToString();
              break;
          }
        }
      }
      FoldOutcome(job_id, entry, out, &stats);
      if (fleet_dead_) {
        break;
      }
    }
    if (fleet_dead_) {
      break;
    }
  }

  MutexLock lock(mu_);
  if (fleet_dead_ && !death_status_.ok()) {
    return death_status_;
  }
  return stats;
}

void FleetSupervisor::WorkerLane(FleetRunStats* stats) {
  for (;;) {
    uint64_t job_id = 0;
    ManifestJobEntry entry;
    JournalStorage* storage = nullptr;
    uint64_t start_valid = 0;
    {
      MutexLock lock(mu_);
      while (ready_.empty() && active_ > 0 && !fleet_dead_) {
        ready_cv_.Wait(mu_);
      }
      if (fleet_dead_ || ready_.empty()) {
        ready_cv_.NotifyAll();  // wake peers so every lane drains
        return;
      }
      job_id = ready_.front();
      ready_.erase(ready_.begin());
      entry = manifest_->jobs().at(job_id);

      // Fleet breaker: while open, ready jobs are parked, not dispatched —
      // a systemic outage must not burn every job's restart budget.
      breaker_clock_ += 1.0;
      if (!breaker_.AllowRequest(breaker_clock_)) {
        const Status parked = Transition(
            job_id, FleetJobState::kParked, entry.restarts,
            entry.journal_bytes, "parked: fleet breaker open");
        if (!parked.ok()) {
          MarkDead(parked);
          return;
        }
        ++stats->breaker_parks;
        HTUNE_OBS_COUNTER_ADD("fleet.breaker_parks", 1);
        continue;
      }

      // Pre-flight validation, before the job is marked running: a job
      // whose journal cannot be trusted is quarantined here and never
      // reaches a lane.
      const auto storage_or = JobStorage(job_id);
      if (!storage_or.ok()) {
        MarkDead(storage_or.status());
        return;
      }
      storage = *storage_or;
      const auto loaded = storage->Load();
      if (!loaded.ok()) {
        if (loaded.status().code() == StatusCode::kResourceExhausted) {
          MarkDead(loaded.status());
          return;
        }
        Outcome out;
        out.kind = Outcome::Kind::kTransient;
        out.status = loaded.status();
        out.journal_bytes = entry.journal_bytes;
        ++stats->dispatched;
        FoldOutcome(job_id, entry, out, stats);
        if (fleet_dead_) {
          return;
        }
        continue;
      }
      const auto scan = ScanJournal(*loaded);
      std::string quarantine_reason;
      if (!scan.ok()) {
        quarantine_reason =
            "journal failed validation: " + scan.status().ToString();
      } else if (scan->valid_bytes < entry.journal_bytes) {
        // The journal holds less intact history than the manifest proved
        // durable: a bit flip or truncation inside the recorded prefix.
        // Plain recovery would silently truncate and re-run — bitwise
        // correct-looking but missing paid history — so this is poison.
        quarantine_reason =
            "journal regressed below durable mark (" +
            std::to_string(scan->valid_bytes) + " < " +
            std::to_string(entry.journal_bytes) +
            " bytes intact): corrupted inside the recorded prefix";
      }
      if (!quarantine_reason.empty()) {
        breaker_.RecordFailure(breaker_clock_);
        const Status q =
            Transition(job_id, FleetJobState::kQuarantined, entry.restarts,
                       scan.ok() ? scan->valid_bytes : 0, quarantine_reason);
        if (!q.ok()) {
          MarkDead(q);
          return;
        }
        ++stats->quarantined;
        HTUNE_OBS_COUNTER_ADD("fleet.quarantines", 1);
        continue;
      }
      start_valid = scan->valid_bytes;

      const Status running =
          Transition(job_id, FleetJobState::kRunning, entry.restarts,
                     start_valid, "");
      if (!running.ok()) {
        MarkDead(running);
        return;
      }
      ++active_;
      ++stats->dispatched;
      HTUNE_OBS_COUNTER_ADD("fleet.dispatches", 1);
    }

    const Outcome out = RunJobOnce(job_id, entry, storage, start_valid);

    {
      MutexLock lock(mu_);
      --active_;
      FoldOutcome(job_id, entry, out, stats);
      ready_cv_.NotifyAll();
      if (fleet_dead_) {
        return;
      }
    }
  }
}

void FleetSupervisor::FoldOutcome(uint64_t job_id,
                                  const ManifestJobEntry& entry,
                                  const Outcome& out, FleetRunStats* stats) {
  switch (out.kind) {
    case Outcome::Kind::kDone: {
      const uint32_t digest = Crc32c(out.result.report_bytes) ^
                              Crc32c(out.result.trace_bytes);
      const Status done = Transition(job_id, FleetJobState::kDone,
                                     entry.restarts, out.journal_bytes,
                                     "crc32c:" + std::to_string(digest));
      if (!done.ok()) {
        MarkDead(done);
        return;
      }
      breaker_.RecordSuccess(breaker_clock_);
      results_[job_id] = out.result;
      stalls_.erase(job_id);
      ++stats->completed;
      HTUNE_OBS_COUNTER_ADD("fleet.completed", 1);
      return;
    }
    case Outcome::Kind::kTransient: {
      breaker_.RecordFailure(breaker_clock_);
      int& stall_count = stalls_[job_id];
      stall_count = out.progressed ? 0 : stall_count + 1;
      if (!out.progressed && stall_count >= config_.watchdog_stall_limit) {
        // Watchdog verdict: consecutive runs with zero durable progress.
        // Restarting a hung job only re-hangs it; park for an operator.
        const Status parked = Transition(
            job_id, FleetJobState::kParked, entry.restarts, out.journal_bytes,
            "watchdog: hung (" + std::to_string(stall_count) +
                " consecutive runs with no durable progress); last: " +
                out.status.ToString());
        if (!parked.ok()) {
          MarkDead(parked);
          return;
        }
        stalls_.erase(job_id);
        ++stats->watchdog_parks;
        HTUNE_OBS_COUNTER_ADD("fleet.watchdog_parks", 1);
        return;
      }
      if (entry.restarts + 1 < config_.restart.max_attempts) {
        const double delay =
            BackoffFor(config_.restart, entry.restarts + 1, restart_jitter_);
        HTUNE_OBS_COUNTER_ADD("fleet.restart_backoff_ticks_us",
                              static_cast<uint64_t>(delay * 1e6));
        const Status pending = Transition(
            job_id, FleetJobState::kPending, entry.restarts + 1,
            out.journal_bytes, "restart: " + out.status.ToString());
        if (!pending.ok()) {
          MarkDead(pending);
          return;
        }
        // Sorted re-insert keeps the (priority desc, id asc) queue order:
        // a restarted job rejoins behind equal-priority peers it already
        // ran ahead of.
        const int priority = entry.spec.priority;
        auto slot = ready_.begin();
        while (slot != ready_.end()) {
          const ManifestJobEntry& other = manifest_->jobs().at(*slot);
          if (other.spec.priority < priority ||
              (other.spec.priority == priority && *slot > job_id)) {
            break;
          }
          ++slot;
        }
        ready_.insert(slot, job_id);
        ++stats->restarts;
        HTUNE_OBS_COUNTER_ADD("fleet.restarts", 1);
        return;
      }
      const Status parked = Transition(
          job_id, FleetJobState::kParked, entry.restarts, out.journal_bytes,
          "parked: restart budget exhausted (" +
              std::to_string(config_.restart.max_attempts) +
              " runs); last: " + out.status.ToString());
      if (!parked.ok()) {
        MarkDead(parked);
        return;
      }
      ++stats->exhausted_parks;
      HTUNE_OBS_COUNTER_ADD("fleet.exhausted_parks", 1);
      return;
    }
    case Outcome::Kind::kQuarantine: {
      breaker_.RecordFailure(breaker_clock_);
      const Status q =
          Transition(job_id, FleetJobState::kQuarantined, entry.restarts,
                     out.journal_bytes, out.detail);
      if (!q.ok()) {
        MarkDead(q);
        return;
      }
      ++stats->quarantined;
      HTUNE_OBS_COUNTER_ADD("fleet.quarantines", 1);
      return;
    }
    case Outcome::Kind::kFleetDead:
      MarkDead(out.status);
      return;
  }
}

FleetSupervisor::Outcome FleetSupervisor::RunJobOnce(
    uint64_t job_id, const ManifestJobEntry& entry, JournalStorage* storage,
    uint64_t start_valid_bytes) {
  Outcome out;

  const auto parsed = ParseJobSpec(entry.spec.spec_text);
  if (!parsed.ok()) {
    out.kind = Outcome::Kind::kQuarantine;
    out.status = parsed.status();
    out.detail = "job spec failed to parse: " + parsed.status().ToString();
    out.journal_bytes = start_valid_bytes;
    return out;
  }
  const uint64_t seed = entry.spec.seed_override >= 0
                            ? static_cast<uint64_t>(entry.spec.seed_override)
                            : parsed->seed;

  MarketConfig market;
  market.worker_arrival_rate = parsed->arrival_rate;
  market.worker_error_prob = parsed->worker_error_prob;
  market.abandon_prob = parsed->abandon_prob;
  market.abandon_hold_rate = parsed->abandon_hold_rate;
  market.seed = seed;
  market.record_trace = true;

  DurabilityConfig durability;
  durability.storage = storage;
  durability.snapshot_interval = entry.spec.snapshot_interval;
  durability.journal_retry = config_.journal_retry;
  durability.retry_seed = seed ^ 0x6a6f75726e616cULL;  // "journal"

  const std::vector<QuestionSpec> questions(
      static_cast<size_t>(parsed->problem.TotalTasks()));
  const RepetitionAllocator allocator;
  std::vector<TraceEvent> trace;
  Status run_status = OkStatus();

  if (entry.spec.controller == FleetController::kAdaptiveRetuner) {
    MarketConfig retuner_market = market;
    retuner_market.true_curve = parsed->problem.groups.front().curve;
    RetunerConfig rcfg;
    const AdaptiveRetuner retuner(&allocator, rcfg);
    const auto report = retuner.RunDurable(retuner_market, parsed->problem,
                                           questions, durability, &trace);
    if (report.ok()) {
      out.result.report_bytes = EncodeRetunerReport(*report);
    } else {
      run_status = report.status();
    }
  } else {
    FaultTolerantConfig cfg;
    cfg.budget = entry.spec.ceiling >= 0
                     ? static_cast<long>(entry.spec.ceiling)
                     : 0;
    cfg.abandonment = {parsed->abandon_prob, parsed->abandon_hold_rate};
    cfg.market_retry = config_.market_retry;
    cfg.resilience_seed = seed ^ 0x6d61726b6574ULL;  // "market"
    if (config_.market_gate) {
      cfg.market_fault_gate = config_.market_gate(job_id);
    }
    const FaultTolerantExecutor executor(&allocator, cfg);
    const auto report = executor.RunDurable(market, parsed->problem, questions,
                                            durability, &trace);
    if (report.ok()) {
      out.result.report_bytes = EncodeFaultTolerantReport(*report);
    } else {
      run_status = report.status();
    }
  }

  // The post-run durable mark. After a clean completion every byte in
  // storage was framed by this run's own writer, so the size IS the valid
  // prefix — re-CRCing a journal we just wrote would be the dominant
  // per-job supervision cost. After a failure the tail may be torn
  // mid-append, so re-scan for the prefix that actually survived (a torn
  // tail from an exhausted retry is not durable history).
  uint64_t end_valid = start_valid_bytes;
  {
    const auto loaded = storage->Load();
    if (loaded.ok()) {
      if (run_status.ok()) {
        end_valid = loaded->size();
      } else {
        const auto scan = ScanJournal(*loaded);
        if (scan.ok()) {
          end_valid = scan->valid_bytes;
        }
      }
    }
  }
  out.journal_bytes = end_valid;
  out.progressed = end_valid > start_valid_bytes;

  if (run_status.ok()) {
    Encoder trace_encoder;
    EncodeTraceEvents(trace, trace_encoder);
    out.result.trace_bytes = trace_encoder.Release();
    out.kind = Outcome::Kind::kDone;
    return out;
  }
  out.status = run_status;
  switch (run_status.code()) {
    case StatusCode::kUnavailable:
      out.kind = Outcome::Kind::kTransient;
      return out;
    case StatusCode::kResourceExhausted:
      // The injected whole-process kill (CrashInjectingStorage /
      // FleetKillSwitch contract).
      out.kind = Outcome::Kind::kFleetDead;
      return out;
    case StatusCode::kInternal:
      out.kind = Outcome::Kind::kQuarantine;
      out.detail = "divergent replay: " + run_status.ToString();
      return out;
    default:
      out.kind = Outcome::Kind::kQuarantine;
      out.detail = "poison job: " + run_status.ToString();
      return out;
  }
}

}  // namespace htune
