#ifndef HTUNE_FLEET_SUPERVISOR_H_
#define HTUNE_FLEET_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "durability/manifest.h"
#include "resilience/circuit_breaker.h"
#include "resilience/policy.h"

namespace htune {

/// Hands out the journal storages of one fleet directory, keyed by the
/// canonical relative paths of durability/manifest.h (FleetManifestFileName,
/// FleetJobJournalPath). Returned pointers stay valid for the provider's
/// lifetime; the provider owns the storages. Thread-safe: worker lanes
/// create job storages concurrently.
class FleetStorageProvider {
 public:
  virtual ~FleetStorageProvider() = default;

  /// The storage at `path`, created empty when absent.
  virtual StatusOr<JournalStorage*> Storage(const std::string& path) = 0;

  /// Relative paths of every *existing non-empty* journal under jobs/,
  /// sorted. Recovery diffs this against the manifest to find orphans.
  virtual StatusOr<std::vector<std::string>> ListJournals() = 0;
};

/// Test/bench provider keeping the whole fleet in memory.
class InMemoryFleetStorage : public FleetStorageProvider {
 public:
  StatusOr<JournalStorage*> Storage(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListJournals() override;

  /// Direct access for corruption tests; null when the path was never
  /// opened.
  InMemoryJournalStorage* Find(const std::string& path);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<InMemoryJournalStorage>> storages_
      HTUNE_GUARDED_BY(mu_);
};

/// File-backed provider rooted at a fleet directory: MANIFEST at the root,
/// journals under jobs/. Both directories are created on the first Storage
/// call.
class FileFleetStorage : public FleetStorageProvider {
 public:
  explicit FileFleetStorage(std::string root) : root_(std::move(root)) {}

  StatusOr<JournalStorage*> Storage(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListJournals() override;

  const std::string& root() const { return root_; }

 private:
  std::string root_;
  mutable Mutex mu_;
  bool dirs_ready_ HTUNE_GUARDED_BY(mu_) = false;
  std::map<std::string, std::unique_ptr<FileJournalStorage>> storages_
      HTUNE_GUARDED_BY(mu_);
};

/// Chaos seam: wraps a just-opened storage before the supervisor uses it.
/// Called with job id 0 for the manifest and the job's id otherwise; the
/// returned pointer (the wrapper, or `inner` unchanged) is borrowed — the
/// harness owns any wrapper and must keep it alive for the supervisor's
/// lifetime. Empty means no wrapping.
using FleetStorageDecorator =
    std::function<JournalStorage*(uint64_t job_id, JournalStorage* inner)>;

/// Chaos seam: the market fault gate for one job's controller (see
/// resilience/policy.h). Empty means no gate. Durable runs require bounded
/// gates (FaultTolerantConfig::market_fault_gate contract).
using FleetMarketGateFactory = std::function<FaultGate(uint64_t job_id)>;

/// Knobs for one FleetSupervisor.
struct FleetConfig {
  /// Worker lanes: the bounded running set. The fleet never executes more
  /// than this many jobs at once, whatever was admitted.
  int max_running = 4;
  /// Admission-control cap on *pending* jobs (the ready backlog). 0 means
  /// unbounded. When full, Submit sheds the lowest-priority pending job if
  /// the newcomer outranks it, else rejects the newcomer — either way with
  /// a clean kResourceExhausted, never by degrading the running set.
  int max_admitted = 0;
  /// Restart policy per job: max_attempts runs total (first run + bounded
  /// restarts), with the policy's exponential backoff charged in simulated
  /// seconds (fleet.restart_backoff_ticks_us) between runs. Only
  /// kUnavailable outcomes (transient park states) are restarted.
  RetryPolicy restart;
  /// Breaker across repeated failures fleet-wide: every failed run is a
  /// RecordFailure, every completed job a RecordSuccess, and while open the
  /// supervisor parks ready jobs instead of dispatching them (half-open
  /// admits one probe). The breaker clock is the fleet's dispatch counter —
  /// the supervisor has no wall clock — so open_cooldown is measured in
  /// dispatch opportunities, not seconds. Defaults are far looser than a
  /// per-job breaker: the fleet breaker exists to stop a *systemic* storage
  /// or market outage from burning every job's restart budget at once, not
  /// to react to one flaky job.
  CircuitBreakerConfig breaker{/*failure_threshold=*/32,
                               /*open_cooldown=*/8.0,
                               /*half_open_successes=*/1};
  /// Watchdog: a job whose run ends kUnavailable *without having grown its
  /// journal* made no durable progress. After this many consecutive
  /// no-progress runs the job is declared hung and parked instead of
  /// burning its remaining restart budget.
  int watchdog_stall_limit = 2;
  /// Retry-on-transient for manifest and per-job journal appends.
  RetryPolicy journal_retry;
  /// Whether RunAll picks up kParked jobs again (operator-initiated retry
  /// of hung/exhausted jobs, e.g. htune_cli resume-fleet --resume-parked).
  bool resume_parked = false;
  /// Seeds the restart-backoff jitter stream and the manifest's journal
  /// retry jitter.
  uint64_t seed = 0x666c656574ULL;  // "fleet"
  FleetStorageDecorator decorate_storage;
  FleetMarketGateFactory market_gate;
  /// Market-side retry policy handed to every job controller (only
  /// consulted when a market gate is installed).
  RetryPolicy market_retry;
};

/// Rejects non-positive lane counts and stall limits, negative admission
/// caps, and invalid embedded retry/breaker configs.
Status ValidateFleetConfig(const FleetConfig& config);

/// In-memory artifacts of one completed job, for bitwise comparison in
/// tests and benches (the durable artifact is the journal itself).
struct FleetJobResult {
  /// Canonical encoding of the controller's final report.
  std::string report_bytes;
  /// EncodeTraceEvents of the final market trace.
  std::string trace_bytes;
};

/// What one RunAll did.
struct FleetRunStats {
  /// Job executions dispatched (first runs and restarts).
  int dispatched = 0;
  /// Jobs that reached kDone.
  int completed = 0;
  /// Restarts scheduled by the retry policy.
  int restarts = 0;
  /// Jobs parked by the watchdog as hung.
  int watchdog_parks = 0;
  /// Jobs parked because the restart budget ran out.
  int exhausted_parks = 0;
  /// Jobs parked because the fleet breaker was open.
  int breaker_parks = 0;
  /// Jobs quarantined (excluding orphans found by Recover).
  int quarantined = 0;
};

/// Gang-execution seam for shared-market serving: where RunAll gives every
/// job its own isolated marketplace on its own lane, RunAllShared hands the
/// whole runnable set to ONE driver that advances every job inside a single
/// coupled simulation (competing for one worker stream). The supervisor
/// still owns everything durable — admission, preflight journal validation,
/// lifecycle transitions, restarts, quarantine — and the driver owns only
/// the in-simulation execution between kRunning and the returned outcomes.
class SharedJobDriver {
 public:
  /// One job the supervisor validated and marked kRunning, ready for the
  /// shared simulation. `storage` is the job's (decorated) journal,
  /// borrowed for the call; `start_valid_bytes` is the scanned durable
  /// mark, against which the supervisor measures progress.
  struct JobRun {
    uint64_t job_id = 0;
    FleetJobSpec spec;
    JournalStorage* storage = nullptr;
    uint64_t start_valid_bytes = 0;
  };

  /// What the shared run did to one job. `status` maps exactly like a
  /// lane-run controller status: OK completes the job with `result`;
  /// kUnavailable is transient (restart budget applies); kResourceExhausted
  /// is the whole-fleet kill; anything else quarantines with `detail`
  /// prepended to the diagnostic.
  struct JobOutcome {
    uint64_t job_id = 0;
    Status status;
    std::string detail;
    uint64_t journal_bytes = 0;
    FleetJobResult result;
  };

  virtual ~SharedJobDriver() = default;

  /// Runs every job of `runs` inside one shared simulation and reports one
  /// outcome per run (any order; a missing outcome is treated as the
  /// driver's bug and quarantines the job). A non-OK return is a
  /// driver-level catastrophe: the fleet dies as a unit, exactly like the
  /// injected whole-process kill.
  virtual StatusOr<std::vector<JobOutcome>> RunJobs(
      std::vector<JobRun> runs) = 0;
};

/// Supervises a fleet of durable tuning jobs: admission, scheduling on the
/// process thread pool, bounded restarts, hang detection, poison-job
/// quarantine, and whole-fleet crash recovery through the manifest.
///
/// Lifecycle state machine (durable, one kState record per edge, all edges
/// written through Transition — the fleet-lifecycle lint rule):
///
///   kPending ----> kRunning ----> kDone
///      |  ^           |
///      |  '-restart---+--> kParked       (hung / budget / breaker / parked
///      |                   |              controller)
///      |                   '-> kPending  (RunAll with resume_parked)
///      |-> kShed                          (admission control, terminal)
///      '---------> kQuarantined           (poison, terminal)
///   kRunning in a *reopened* manifest means the previous process died
///   mid-run; Recover re-dispatches it and RunDurable resumes the journal.
///
/// Usage: construct, Open() (fresh fleet) or Recover() (existing
/// directory), Submit() jobs, RunAll(). After a crash (RunAll returns the
/// kill's kResourceExhausted), build a new supervisor over the same
/// provider and Recover() + RunAll() — every interrupted job resumes to a
/// bitwise-identical result; finished jobs are not re-run.
///
/// Not reentrant: one RunAll at a time, Submit between runs only.
class FleetSupervisor {
 public:
  FleetSupervisor(FleetStorageProvider* provider, FleetConfig config);
  ~FleetSupervisor();

  FleetSupervisor(const FleetSupervisor&) = delete;
  FleetSupervisor& operator=(const FleetSupervisor&) = delete;

  /// Opens (or creates) the manifest. Call exactly once, before anything
  /// else.
  Status Open();

  /// Like Open, plus crash-recovery bookkeeping: journals whose job the
  /// manifest does not know (orphans — evidence the manifest lost a tail)
  /// are durably quarantined so they are never misread as fresh jobs.
  Status Recover();

  /// Admits one job: durably records it (manifest flush) before returning
  /// its id. kResourceExhausted when admission control is full and the
  /// newcomer outranks nothing.
  StatusOr<uint64_t> Submit(const FleetJobSpec& spec);

  /// Runs every runnable job (kPending, interrupted kRunning, and kParked
  /// when resume_parked) to a terminal or parked state on max_running
  /// lanes. Returns the injected-kill status if the fleet died mid-run —
  /// the manifest then holds the interrupted states for the next Recover.
  StatusOr<FleetRunStats> RunAll();

  /// Gang-schedules every runnable job onto `driver`'s shared simulation
  /// instead of isolated lanes. Rounds repeat while restarts re-enter the
  /// ready queue; preflight validation, lifecycle edges, restart budgets,
  /// the watchdog, and the fleet breaker behave exactly as under RunAll.
  /// Returns the death status if the fleet died mid-round.
  StatusOr<FleetRunStats> RunAllShared(SharedJobDriver* driver);

  /// Snapshot of the folded manifest view. Valid after Open/Recover.
  std::map<uint64_t, ManifestJobEntry> jobs() const;

  /// Results of jobs completed by *this* supervisor's RunAll calls.
  const std::map<uint64_t, FleetJobResult>& results() const { return results_; }

  /// Job ids quarantined as orphan journals by Recover.
  const std::vector<uint64_t>& orphans() const { return orphans_; }

 private:
  struct Outcome;

  /// The single mutation path for durable lifecycle state (lint rule
  /// fleet-lifecycle): appends the kState record, updates gauges, and
  /// folds the change into the manifest view. A storage failure here is
  /// the fleet dying mid-transition; the caller must treat it as the kill.
  Status Transition(uint64_t job_id, FleetJobState state, int32_t restarts,
                    uint64_t journal_bytes, const std::string& detail)
      HTUNE_REQUIRES(mu_);

  /// Runs one job attempt end to end (no fleet lock held): config
  /// construction from the manifest spec and the controller's RunDurable.
  /// Pre-flight journal validation already happened at dispatch;
  /// `start_valid_bytes` is its durable mark, against which progress is
  /// measured. Returns what happened, never throws the fleet off its lanes.
  Outcome RunJobOnce(uint64_t job_id, const ManifestJobEntry& entry,
                     JournalStorage* storage, uint64_t start_valid_bytes);

  /// One worker lane: pull the highest-priority ready job, validate and
  /// mark it kRunning, run it unlocked, fold the outcome back under the
  /// lock, repeat until the fleet drains or dies.
  void WorkerLane(FleetRunStats* stats);

  /// Applies a finished run's outcome: done / restart / watchdog park /
  /// quarantine / fleet death.
  void FoldOutcome(uint64_t job_id, const ManifestJobEntry& entry,
                   const Outcome& out, FleetRunStats* stats)
      HTUNE_REQUIRES(mu_);

  /// The job's (decorated) storage, resolved once per job id and cached so
  /// chaos decorators see each job exactly once.
  StatusOr<JournalStorage*> JobStorage(uint64_t job_id) HTUNE_REQUIRES(mu_);

  void MarkDead(const Status& status) HTUNE_REQUIRES(mu_);

  void PublishGauges() HTUNE_REQUIRES(mu_);

  FleetStorageProvider* provider_;
  FleetConfig config_;

  mutable Mutex mu_;
  CondVar ready_cv_;
  std::unique_ptr<FleetManifest> manifest_ HTUNE_GUARDED_BY(mu_);
  /// Job ids runnable right now, kept sorted by (priority desc, id asc).
  std::vector<uint64_t> ready_ HTUNE_GUARDED_BY(mu_);
  /// Lanes currently executing a job.
  int active_ HTUNE_GUARDED_BY(mu_) = 0;
  /// Set when any storage reports the injected whole-process kill; all
  /// lanes drain immediately.
  bool fleet_dead_ HTUNE_GUARDED_BY(mu_) = false;
  Status death_status_ HTUNE_GUARDED_BY(mu_) = OkStatus();
  /// Fleet breaker (CircuitBreaker is not thread-safe: guarded).
  CircuitBreaker breaker_ HTUNE_GUARDED_BY(mu_);
  /// The breaker's monotone clock: dispatch decisions so far.
  double breaker_clock_ HTUNE_GUARDED_BY(mu_) = 0.0;
  /// Consecutive no-progress runs per job (in-memory: a process restart
  /// resets the count, which only delays a hang verdict, never corrupts).
  std::map<uint64_t, int> stalls_ HTUNE_GUARDED_BY(mu_);
  /// Jitter stream for restart backoff accounting.
  SplitMix64 restart_jitter_ HTUNE_GUARDED_BY(mu_);
  /// Decorated storage per job id (decorators run once per job).
  std::map<uint64_t, JournalStorage*> job_storage_ HTUNE_GUARDED_BY(mu_);

  /// Written under mu_ during RunAll; read by callers only after RunAll
  /// returns (the accessors are not synchronized).
  std::map<uint64_t, FleetJobResult> results_;
  std::vector<uint64_t> orphans_;
};

}  // namespace htune

#endif  // HTUNE_FLEET_SUPERVISOR_H_
