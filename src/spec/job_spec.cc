#include "spec/job_spec.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace htune {
namespace {

// Strips whitespace and a trailing "# comment".
std::string Clean(std::string_view line) {
  const size_t hash = line.find('#');
  if (hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }
  size_t begin = 0, end = line.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(line[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(line[end - 1]))) {
    --end;
  }
  return std::string(line.substr(begin, end - begin));
}

StatusOr<double> ParseDouble(const std::string& text,
                             const std::string& what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return InvalidArgumentError("bad number for " + what + ": '" + text +
                                "'");
  }
  return value;
}

StatusOr<long> ParseLong(const std::string& text, const std::string& what) {
  HTUNE_ASSIGN_OR_RETURN(const double value, ParseDouble(text, what));
  const long rounded = static_cast<long>(value);
  if (static_cast<double>(rounded) != value) {
    return InvalidArgumentError(what + " must be an integer: '" + text +
                                "'");
  }
  return rounded;
}

std::vector<std::string> SplitWords(const std::string& text) {
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        words.push_back(current);
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) words.push_back(current);
  return words;
}

}  // namespace

StatusOr<std::shared_ptr<const PriceRateCurve>> ParseCurveSpec(
    std::string_view text) {
  const std::vector<std::string> words = SplitWords(Clean(text));
  if (words.empty()) {
    return InvalidArgumentError("curve: empty specification");
  }
  const std::string& kind = words[0];
  if (kind == "linear") {
    if (words.size() != 3) {
      return InvalidArgumentError("curve: linear needs <slope> <intercept>");
    }
    HTUNE_ASSIGN_OR_RETURN(const double k, ParseDouble(words[1], "slope"));
    HTUNE_ASSIGN_OR_RETURN(const double b,
                           ParseDouble(words[2], "intercept"));
    if (k < 0.0 || k + b <= 0.0) {
      return InvalidArgumentError(
          "curve: linear needs slope >= 0 and a positive rate at price 1");
    }
    return std::shared_ptr<const PriceRateCurve>(
        std::make_shared<LinearCurve>(k, b));
  }
  if (kind == "quadratic") {
    if (words.size() != 3) {
      return InvalidArgumentError(
          "curve: quadratic needs <coefficient> <intercept>");
    }
    HTUNE_ASSIGN_OR_RETURN(const double a,
                           ParseDouble(words[1], "coefficient"));
    HTUNE_ASSIGN_OR_RETURN(const double b,
                           ParseDouble(words[2], "intercept"));
    if (a < 0.0 || a + b <= 0.0) {
      return InvalidArgumentError(
          "curve: quadratic needs coefficient >= 0 and a positive rate at "
          "price 1");
    }
    return std::shared_ptr<const PriceRateCurve>(
        std::make_shared<QuadraticCurve>(a, b));
  }
  if (kind == "log") {
    if (words.size() != 2) {
      return InvalidArgumentError("curve: log needs <scale>");
    }
    HTUNE_ASSIGN_OR_RETURN(const double s, ParseDouble(words[1], "scale"));
    if (s <= 0.0) {
      return InvalidArgumentError("curve: log scale must be positive");
    }
    return std::shared_ptr<const PriceRateCurve>(
        std::make_shared<LogCurve>(s));
  }
  if (kind == "sigmoid") {
    if (words.size() != 4) {
      return InvalidArgumentError(
          "curve: sigmoid needs <max_rate> <midpoint> <width>");
    }
    HTUNE_ASSIGN_OR_RETURN(const double max_rate,
                           ParseDouble(words[1], "max_rate"));
    HTUNE_ASSIGN_OR_RETURN(const double midpoint,
                           ParseDouble(words[2], "midpoint"));
    HTUNE_ASSIGN_OR_RETURN(const double width, ParseDouble(words[3], "width"));
    if (max_rate <= 0.0 || width <= 0.0) {
      return InvalidArgumentError(
          "curve: sigmoid needs positive max_rate and width");
    }
    return std::shared_ptr<const PriceRateCurve>(
        std::make_shared<SigmoidCurve>(max_rate, midpoint, width));
  }
  if (kind == "table") {
    if (words.size() != 2) {
      return InvalidArgumentError("curve: table needs p:r,p:r,...");
    }
    std::vector<std::pair<double, double>> points;
    for (const std::string& pair : SplitString(words[1], ',')) {
      const std::vector<std::string> parts = SplitString(pair, ':');
      if (parts.size() != 2) {
        return InvalidArgumentError("curve: bad table point '" + pair + "'");
      }
      HTUNE_ASSIGN_OR_RETURN(const double p,
                             ParseDouble(parts[0], "table price"));
      HTUNE_ASSIGN_OR_RETURN(const double r,
                             ParseDouble(parts[1], "table rate"));
      points.emplace_back(p, r);
    }
    HTUNE_ASSIGN_OR_RETURN(TableCurve curve,
                           TableCurve::Create(std::move(points), "table"));
    return std::shared_ptr<const PriceRateCurve>(
        std::make_shared<TableCurve>(std::move(curve)));
  }
  return InvalidArgumentError("curve: unknown kind '" + kind +
                              "' (linear|quadratic|log|sigmoid|table)");
}

StatusOr<JobSpec> ParseJobSpec(std::string_view text) {
  JobSpec spec;
  TaskGroup* group = nullptr;  // null while in the top-level section
  int line_number = 0;
  for (const std::string& raw : SplitString(text, '\n')) {
    ++line_number;
    const std::string line = Clean(raw);
    if (line.empty()) continue;
    const std::string where = "line " + std::to_string(line_number) + ": ";

    if (line == "[group]") {
      spec.problem.groups.emplace_back();
      group = &spec.problem.groups.back();
      group->name = "group " + std::to_string(spec.problem.groups.size());
      continue;
    }
    if (line.front() == '[') {
      return InvalidArgumentError(where + "unknown section " + line);
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError(where + "expected key = value");
    }
    const std::string key = Clean(line.substr(0, eq));
    const std::string value = Clean(line.substr(eq + 1));
    if (value.empty()) {
      return InvalidArgumentError(where + "empty value for " + key);
    }

    Status status = OkStatus();
    if (group == nullptr) {
      if (key == "budget") {
        HTUNE_ASSIGN_OR_RETURN(spec.problem.budget, ParseLong(value, key));
      } else if (key == "arrival_rate") {
        HTUNE_ASSIGN_OR_RETURN(spec.arrival_rate, ParseDouble(value, key));
      } else if (key == "error_prob") {
        HTUNE_ASSIGN_OR_RETURN(spec.worker_error_prob,
                               ParseDouble(value, key));
      } else if (key == "abandon_prob") {
        HTUNE_ASSIGN_OR_RETURN(spec.abandon_prob, ParseDouble(value, key));
      } else if (key == "abandon_hold_rate") {
        HTUNE_ASSIGN_OR_RETURN(spec.abandon_hold_rate,
                               ParseDouble(value, key));
      } else if (key == "seed") {
        HTUNE_ASSIGN_OR_RETURN(const long seed, ParseLong(value, key));
        spec.seed = static_cast<uint64_t>(seed);
      } else {
        return InvalidArgumentError(where + "unknown top-level key '" + key +
                                    "'");
      }
    } else {
      if (key == "name") {
        group->name = value;
      } else if (key == "tasks") {
        HTUNE_ASSIGN_OR_RETURN(const long tasks, ParseLong(value, key));
        group->num_tasks = static_cast<int>(tasks);
      } else if (key == "repetitions") {
        HTUNE_ASSIGN_OR_RETURN(const long reps, ParseLong(value, key));
        group->repetitions = static_cast<int>(reps);
      } else if (key == "processing_rate") {
        HTUNE_ASSIGN_OR_RETURN(group->processing_rate,
                               ParseDouble(value, key));
      } else if (key == "curve") {
        HTUNE_ASSIGN_OR_RETURN(group->curve, ParseCurveSpec(value));
      } else {
        return InvalidArgumentError(where + "unknown group key '" + key +
                                    "'");
      }
    }
    HTUNE_RETURN_IF_ERROR(status);
  }

  const Status valid = ValidateProblem(spec.problem);
  if (!valid.ok()) {
    return InvalidArgumentError("spec invalid: " + valid.ToString());
  }
  if (spec.arrival_rate <= 0.0) {
    return InvalidArgumentError("arrival_rate must be positive");
  }
  if (spec.worker_error_prob < 0.0 || spec.worker_error_prob > 1.0) {
    return InvalidArgumentError("error_prob must lie in [0, 1]");
  }
  if (spec.abandon_prob < 0.0 || spec.abandon_prob >= 1.0) {
    return InvalidArgumentError("abandon_prob must lie in [0, 1)");
  }
  if (spec.abandon_prob > 0.0 && spec.abandon_hold_rate <= 0.0) {
    return InvalidArgumentError(
        "abandon_hold_rate must be positive when abandon_prob > 0");
  }
  return spec;
}

StatusOr<JobSpec> LoadJobSpec(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot read spec file: " + path);
  }
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return ParseJobSpec(text);
}

}  // namespace htune
