#include "spec/fleet_spec.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "spec/job_spec.h"

namespace htune {
namespace {

// Strips whitespace and a trailing "# comment" (same grammar as job specs).
std::string Clean(std::string_view line) {
  const size_t hash = line.find('#');
  if (hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }
  size_t begin = 0, end = line.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(line[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(line[end - 1]))) {
    --end;
  }
  return std::string(line.substr(begin, end - begin));
}

StatusOr<long> ParseLong(const std::string& text, const std::string& what,
                         int line_no) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return InvalidArgumentError("fleet spec line " + std::to_string(line_no) +
                                ": bad integer for " + what + ": '" + text +
                                "'");
  }
  return value;
}

StatusOr<double> ParseDouble(const std::string& text, const std::string& what,
                             int line_no) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || std::isnan(value)) {
    return InvalidArgumentError("fleet spec line " + std::to_string(line_no) +
                                ": bad number for " + what + ": '" + text +
                                "'");
  }
  return value;
}

StatusOr<std::string> ReadFileText(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot read spec file: " + path);
  }
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return text;
}

/// One [job] section as written, before replica expansion.
struct JobSection {
  std::string spec_path;
  std::string name;
  int priority = 0;
  int count = 1;
  long budget = -1;
  long seed = -1;
  FleetController controller = FleetController::kFaultTolerant;
  int snapshot_interval = 8;
  int line_no = 0;  // where the section started, for error messages
};

Status ExpandSection(const JobSection& section, const std::string& base_dir,
                     FleetSpec* out) {
  if (section.spec_path.empty()) {
    return InvalidArgumentError(
        "fleet spec line " + std::to_string(section.line_no) +
        ": [job] section needs a spec = <path> entry");
  }
  if (section.count < 1) {
    return InvalidArgumentError("fleet spec line " +
                                std::to_string(section.line_no) +
                                ": count must be >= 1");
  }
  std::string full_path = section.spec_path;
  if (!base_dir.empty() && full_path.front() != '/') {
    full_path = base_dir + "/" + full_path;
  }
  HTUNE_ASSIGN_OR_RETURN(const std::string spec_text,
                         ReadFileText(full_path));
  // Validate now: a malformed job spec should fail the fleet load with a
  // useful message, not quarantine the job at dispatch time.
  const auto parsed = ParseJobSpec(spec_text);
  if (!parsed.ok()) {
    return InvalidArgumentError("fleet spec line " +
                                std::to_string(section.line_no) + ": " +
                                full_path + ": " +
                                parsed.status().ToString());
  }
  for (int i = 0; i < section.count; ++i) {
    FleetJobSpec job;
    job.name = section.name.empty() ? section.spec_path : section.name;
    if (section.count > 1) {
      job.name += "#" + std::to_string(i);
    }
    job.priority = section.priority;
    job.spec_text = spec_text;
    job.ceiling = section.budget;
    job.seed_override = section.seed >= 0 ? section.seed + i : -1;
    job.snapshot_interval = section.snapshot_interval;
    job.controller = section.controller;
    out->jobs.push_back(std::move(job));
  }
  return OkStatus();
}

}  // namespace

StatusOr<FleetSpec> ParseFleetSpec(std::string_view text,
                                   const std::string& base_dir) {
  FleetSpec fleet;
  JobSection section;
  bool in_job = false;
  bool in_shared = false;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string line = Clean(
        text.substr(pos, eol == std::string_view::npos ? eol : eol - pos));
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line == "[job]") {
      if (in_job) {
        HTUNE_RETURN_IF_ERROR(ExpandSection(section, base_dir, &fleet));
      }
      section = JobSection{};
      section.line_no = line_no;
      in_job = true;
      in_shared = false;
      continue;
    }
    if (line == "[shared_market]") {
      if (fleet.shared_market.present) {
        return InvalidArgumentError(
            "fleet spec line " + std::to_string(line_no) +
            ": duplicate [shared_market] section");
      }
      if (in_job) {
        HTUNE_RETURN_IF_ERROR(ExpandSection(section, base_dir, &fleet));
        in_job = false;
      }
      fleet.shared_market.present = true;
      in_shared = true;
      continue;
    }
    if (line.front() == '[') {
      return InvalidArgumentError("fleet spec line " +
                                  std::to_string(line_no) +
                                  ": unknown section " + line);
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("fleet spec line " +
                                  std::to_string(line_no) +
                                  ": expected key = value, got '" + line +
                                  "'");
    }
    const std::string key = Clean(line.substr(0, eq));
    const std::string value = Clean(line.substr(eq + 1));
    if (in_shared) {
      SharedMarketSpec& shared = fleet.shared_market;
      if (key == "arrival_rate") {
        HTUNE_ASSIGN_OR_RETURN(shared.arrival_rate,
                               ParseDouble(value, key, line_no));
        if (!(shared.arrival_rate > 0.0) ||
            !std::isfinite(shared.arrival_rate)) {
          return InvalidArgumentError(
              "fleet spec line " + std::to_string(line_no) +
              ": arrival_rate must be positive and finite");
        }
      } else if (key == "worker_error_prob") {
        HTUNE_ASSIGN_OR_RETURN(shared.worker_error_prob,
                               ParseDouble(value, key, line_no));
        if (shared.worker_error_prob < 0.0 ||
            shared.worker_error_prob > 1.0) {
          return InvalidArgumentError(
              "fleet spec line " + std::to_string(line_no) +
              ": worker_error_prob must lie in [0, 1]");
        }
      } else if (key == "curve") {
        // Validate the grammar now so a bad curve fails the load, not the
        // service startup.
        const auto curve = ParseCurveSpec(value);
        if (!curve.ok()) {
          return InvalidArgumentError("fleet spec line " +
                                      std::to_string(line_no) + ": " +
                                      curve.status().ToString());
        }
        shared.curve = value;
      } else if (key == "seed") {
        HTUNE_ASSIGN_OR_RETURN(shared.seed, ParseLong(value, key, line_no));
        if (shared.seed < 0) {
          return InvalidArgumentError("fleet spec line " +
                                      std::to_string(line_no) +
                                      ": seed must be >= 0");
        }
      } else if (key == "review_interval") {
        HTUNE_ASSIGN_OR_RETURN(shared.review_interval,
                               ParseDouble(value, key, line_no));
        if (!(shared.review_interval > 0.0) ||
            !std::isfinite(shared.review_interval)) {
          return InvalidArgumentError(
              "fleet spec line " + std::to_string(line_no) +
              ": review_interval must be positive and finite");
        }
      } else if (key == "snapshot_interval") {
        HTUNE_ASSIGN_OR_RETURN(const long v, ParseLong(value, key, line_no));
        if (v < 1) {
          return InvalidArgumentError("fleet spec line " +
                                      std::to_string(line_no) +
                                      ": snapshot_interval must be >= 1");
        }
        shared.snapshot_interval = static_cast<int>(v);
      } else {
        return InvalidArgumentError("fleet spec line " +
                                    std::to_string(line_no) +
                                    ": unknown shared_market key '" + key +
                                    "'");
      }
      continue;
    }
    if (!in_job) {
      if (key == "max_running") {
        HTUNE_ASSIGN_OR_RETURN(const long v,
                               ParseLong(value, key, line_no));
        fleet.max_running = static_cast<int>(v);
      } else if (key == "max_admitted") {
        HTUNE_ASSIGN_OR_RETURN(const long v,
                               ParseLong(value, key, line_no));
        fleet.max_admitted = static_cast<int>(v);
      } else {
        return InvalidArgumentError("fleet spec line " +
                                    std::to_string(line_no) +
                                    ": unknown fleet key '" + key + "'");
      }
      continue;
    }
    if (key == "spec") {
      section.spec_path = value;
    } else if (key == "name") {
      section.name = value;
    } else if (key == "priority") {
      HTUNE_ASSIGN_OR_RETURN(const long v, ParseLong(value, key, line_no));
      section.priority = static_cast<int>(v);
    } else if (key == "count") {
      HTUNE_ASSIGN_OR_RETURN(const long v, ParseLong(value, key, line_no));
      section.count = static_cast<int>(v);
    } else if (key == "budget") {
      HTUNE_ASSIGN_OR_RETURN(section.budget,
                             ParseLong(value, key, line_no));
    } else if (key == "seed") {
      HTUNE_ASSIGN_OR_RETURN(section.seed, ParseLong(value, key, line_no));
      if (section.seed < 0) {
        return InvalidArgumentError("fleet spec line " +
                                    std::to_string(line_no) +
                                    ": seed must be >= 0");
      }
    } else if (key == "controller") {
      if (value == "ft") {
        section.controller = FleetController::kFaultTolerant;
      } else if (value == "retune") {
        section.controller = FleetController::kAdaptiveRetuner;
      } else {
        return InvalidArgumentError(
            "fleet spec line " + std::to_string(line_no) +
            ": controller must be ft or retune, got '" + value + "'");
      }
    } else if (key == "snapshot_interval") {
      HTUNE_ASSIGN_OR_RETURN(const long v, ParseLong(value, key, line_no));
      section.snapshot_interval = static_cast<int>(v);
    } else {
      return InvalidArgumentError("fleet spec line " +
                                  std::to_string(line_no) +
                                  ": unknown job key '" + key + "'");
    }
  }
  if (in_job) {
    HTUNE_RETURN_IF_ERROR(ExpandSection(section, base_dir, &fleet));
  }
  // A jobless spec is only meaningful as a shared-market service config
  // (htune_cli serve), where jobs arrive over the socket instead.
  if (fleet.jobs.empty() && !fleet.shared_market.present) {
    return InvalidArgumentError("fleet spec: no [job] sections");
  }
  if (fleet.max_running < 1) {
    return InvalidArgumentError("fleet spec: max_running must be >= 1");
  }
  if (fleet.max_admitted < 0) {
    return InvalidArgumentError("fleet spec: max_admitted must be >= 0");
  }
  return fleet;
}

StatusOr<FleetSpec> LoadFleetSpec(const std::string& path) {
  HTUNE_ASSIGN_OR_RETURN(const std::string text, ReadFileText(path));
  const size_t slash = path.rfind('/');
  const std::string base_dir =
      slash == std::string::npos ? std::string() : path.substr(0, slash);
  return ParseFleetSpec(text, base_dir);
}

}  // namespace htune
