#ifndef HTUNE_SPEC_FLEET_SPEC_H_
#define HTUNE_SPEC_FLEET_SPEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "durability/manifest.h"

namespace htune {

/// A fleet read from a fleet-spec file: supervisor sizing plus the jobs to
/// submit. Job spec files referenced by the fleet spec are read at load
/// time and embedded verbatim (FleetJobSpec::spec_text), so the manifest is
/// self-contained — recovery never depends on the original spec files still
/// existing or being unchanged.
/// The optional [shared_market] section: parameters of the ONE marketplace
/// every job competes on when the fleet runs in shared mode (htune_serve /
/// RunAllShared). Absent (`present` false) the fleet runs each job on its
/// own isolated market, the classic RunAll path.
struct SharedMarketSpec {
  bool present = false;
  /// Poisson intensity of the shared worker-arrival stream.
  double arrival_rate = 100.0;
  /// Per-repetition probability a worker answers wrong.
  double worker_error_prob = 0.0;
  /// Shared price-to-rate curve, in the ParseCurveSpec grammar.
  std::string curve = "linear 1.0 1.0";
  /// Seed of the shared arrival/selection stream.
  long seed = 1;
  /// Session review cadence in simulated seconds (straggler escalation).
  double review_interval = 5.0;
  /// Service snapshot cadence, in reviews.
  int snapshot_interval = 4;
};

struct FleetSpec {
  /// Worker lanes (FleetConfig::max_running).
  int max_running = 4;
  /// Admission cap on pending jobs (FleetConfig::max_admitted, 0 =
  /// unbounded).
  int max_admitted = 0;
  /// Shared-market parameters when the spec opted into shared mode.
  SharedMarketSpec shared_market;
  /// Jobs in submission order (replicated entries already expanded).
  std::vector<FleetJobSpec> jobs;
};

/// Parses the htune fleet-spec format: an optional top-level section of
/// supervisor knobs followed by one [job] section per job.
///
///   # fleet of durable jobs
///   max_running = 8         # optional worker lanes
///   max_admitted = 0        # optional admission cap (0 = unbounded)
///
///   [shared_market]         # optional: serve every job on ONE market
///   arrival_rate = 100.0    # shared Poisson worker stream intensity
///   worker_error_prob = 0.0 # per-repetition wrong-answer probability
///   curve = linear 1.0 1.0  # shared price->rate curve (ParseCurveSpec)
///   seed = 1                # shared stream seed
///   review_interval = 5.0   # session review cadence, simulated seconds
///   snapshot_interval = 4   # service snapshot cadence, in reviews
///
///   [job]
///   spec = jobs/basic.spec  # required; relative to the fleet spec file
///   name = basic            # optional; defaults to the spec path
///   priority = 0            # optional; higher dispatches first
///   count = 3               # optional replicas: replica i runs with
///                           # seed_override = seed + i
///   budget = 2000           # optional spend ceiling (FleetJobSpec::ceiling)
///   seed = 11               # optional seed_override base (-1 = use the
///                           # job spec's own seed)
///   controller = ft         # optional: ft (default) | retune
///   snapshot_interval = 8   # optional snapshot cadence in reviews
///
/// `base_dir` resolves relative `spec =` paths ("" means the process cwd).
/// Every referenced job spec is read, embedded, and validated with
/// ParseJobSpec; a missing or malformed job spec fails the whole load with
/// a line-numbered message.
StatusOr<FleetSpec> ParseFleetSpec(std::string_view text,
                                   const std::string& base_dir);

/// Reads `path` and parses it with base_dir = dirname(path). NotFound when
/// the file cannot be read.
StatusOr<FleetSpec> LoadFleetSpec(const std::string& path);

}  // namespace htune

#endif  // HTUNE_SPEC_FLEET_SPEC_H_
