#ifndef HTUNE_SPEC_JOB_SPEC_H_
#define HTUNE_SPEC_JOB_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "tuning/problem.h"

namespace htune {

/// A tuning job read from a spec file, plus the simulation settings the CLI
/// uses when asked to execute it.
struct JobSpec {
  TuningProblem problem;
  /// Market settings for `htune_cli simulate`.
  double arrival_rate = 100.0;
  double worker_error_prob = 0.0;
  /// Worker abandonment ("return HIT") applied by the simulated market; see
  /// MarketConfig::{abandon_prob, abandon_hold_rate}. `plan` also corrects
  /// the tuned allocation for it via ProblemWithAbandonment.
  double abandon_prob = 0.0;
  double abandon_hold_rate = 1.0;
  uint64_t seed = 1;
};

/// Parses the htune job-spec format: a line-based key = value file with
/// one top-level section followed by [group] sections.
///
///   # comment
///   budget = 1500
///   arrival_rate = 100      # optional (simulation)
///   error_prob = 0.1        # optional (simulation)
///   abandon_prob = 0.2      # optional (simulation fault model)
///   abandon_hold_rate = 2   # optional (simulation fault model)
///   seed = 7                # optional (simulation)
///
///   [group]
///   name = easy labels      # optional
///   tasks = 30
///   repetitions = 3
///   processing_rate = 2.0
///   curve = linear 1.0 1.0  # linear k b | quadratic a b | log s |
///                           # table p:r,p:r,...
///
/// Returns InvalidArgument with a line-numbered message on any malformed
/// input, and runs ValidateProblem on the result.
StatusOr<JobSpec> ParseJobSpec(std::string_view text);

/// Reads `path` and parses it. NotFound when the file cannot be read.
StatusOr<JobSpec> LoadJobSpec(const std::string& path);

/// Parses a curve description ("linear 1.0 1.0", "quadratic 1 1", "log 2",
/// "table 1:0.5,5:2.0"). Exposed for reuse and tests.
StatusOr<std::shared_ptr<const PriceRateCurve>> ParseCurveSpec(
    std::string_view text);

}  // namespace htune

#endif  // HTUNE_SPEC_JOB_SPEC_H_
