#ifndef HTUNE_RNG_RANDOM_H_
#define HTUNE_RNG_RANDOM_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "rng/xoshiro256.h"

namespace htune {

/// A seeded random source with the samplers the HPU model needs. All
/// distributions are implemented from first principles (inverse transform,
/// thinning, Knuth/inversion for Poisson) so results are reproducible across
/// standard libraries. Not thread-safe; use `Split()` for per-thread streams.
class Random {
 public:
  /// Constructs a stream fully determined by `seed`.
  explicit Random(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1). Uses the top 53 bits of a 64-bit draw.
  /// Inline (with the samplers below that wrap it) because the market
  /// simulator's acceptance scan draws billions of these per run.
  double Uniform() {
    return static_cast<double>(engine_.Next() >> 11) * 0x1.0p-53;
  }

  /// Fills `out[0..n)` with exactly the values `n` successive Uniform()
  /// calls would produce, consuming exactly `n` engine draws. Stream
  /// identity (not just distributional equality) is the contract: the hot
  /// market loop speculatively batches its per-task acceptance draws and
  /// falls back to scalar replay from a saved state, which only works if
  /// batched and scalar draws are the same bit patterns in the same order.
  void FillUniforms(double* out, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<double>(engine_.Next() >> 11) * 0x1.0p-53;
    }
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double UniformRange(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  uint64_t UniformInt(uint64_t n);

  /// Bernoulli draw: true with probability `p` (clamped to [0, 1]).
  /// Consumes no draw when p <= 0 or p >= 1 — callers relying on stream
  /// identity (the market's batched scan) must account for that.
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return Uniform() < p;
  }

  /// Exponential with rate `lambda` (mean 1/lambda). Requires lambda > 0.
  double Exponential(double lambda) {
    HTUNE_CHECK_GT(lambda, 0.0);
    // Inverse transform; 1 - Uniform() is in (0, 1] so the log is finite.
    return -std::log(1.0 - Uniform()) / lambda;
  }

  /// Erlang(k, lambda): sum of k iid Exponential(lambda). Requires k >= 1.
  double Erlang(int k, double lambda);

  /// Poisson count with mean `mean` >= 0. Inversion for small means,
  /// PTRS-style transformed rejection handled by repeated inversion blocks
  /// for large means (exact, O(mean) worst case — fine for simulation use).
  int Poisson(double mean);

  /// Standard normal via Marsaglia polar method.
  double Normal(double mean, double stddev);

  /// Gamma(shape, 1) via Marsaglia-Tsang squeeze (boosted for shape < 1).
  /// Requires shape > 0.
  double Gamma(double shape);

  /// Beta(a, b) via the two-Gamma construction. Requires a > 0, b > 0.
  double Beta(double a, double b);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Requires at least one strictly positive weight.
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Returns an independent stream (see Xoshiro256::Split).
  Random Split();

  /// Complete sampler state for checkpoint/restore: the engine's 256 bits
  /// plus the polar method's cached second normal. Restoring it resumes the
  /// exact sample stream, which market snapshots rely on for bitwise
  /// crash-recovery identity.
  struct State {
    std::array<uint64_t, 4> engine = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State SaveState() const {
    return {engine_.state(), has_cached_normal_, cached_normal_};
  }
  void RestoreState(const State& state) {
    engine_.set_state(state.engine);
    has_cached_normal_ = state.has_cached_normal;
    cached_normal_ = state.cached_normal;
  }

  /// Direct access to the underlying bit generator.
  Xoshiro256& engine() { return engine_; }

 private:
  explicit Random(Xoshiro256 engine) : engine_(engine) {}

  Xoshiro256 engine_;
  // Cached second output of the polar method.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace htune

#endif  // HTUNE_RNG_RANDOM_H_
