#ifndef HTUNE_RNG_XOSHIRO256_H_
#define HTUNE_RNG_XOSHIRO256_H_

#include <array>
#include <cstdint>

namespace htune {

/// Xoshiro256++ PRNG (Blackman & Vigna 2019): fast, 256-bit state, passes
/// BigCrush. Satisfies the C++ UniformRandomBitGenerator requirements so it
/// can also drive <random> distributions if needed.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// Constructs with state expanded from `seed` via SplitMix64, per the
  /// reference implementation's seeding recommendation.
  explicit Xoshiro256(uint64_t seed);

  /// Returns the next 64-bit value. Defined inline: this is the innermost
  /// call of the market simulator's acceptance scan, where call overhead
  /// would dominate the ~1ns of state arithmetic.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// UniformRandomBitGenerator interface.
  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Advances the state by 2^128 steps, equivalent to that many `Next()`
  /// calls. Used to derive non-overlapping parallel substreams.
  void Jump();

  /// Returns an independent generator: a copy of this one jumped ahead,
  /// with this generator itself also jumped so subsequent `Split()` calls
  /// yield further disjoint streams.
  Xoshiro256 Split();

  /// Raw 256-bit state, for checkpoint/restore. A generator whose state is
  /// restored continues the exact output stream the captured one would
  /// have produced.
  const std::array<uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<uint64_t, 4>& state) { state_ = state; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<uint64_t, 4> state_;
};

}  // namespace htune

#endif  // HTUNE_RNG_XOSHIRO256_H_
