#include "rng/random.h"

#include <cmath>

#include "common/check.h"

namespace htune {

double Random::UniformRange(double lo, double hi) {
  HTUNE_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Random::UniformInt(uint64_t n) {
  HTUNE_CHECK_GT(n, 0u);
  // Rejection sampling over the largest multiple of n below 2^64.
  const uint64_t threshold = (0 - n) % n;  // == 2^64 mod n
  while (true) {
    uint64_t draw = engine_.Next();
    if (draw >= threshold) {
      return draw % n;
    }
  }
}

double Random::Erlang(int k, double lambda) {
  HTUNE_CHECK_GE(k, 1);
  // Product-of-uniforms form avoids k log() calls.
  double product = 1.0;
  for (int i = 0; i < k; ++i) {
    product *= 1.0 - Uniform();
  }
  return -std::log(product) / lambda;
}

int Random::Poisson(double mean) {
  HTUNE_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  // Split large means into exact Poisson blocks to keep exp(-block) in
  // normal range, using Poisson additivity.
  constexpr double kBlock = 500.0;
  int count = 0;
  double remaining = mean;
  while (remaining > kBlock) {
    // Knuth inversion on a block of fixed mean.
    double limit = std::exp(-kBlock);
    double product = Uniform();
    while (product > limit) {
      ++count;
      product *= Uniform();
    }
    remaining -= kBlock;
  }
  double limit = std::exp(-remaining);
  double product = Uniform();
  while (product > limit) {
    ++count;
    product *= Uniform();
  }
  return count;
}

double Random::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u, v, s;
  do {
    u = UniformRange(-1.0, 1.0);
    v = UniformRange(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * (u * factor);
}

double Random::Gamma(double shape) {
  HTUNE_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
    const double boosted = Gamma(shape + 1.0);
    const double u = 1.0 - Uniform();  // in (0, 1]
    return boosted * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x, v;
    do {
      x = Normal(0.0, 1.0);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - Uniform();  // in (0, 1]
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) {
      return d * v;
    }
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Random::Beta(double a, double b) {
  HTUNE_CHECK_GT(a, 0.0);
  HTUNE_CHECK_GT(b, 0.0);
  const double x = Gamma(a);
  const double y = Gamma(b);
  return x / (x + y);
}

size_t Random::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    HTUNE_CHECK_GE(w, 0.0);
    total += w;
  }
  HTUNE_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) {
      return i;
    }
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) {
      return i - 1;
    }
  }
  return weights.size() - 1;
}

Random Random::Split() { return Random(engine_.Split()); }

}  // namespace htune
