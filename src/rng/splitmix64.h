#ifndef HTUNE_RNG_SPLITMIX64_H_
#define HTUNE_RNG_SPLITMIX64_H_

#include <cstdint>

namespace htune {

/// SplitMix64 PRNG (Steele, Lea, Flood 2014). Primarily used to seed
/// Xoshiro256++ state from a single 64-bit seed; also a fine standalone
/// generator for non-critical uses.
class SplitMix64 {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value in the stream.
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

}  // namespace htune

#endif  // HTUNE_RNG_SPLITMIX64_H_
