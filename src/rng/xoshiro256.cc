#include "rng/xoshiro256.h"

#include "rng/splitmix64.h"

namespace htune {
Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 seeder(seed);
  for (auto& word : state_) {
    word = seeder.Next();
  }
  // All-zero state is invalid for xoshiro; SplitMix64 cannot emit four zero
  // words in a row from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}


void Xoshiro256::Jump() {
  static constexpr uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      Next();
    }
  }
  state_ = {s0, s1, s2, s3};
}

Xoshiro256 Xoshiro256::Split() {
  Xoshiro256 child = *this;
  child.Jump();
  Jump();
  Jump();
  return child;
}

}  // namespace htune
