#include "probe/calibration.h"

namespace htune {

StatusOr<std::unique_ptr<PriceRateCurve>> Calibration::ToCurve() const {
  if (fit.slope < 0.0) {
    return FailedPreconditionError(
        "Calibration: fitted slope is negative; rate must not fall with "
        "price");
  }
  if (fit.slope + fit.intercept <= 0.0) {
    return FailedPreconditionError(
        "Calibration: fitted rate non-positive at price 1");
  }
  return std::unique_ptr<PriceRateCurve>(
      std::make_unique<LinearCurve>(fit.slope, fit.intercept));
}

StatusOr<Calibration> CalibrateLinearCurve(
    const std::vector<std::pair<double, double>>& price_rate_points) {
  std::vector<double> prices, rates;
  prices.reserve(price_rate_points.size());
  rates.reserve(price_rate_points.size());
  for (const auto& [price, rate] : price_rate_points) {
    prices.push_back(price);
    rates.push_back(rate);
  }
  HTUNE_ASSIGN_OR_RETURN(const LinearFit fit, FitLinear(prices, rates));
  Calibration calibration;
  calibration.fit = fit;
  calibration.measured = price_rate_points;
  return calibration;
}

std::vector<std::pair<double, double>> PaperAmtMeasuredPoints() {
  // Rewards in cents; rates in s^-1 (§5.2.2).
  return {{5.0, 0.0038}, {8.0, 0.0062}, {10.0, 0.0121}, {12.0, 0.0131}};
}

std::vector<std::pair<double, double>> PaperTable1SortVotePoints() {
  // (reward $, processing-rate column "sorting vote") from Table 1.
  return {{1.5, 1.5}, {2.0, 2.0}, {3.0, 3.0}};
}

std::vector<std::pair<double, double>> PaperTable1YesNoVotePoints() {
  return {{1.5, 2.0}, {2.0, 3.0}, {3.0, 5.0}};
}

}  // namespace htune
