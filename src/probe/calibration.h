#ifndef HTUNE_PROBE_CALIBRATION_H_
#define HTUNE_PROBE_CALIBRATION_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "model/price_rate_curve.h"
#include "stats/regression.h"

namespace htune {

/// A calibrated price-rate relationship: the fitted line plus the measured
/// points it came from.
struct Calibration {
  LinearFit fit;
  std::vector<std::pair<double, double>> measured;

  /// Whether the Linearity Hypothesis (Hypothesis 1) is empirically
  /// supported at the given coefficient-of-determination threshold.
  bool SupportsLinearity(double r_squared_threshold = 0.9) const {
    return fit.r_squared >= r_squared_threshold;
  }

  /// The fitted LinearCurve. Returns FailedPrecondition when the fit has a
  /// non-positive slope or produces a non-positive rate at price 1, which
  /// violates the curve contract.
  StatusOr<std::unique_ptr<PriceRateCurve>> ToCurve() const;
};

/// Least-squares calibration of lambda_o(c) = k*c + b from measured
/// (price, rate) pairs (>= 2 distinct prices required).
StatusOr<Calibration> CalibrateLinearCurve(
    const std::vector<std::pair<double, double>>& price_rate_points);

/// The paper's AMT measurements behind Fig 4: rewards $0.05, $0.08, $0.10,
/// $0.12 (in cents: 5, 8, 10, 12) against inferred on-hold rates
/// 0.0038, 0.0062, 0.0121, 0.0131 s^-1 (§5.2.2). These calibrate the
/// simulated MTurk market used by the bench harness.
std::vector<std::pair<double, double>> PaperAmtMeasuredPoints();

/// Table 1's measured processing rates for the motivation example: the
/// sorting-vote and yes/no-vote columns at rewards 1.5, 2 and 3.
std::vector<std::pair<double, double>> PaperTable1SortVotePoints();
std::vector<std::pair<double, double>> PaperTable1YesNoVotePoints();

}  // namespace htune

#endif  // HTUNE_PROBE_CALIBRATION_H_
