#ifndef HTUNE_PROBE_PROBE_H_
#define HTUNE_PROBE_PROBE_H_

#include <vector>

#include "common/statusor.h"
#include "market/simulator.h"

namespace htune {

/// Result of one rate-inference run (§3.3.1, Appendix A).
struct ProbeReport {
  /// Maximum-likelihood estimate lambda_hat = N / T0.
  double lambda_hat = 0.0;
  /// Bias-corrected estimate (N-1)/N * lambda_hat for the random-period
  /// design; equals lambda_hat for the fixed-period design, whose MLE is
  /// already unbiased. (The paper's appendix prints the correction factor
  /// as "((N-1)N)", an evident typo for (N-1)/N.)
  double lambda_corrected = 0.0;
  /// Number of acceptance events observed.
  int events = 0;
  /// Observation window length T0.
  double period = 0.0;
};

/// Parameters of a probe run: a throwaway task published at a fixed price
/// whose workers are asked to submit immediately, so processing latency is
/// negligible and each completion epoch is an acceptance epoch.
struct ProbeSpec {
  /// Promised payment per repetition.
  int price = 1;
  /// The on-hold rate the market will exhibit for this (type, price). In a
  /// calibration loop this is what the curve being fitted produces.
  double on_hold_rate = 1.0;
  /// The probe's processing rate; very large so the processing phase is
  /// negligible, as the paper's probe instructs workers to submit instantly.
  double processing_rate = 1e6;
};

/// Fixed-period design: observe the acceptance process for `period` time
/// units and count events; lambda_hat = N / period. Returns InvalidArgument
/// for non-positive period and FailedPrecondition if the market refuses the
/// probe spec. A report with zero events yields lambda_hat = 0 — callers
/// should widen the period.
StatusOr<ProbeReport> RunFixedPeriodProbe(MarketSimulator& market,
                                          const ProbeSpec& spec,
                                          double period);

/// Random-period design: wait for `target_events` acceptances and record the
/// elapsed time; lambda_hat = N / T0, bias-corrected by (N-1)/N.
/// Requires target_events >= 2.
StatusOr<ProbeReport> RunRandomPeriodProbe(MarketSimulator& market,
                                           const ProbeSpec& spec,
                                           int target_events);

/// Estimates the processing rate lambda_p of a task type from completed
/// outcomes: the MLE N / (sum of processing latencies). Returns
/// InvalidArgument on empty input.
StatusOr<double> EstimateProcessingRate(
    const std::vector<TaskOutcome>& outcomes);

/// Estimates the on-hold rate from completed outcomes: the MLE
/// N / (sum of on-hold latencies). Returns InvalidArgument on empty input.
StatusOr<double> EstimateOnHoldRate(const std::vector<TaskOutcome>& outcomes);

/// The paper's two-phase decomposition (§3.3.1): estimate the overall
/// completion rate lambda from full tasks, then recover lambda_p from
/// lambda and a separately probed lambda_o. The harmonic identity
/// 1/lambda = 1/lambda_o + 1/lambda_p holds for the mean of the two-phase
/// latency; the paper's literal subtraction lambda - lambda_o is also
/// provided for comparison in the ablation bench.
struct TwoPhaseDecomposition {
  double overall_rate = 0.0;
  /// lambda_p from the harmonic identity (valid when overall < on_hold).
  double processing_rate_harmonic = 0.0;
  /// lambda_p from the paper's literal subtraction lambda - lambda_o.
  double processing_rate_subtraction = 0.0;
};

/// Decomposes the overall completion rate given a known on-hold rate.
/// Returns InvalidArgument if overall_rate >= on_hold_rate, which makes the
/// harmonic identity infeasible (the overall process cannot be faster than
/// either phase).
StatusOr<TwoPhaseDecomposition> DecomposeOverallRate(double overall_rate,
                                                     double on_hold_rate);

}  // namespace htune

#endif  // HTUNE_PROBE_PROBE_H_
