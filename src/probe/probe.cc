#include "probe/probe.h"

#include <cmath>

namespace htune {
namespace {

TaskSpec ProbeTaskSpec(const ProbeSpec& spec, int repetitions) {
  TaskSpec task;
  task.price_per_repetition = spec.price;
  task.repetitions = repetitions;
  task.on_hold_rate = spec.on_hold_rate;
  task.processing_rate = spec.processing_rate;
  task.true_answer = 0;
  task.num_options = 2;
  return task;
}

}  // namespace

StatusOr<ProbeReport> RunFixedPeriodProbe(MarketSimulator& market,
                                          const ProbeSpec& spec,
                                          double period) {
  if (period <= 0.0) {
    return InvalidArgumentError("RunFixedPeriodProbe: period must be > 0");
  }
  // Post one probe task whose sequential acceptances form the observed
  // Poisson stream. Size the repetition count so the probe cannot exhaust
  // its repetitions within the window.
  const int repetitions =
      static_cast<int>(std::ceil(spec.on_hold_rate * period * 4.0)) + 64;
  HTUNE_ASSIGN_OR_RETURN(const TaskId id,
                         market.PostTask(ProbeTaskSpec(spec, repetitions)));
  const double start = market.now();
  market.RunUntil(start + period);

  HTUNE_ASSIGN_OR_RETURN(const TaskOutcome* progress,
                         market.GetProgressView(id));
  int events = 0;
  for (const RepetitionOutcome& rep : progress->repetitions) {
    if (rep.accepted_time <= start + period) {
      ++events;
    }
  }
  ProbeReport report;
  report.events = events;
  report.period = period;
  report.lambda_hat = static_cast<double>(events) / period;
  // The fixed-period MLE is unbiased (Rao-Blackwell, Appendix A).
  report.lambda_corrected = report.lambda_hat;
  return report;
}

StatusOr<ProbeReport> RunRandomPeriodProbe(MarketSimulator& market,
                                           const ProbeSpec& spec,
                                           int target_events) {
  if (target_events < 2) {
    return InvalidArgumentError(
        "RunRandomPeriodProbe: need at least two events");
  }
  HTUNE_ASSIGN_OR_RETURN(const TaskId id,
                         market.PostTask(ProbeTaskSpec(spec, target_events)));
  const double start = market.now();
  HTUNE_RETURN_IF_ERROR(market.RunToCompletion());

  HTUNE_ASSIGN_OR_RETURN(const TaskOutcome* outcome,
                         market.GetOutcomeView(id));
  const double period = outcome->repetitions.back().accepted_time - start;
  ProbeReport report;
  report.events = target_events;
  report.period = period;
  report.lambda_hat = static_cast<double>(target_events) / period;
  report.lambda_corrected = report.lambda_hat *
                            static_cast<double>(target_events - 1) /
                            static_cast<double>(target_events);
  return report;
}

namespace {

StatusOr<double> RateFromLatencies(const std::vector<TaskOutcome>& outcomes,
                                   bool processing_phase) {
  double total_time = 0.0;
  long events = 0;
  for (const TaskOutcome& outcome : outcomes) {
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      total_time +=
          processing_phase ? rep.ProcessingLatency() : rep.OnHoldLatency();
      ++events;
    }
  }
  if (events == 0) {
    return InvalidArgumentError("rate estimation: no completed repetitions");
  }
  if (total_time <= 0.0) {
    return InvalidArgumentError("rate estimation: zero total latency");
  }
  return static_cast<double>(events) / total_time;
}

}  // namespace

StatusOr<double> EstimateProcessingRate(
    const std::vector<TaskOutcome>& outcomes) {
  return RateFromLatencies(outcomes, /*processing_phase=*/true);
}

StatusOr<double> EstimateOnHoldRate(const std::vector<TaskOutcome>& outcomes) {
  return RateFromLatencies(outcomes, /*processing_phase=*/false);
}

StatusOr<TwoPhaseDecomposition> DecomposeOverallRate(double overall_rate,
                                                     double on_hold_rate) {
  if (overall_rate <= 0.0 || on_hold_rate <= 0.0) {
    return InvalidArgumentError("DecomposeOverallRate: rates must be > 0");
  }
  if (overall_rate >= on_hold_rate) {
    return InvalidArgumentError(
        "DecomposeOverallRate: overall rate must be below the on-hold rate "
        "(the two-phase latency is slower than either phase)");
  }
  TwoPhaseDecomposition result;
  result.overall_rate = overall_rate;
  // 1/lambda = 1/lambda_o + 1/lambda_p  =>  lambda_p.
  result.processing_rate_harmonic =
      1.0 / (1.0 / overall_rate - 1.0 / on_hold_rate);
  result.processing_rate_subtraction = on_hold_rate - overall_rate;
  return result;
}

}  // namespace htune
