#include "platform/wire.h"

#include <cstdint>
#include <cstdio>

namespace htune {

namespace {

void SkipSpace(std::string_view line, size_t* i) {
  while (*i < line.size() &&
         (line[*i] == ' ' || line[*i] == '\t' || line[*i] == '\r')) {
    ++*i;
  }
}

/// Parses the JSON string starting at the opening quote; leaves *i one past
/// the closing quote.
Status ParseString(std::string_view line, size_t* i, std::string* out) {
  if (*i >= line.size() || line[*i] != '"') {
    return InvalidArgumentError("wire: expected '\"' at offset " +
                                std::to_string(*i));
  }
  ++*i;
  out->clear();
  while (*i < line.size()) {
    const char ch = line[*i];
    if (ch == '"') {
      ++*i;
      return OkStatus();
    }
    if (ch == '\\') {
      ++*i;
      if (*i >= line.size()) break;
      const char esc = line[*i];
      ++*i;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (*i + 4 > line.size()) {
            return InvalidArgumentError("wire: truncated \\u escape");
          }
          uint32_t code = 0;
          for (int k = 0; k < 4; ++k) {
            const char hex = line[*i + static_cast<size_t>(k)];
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<uint32_t>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<uint32_t>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<uint32_t>(hex - 'A' + 10);
            } else {
              return InvalidArgumentError("wire: bad \\u escape");
            }
          }
          *i += 4;
          if (code >= 0xD800 && code <= 0xDFFF) {
            return InvalidArgumentError(
                "wire: surrogate \\u escapes are unsupported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return InvalidArgumentError("wire: unknown escape '\\" +
                                      std::string(1, esc) + "'");
      }
      continue;
    }
    out->push_back(ch);
    ++*i;
  }
  return InvalidArgumentError("wire: unterminated string");
}

/// Parses a bare scalar (number / true / false / null) as its literal text.
Status ParseScalar(std::string_view line, size_t* i, std::string* out) {
  const size_t start = *i;
  while (*i < line.size()) {
    const char ch = line[*i];
    if (ch == ',' || ch == '}' || ch == ' ' || ch == '\t' || ch == '\r') {
      break;
    }
    if (ch == '{' || ch == '[') {
      return InvalidArgumentError("wire: nested values are unsupported");
    }
    ++*i;
  }
  if (*i == start) {
    return InvalidArgumentError("wire: empty value at offset " +
                                std::to_string(start));
  }
  *out = std::string(line.substr(start, *i - start));
  if (*out != "true" && *out != "false" && *out != "null") {
    // Must look like a JSON number.
    for (const char ch : *out) {
      if ((ch < '0' || ch > '9') && ch != '-' && ch != '+' && ch != '.' &&
          ch != 'e' && ch != 'E') {
        return InvalidArgumentError("wire: bad literal '" + *out + "'");
      }
    }
  }
  return OkStatus();
}

}  // namespace

StatusOr<WireFields> ParseWireObject(std::string_view line) {
  WireFields fields;
  size_t i = 0;
  SkipSpace(line, &i);
  if (i >= line.size() || line[i] != '{') {
    return InvalidArgumentError("wire: message must be a JSON object");
  }
  ++i;
  SkipSpace(line, &i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      SkipSpace(line, &i);
      std::string key;
      HTUNE_RETURN_IF_ERROR(ParseString(line, &i, &key));
      for (const auto& [existing, value] : fields) {
        (void)value;
        if (existing == key) {
          return InvalidArgumentError("wire: duplicate key '" + key + "'");
        }
      }
      SkipSpace(line, &i);
      if (i >= line.size() || line[i] != ':') {
        return InvalidArgumentError("wire: expected ':' after key '" + key +
                                    "'");
      }
      ++i;
      SkipSpace(line, &i);
      std::string value;
      if (i < line.size() && line[i] == '"') {
        HTUNE_RETURN_IF_ERROR(ParseString(line, &i, &value));
      } else if (i < line.size() && (line[i] == '{' || line[i] == '[')) {
        return InvalidArgumentError("wire: nested values are unsupported");
      } else {
        HTUNE_RETURN_IF_ERROR(ParseScalar(line, &i, &value));
      }
      fields.emplace_back(std::move(key), std::move(value));
      SkipSpace(line, &i);
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return InvalidArgumentError("wire: expected ',' or '}' at offset " +
                                  std::to_string(i));
    }
  }
  SkipSpace(line, &i);
  if (i != line.size()) {
    return InvalidArgumentError("wire: trailing bytes after object");
  }
  return fields;
}

std::string SerializeWireObject(const WireFields& fields) {
  std::string out = "{";
  bool first = true;
  const auto append_string = [&out](const std::string& text) {
    out.push_back('"');
    for (const char ch : text) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(ch) & 0xFF);
            out += buf;
          } else {
            out.push_back(ch);
          }
      }
    }
    out.push_back('"');
  };
  for (const auto& [key, value] : fields) {
    if (!first) out.push_back(',');
    first = false;
    append_string(key);
    out.push_back(':');
    append_string(value);
  }
  out.push_back('}');
  return out;
}

const std::string* FindWireField(const WireFields& fields,
                                 std::string_view key) {
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

}  // namespace htune
