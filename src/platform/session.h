#ifndef HTUNE_PLATFORM_SESSION_H_
#define HTUNE_PLATFORM_SESSION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "durability/manifest.h"
#include "model/price_rate_curve.h"
#include "platform/shared_market.h"
#include "spec/job_spec.h"

namespace htune {

/// Final per-job accounting of one shared-market tuning session. The
/// canonical encoding (EncodeSessionReport) is the job's durable artifact
/// and the fleet's FleetJobResult::report_bytes.
struct SessionReport {
  uint64_t job_id = 0;
  uint64_t tasks = 0;
  uint64_t repetitions = 0;
  int64_t spent = 0;
  uint64_t reviews = 0;
  uint64_t stragglers = 0;
  uint64_t escalations = 0;
  uint64_t correct_answers = 0;
  double mean_on_hold_latency = 0.0;
  double mean_processing_latency = 0.0;
};

std::string EncodeSessionReport(const SessionReport& report);
Status DecodeSessionReport(std::string_view bytes, SessionReport* report);

/// Tuning knobs of one job session on the shared market.
struct JobSessionConfig {
  /// The job's id on the shared market (and in the fleet manifest).
  uint64_t job_id = 0;
  /// Seed of the job's private answer/processing RNG stream. Create
  /// overwrites it with the fleet seed-override resolution (seed_override
  /// when set, else the job spec's own seed).
  uint64_t seed = 1;
  /// A repetition on hold longer than this factor times its expected
  /// (dilution-adjusted) on-hold latency is a straggler and gets escalated.
  double straggler_factor = 4.0;
  /// Ceiling on price escalation above the planned group price.
  int max_escalation = 8;
};

/// One tuning job living on a SharedMarket: plans per-group prices with the
/// Repetition Algorithm against the job's own problem, posts every task,
/// and periodically reviews stragglers — escalating their price through the
/// market's Reprice, with expected latencies read through the dilution-
/// adjusted shared curve (DilutedCurve), so cross-job competition feeds
/// back into each job's control decisions via the standard curve interface.
///
/// Everything a session decides is a deterministic function of (spec,
/// config, market state), so resume only needs the market snapshot plus the
/// three session counters (CaptureCounters/RestoreCounters).
class JobSession {
 public:
  /// Parses and plans. The spec's embedded job text must parse and its
  /// problem must admit a price plan; config.seed should already resolve
  /// the fleet seed-override rule.
  static StatusOr<JobSession> Create(const FleetJobSpec& spec,
                                     const JobSessionConfig& config);

  /// Registers the job and posts every planned task. Call once, in
  /// ascending job-id order across the gang.
  Status Post(SharedMarket& market);

  /// One review pass: escalate stragglers through `diluted` (the shared
  /// curve adjusted for the current cross-job dilution factor). Spend is
  /// capped at the job's budget.
  Status Review(SharedMarket& market, const PriceRateCurve& diluted);

  bool Done(const SharedMarket& market) const {
    return market.OpenTaskCount(config_.job_id) == 0;
  }

  /// Final accounting, valid once Done.
  SessionReport Report(const SharedMarket& market) const;

  uint64_t job_id() const { return config_.job_id; }
  uint64_t seed() const { return config_.seed; }
  const std::vector<int>& group_prices() const { return group_prices_; }

  /// The session's dynamic state beyond the market snapshot: the three
  /// review counters (everything else is re-derived from spec + market).
  std::string CaptureCounters() const;
  Status RestoreCounters(std::string_view bytes);

 private:
  JobSession(JobSessionConfig config, JobSpec spec,
             std::vector<int> group_prices, long budget);

  JobSessionConfig config_;
  JobSpec spec_;
  /// Uniform per-group prices from RepetitionAllocator::SolvePrices.
  std::vector<int> group_prices_;
  /// Spend ceiling: the fleet ceiling when set, else the problem budget.
  long budget_ = 0;
  /// Planned base price per task, indexed by task id - 1 (filled at
  /// construction: the plan is spec-derived, not market-derived).
  std::vector<int> task_base_price_;
  bool posted_ = false;
  uint64_t reviews_ = 0;
  uint64_t stragglers_ = 0;
  uint64_t escalations_ = 0;
};

}  // namespace htune

#endif  // HTUNE_PLATFORM_SESSION_H_
