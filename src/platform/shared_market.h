#ifndef HTUNE_PLATFORM_SHARED_MARKET_H_
#define HTUNE_PLATFORM_SHARED_MARKET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "market/event_queue.h"
#include "market/events.h"
#include "market/shared_stream.h"
#include "model/price_rate_curve.h"
#include "rng/random.h"

namespace htune {

/// Global parameters of the shared marketplace every job competes on.
struct SharedMarketConfig {
  /// Poisson intensity of the ONE worker-arrival stream all jobs share.
  double worker_arrival_rate = 100.0;
  /// Probability a worker's answer is wrong, applied per repetition.
  double worker_error_prob = 0.0;
  /// The shared price-to-rate curve: a posted repetition's selection
  /// weight is curve->Rate(price). Required (the whole point of the
  /// shared market is that every job's price routes through one curve).
  std::shared_ptr<const PriceRateCurve> curve;
  /// Seed of the shared arrival/selection stream. Per-job streams are
  /// seeded independently at AddJob.
  uint64_t seed = 1;
  /// Record per-job trace events (kTaskAccepted / kRepetitionCompleted /
  /// kTaskCompleted).
  bool record_trace = true;
  /// Pending-completion scheduler (see MarketConfig::event_queue).
  EventQueueImpl event_queue = EventQueueImpl::kCalendar;
};

Status ValidateSharedMarketConfig(const SharedMarketConfig& config);

/// Cumulative dispatch counts since construction. Like MarketEventCounts,
/// deliberately NOT part of the captured state: counters are diagnostics
/// and excluding them keeps capture/restore about simulation state only.
struct SharedMarketCounts {
  uint64_t worker_arrivals = 0;
  uint64_t acceptances = 0;
  uint64_t completions = 0;
  uint64_t tasks_posted = 0;
  uint64_t reprices = 0;
};

/// Multi-job discrete-event engine: competing tuning jobs post repetitions
/// onto ONE marketplace whose single Poisson worker stream is split across
/// them by acceptance thinning (SharedArrivalStream). Each arriving worker
/// accepts at most one on-hold repetition, chosen proportionally to its
/// weight curve->Rate(price) — so one job raising its price drains every
/// rival's effective acceptance rate through the shared denominator, with
/// no explicit coupling between jobs.
///
/// Determinism contract (the platform service's bitwise-resume guarantee
/// is built on it):
///  - Candidate order is jobs in ascending id, then each job's open tasks
///    in posting order. Selection walks cached per-job weight totals, each
///    recomputed by an identical left-to-right loop whenever that job's
///    on-hold membership or prices change — never maintained incrementally
///    — so every float accumulation is a function of current state alone
///    and restores bitwise.
///  - RNG streams: the shared stream owns the arrival clock and selection
///    uniforms (two draws per arrival, independent of who competes); each
///    job owns a private stream for its answer-error and processing-time
///    draws, so one job's acceptance pattern never perturbs another job's
///    draw sequence.
///  - CaptureState/RestoreState round-trips the complete dynamic state;
///    a restored engine continues bitwise-identically to the captured one
///    (same completions, same times, same traces).
class SharedMarket {
 public:
  explicit SharedMarket(const SharedMarketConfig& config);
  ~SharedMarket();

  SharedMarket(const SharedMarket&) = delete;
  SharedMarket& operator=(const SharedMarket&) = delete;

  /// Registers a competing job. Ids must be added in strictly ascending
  /// order (they define the candidate walk); `seed` starts the job's
  /// private RNG stream.
  Status AddJob(uint64_t job_id, uint64_t seed);

  /// Posts one task for `job_id`: one sequential repetition per entry of
  /// `rep_prices` (each >= 1), processed at `processing_rate` once
  /// accepted. Returns the job-local task id (1-based, dense).
  StatusOr<TaskId> PostTask(uint64_t job_id, const std::vector<int>& rep_prices,
                            double processing_rate, int true_answer = 0,
                            int num_options = 2);

  /// Changes the payment of the current and all future repetitions of an
  /// open task. NotFound for unknown ids, FailedPrecondition once the task
  /// completed.
  Status Reprice(uint64_t job_id, TaskId task, int new_price);

  /// Runs until every posted task of every job completed or the next
  /// event would land past `deadline`. Returns open tasks remaining.
  size_t RunUntil(double deadline);

  /// Runs until all posted tasks complete; Internal if the simulation
  /// exceeds a safety horizon (impossible acceptance configuration).
  Status RunToCompletion();

  double now() const { return now_; }
  size_t OpenTaskCount() const { return open_tasks_; }
  const SharedMarketCounts& Counts() const { return counts_; }

  /// Total posted weight W (left-to-right over per-job totals) — the
  /// saturation signal controllers feed into DilutedCurve.
  double TotalPostedWeight() const;

  /// Per-job views. All return NotFound/CHECK-fail free lookups: the job
  /// must exist (CHECK) since sessions address only jobs they created.
  const std::vector<TaskOutcome>& CompletedOutcomes(uint64_t job_id) const;
  long TotalSpent(uint64_t job_id) const;
  const std::vector<TraceEvent>& Trace(uint64_t job_id) const;
  size_t OpenTaskCount(uint64_t job_id) const;
  /// Ids of the job's open tasks, in posting order (the review-walk order).
  std::vector<TaskId> OpenTaskIds(uint64_t job_id) const;

  /// Time the current repetition of the task was (re)posted;
  /// FailedPrecondition while it is being processed or after completion,
  /// NotFound for unknown ids.
  StatusOr<double> OnHoldSince(uint64_t job_id, TaskId task) const;
  /// Payment the current repetition promises; FailedPrecondition for
  /// completed tasks.
  StatusOr<int> CurrentPrice(uint64_t job_id, TaskId task) const;

  /// Serializes the complete dynamic state (shared stream, pending
  /// events, every job's tasks/outcomes/trace/RNG) into a deterministic
  /// byte string: equal states encode to equal bytes.
  std::string CaptureState() const;

  /// Restores a captured state, replacing all dynamic state. The engine
  /// must have been constructed with the same SharedMarketConfig and have
  /// no jobs added (restore recreates them). InvalidArgument on bytes the
  /// shape cannot satisfy.
  Status RestoreState(std::string_view bytes);

 private:
  struct SharedTask;
  struct SharedJob;

  SharedJob* FindJob(uint64_t job_id);
  const SharedJob* FindJob(uint64_t job_id) const;
  SharedTask* FindOpenTask(SharedJob& job, TaskId task);
  const SharedTask* FindOpenTask(const SharedJob& job, TaskId task) const;

  /// Recomputes the job's cached on-hold weight total with the canonical
  /// left-to-right loop. Called on every membership or price change.
  void RecomputeJobWeight(SharedJob& job);
  void Record(SharedJob& job, const TraceEvent& event);
  void StepArrival();
  void ApplyCompletion(const MarketEvent& event);

  SharedMarketConfig config_;  // HTUNE_TRANSIENT: construction-time config
  SharedArrivalStream stream_;
  std::unique_ptr<EventQueue> queue_;
  uint64_t event_sequence_ = 0;
  double now_ = 0.0;
  size_t open_tasks_ = 0;  // HTUNE_TRANSIENT: recounted during RestoreState
  std::vector<SharedJob> jobs_;  // ascending id — the candidate walk order
  SharedMarketCounts counts_;  // HTUNE_TRANSIENT: report-only tallies
};

}  // namespace htune

#endif  // HTUNE_PLATFORM_SHARED_MARKET_H_
