#include "platform/session.h"

#include <utility>

#include "durability/serialize.h"
#include "tuning/repetition_allocator.h"

namespace htune {

namespace {
constexpr uint32_t kSessionReportVersion = 1;
constexpr uint32_t kSessionCountersVersion = 1;
}  // namespace

std::string EncodeSessionReport(const SessionReport& report) {
  Encoder e;
  e.PutU32(kSessionReportVersion);
  e.PutU64(report.job_id);
  e.PutU64(report.tasks);
  e.PutU64(report.repetitions);
  e.PutI64(report.spent);
  e.PutU64(report.reviews);
  e.PutU64(report.stragglers);
  e.PutU64(report.escalations);
  e.PutU64(report.correct_answers);
  e.PutDouble(report.mean_on_hold_latency);
  e.PutDouble(report.mean_processing_latency);
  return e.Release();
}

Status DecodeSessionReport(std::string_view bytes, SessionReport* report) {
  Decoder d(bytes);
  uint32_t version = 0;
  HTUNE_RETURN_IF_ERROR(d.GetU32(&version));
  if (version != kSessionReportVersion) {
    return InvalidArgumentError("session report: unsupported version " +
                                std::to_string(version));
  }
  HTUNE_RETURN_IF_ERROR(d.GetU64(&report->job_id));
  HTUNE_RETURN_IF_ERROR(d.GetU64(&report->tasks));
  HTUNE_RETURN_IF_ERROR(d.GetU64(&report->repetitions));
  HTUNE_RETURN_IF_ERROR(d.GetI64(&report->spent));
  HTUNE_RETURN_IF_ERROR(d.GetU64(&report->reviews));
  HTUNE_RETURN_IF_ERROR(d.GetU64(&report->stragglers));
  HTUNE_RETURN_IF_ERROR(d.GetU64(&report->escalations));
  HTUNE_RETURN_IF_ERROR(d.GetU64(&report->correct_answers));
  HTUNE_RETURN_IF_ERROR(d.GetDouble(&report->mean_on_hold_latency));
  HTUNE_RETURN_IF_ERROR(d.GetDouble(&report->mean_processing_latency));
  return d.ExpectDone();
}

JobSession::JobSession(JobSessionConfig config, JobSpec spec,
                       std::vector<int> group_prices, long budget)
    : config_(config),
      spec_(std::move(spec)),
      group_prices_(std::move(group_prices)),
      budget_(budget) {
  // Base prices are a pure function of the plan, so a resumed session
  // (which never calls Post) still knows every task's escalation floor.
  for (size_t g = 0; g < spec_.problem.groups.size(); ++g) {
    task_base_price_.insert(
        task_base_price_.end(),
        static_cast<size_t>(spec_.problem.groups[g].num_tasks),
        group_prices_[g]);
  }
}

StatusOr<JobSession> JobSession::Create(const FleetJobSpec& spec,
                                        const JobSessionConfig& config) {
  HTUNE_ASSIGN_OR_RETURN(JobSpec parsed, ParseJobSpec(spec.spec_text));
  const RepetitionAllocator allocator;
  HTUNE_ASSIGN_OR_RETURN(std::vector<int> prices,
                         allocator.SolvePrices(parsed.problem));
  const long budget =
      spec.ceiling >= 0 ? static_cast<long>(spec.ceiling)
                        : parsed.problem.budget;
  // The fleet seed-override rule, applied here so every caller agrees.
  JobSessionConfig resolved = config;
  resolved.seed = spec.seed_override >= 0
                      ? static_cast<uint64_t>(spec.seed_override)
                      : parsed.seed;
  return JobSession(resolved, std::move(parsed), std::move(prices), budget);
}

Status JobSession::Post(SharedMarket& market) {
  if (posted_) {
    return FailedPreconditionError("session: tasks already posted");
  }
  posted_ = true;
  for (size_t g = 0; g < spec_.problem.groups.size(); ++g) {
    const TaskGroup& group = spec_.problem.groups[g];
    const std::vector<int> rep_prices(
        static_cast<size_t>(group.repetitions), group_prices_[g]);
    for (int t = 0; t < group.num_tasks; ++t) {
      HTUNE_RETURN_IF_ERROR(
          market
              .PostTask(config_.job_id, rep_prices, group.processing_rate,
                        /*true_answer=*/0, /*num_options=*/2)
              .status());
    }
  }
  return OkStatus();
}

Status JobSession::Review(SharedMarket& market,
                          const PriceRateCurve& diluted) {
  ++reviews_;
  const double now = market.now();
  for (const TaskId task : market.OpenTaskIds(config_.job_id)) {
    const auto since = market.OnHoldSince(config_.job_id, task);
    if (!since.ok()) {
      continue;  // being processed: nothing to escalate
    }
    const auto price = market.CurrentPrice(config_.job_id, task);
    HTUNE_RETURN_IF_ERROR(price.status());
    const double rate = diluted.Rate(static_cast<double>(*price));
    if (rate <= 0.0) {
      continue;
    }
    // Expected on-hold latency at this price under the current dilution is
    // 1/rate; waiting much longer than that marks a straggler.
    const double waited = now - *since;
    if (waited <= config_.straggler_factor / rate) {
      continue;
    }
    ++stragglers_;
    const int base = task_base_price_[static_cast<size_t>(task) - 1];
    const bool within_cap = *price - base < config_.max_escalation;
    const bool within_budget = market.TotalSpent(config_.job_id) < budget_;
    if (within_cap && within_budget) {
      HTUNE_RETURN_IF_ERROR(market.Reprice(config_.job_id, task, *price + 1));
      ++escalations_;
    }
  }
  return OkStatus();
}

SessionReport JobSession::Report(const SharedMarket& market) const {
  SessionReport report;
  report.job_id = config_.job_id;
  report.reviews = reviews_;
  report.stragglers = stragglers_;
  report.escalations = escalations_;
  report.spent = market.TotalSpent(config_.job_id);
  double on_hold_sum = 0.0;
  double processing_sum = 0.0;
  for (const TaskOutcome& outcome :
       market.CompletedOutcomes(config_.job_id)) {
    ++report.tasks;
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      ++report.repetitions;
      if (rep.correct) {
        ++report.correct_answers;
      }
      on_hold_sum += rep.OnHoldLatency();
      processing_sum += rep.ProcessingLatency();
    }
  }
  if (report.repetitions > 0) {
    const double n = static_cast<double>(report.repetitions);
    report.mean_on_hold_latency = on_hold_sum / n;
    report.mean_processing_latency = processing_sum / n;
  }
  return report;
}

std::string JobSession::CaptureCounters() const {
  Encoder e;
  e.PutU32(kSessionCountersVersion);
  e.PutU64(reviews_);
  e.PutU64(stragglers_);
  e.PutU64(escalations_);
  return e.Release();
}

Status JobSession::RestoreCounters(std::string_view bytes) {
  Decoder d(bytes);
  uint32_t version = 0;
  HTUNE_RETURN_IF_ERROR(d.GetU32(&version));
  if (version != kSessionCountersVersion) {
    return InvalidArgumentError("session counters: unsupported version " +
                                std::to_string(version));
  }
  HTUNE_RETURN_IF_ERROR(d.GetU64(&reviews_));
  HTUNE_RETURN_IF_ERROR(d.GetU64(&stragglers_));
  HTUNE_RETURN_IF_ERROR(d.GetU64(&escalations_));
  return d.ExpectDone();
}

}  // namespace htune
