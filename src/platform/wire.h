#ifndef HTUNE_PLATFORM_WIRE_H_
#define HTUNE_PLATFORM_WIRE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/statusor.h"

namespace htune {

/// One flat key/value message of the serving protocol: a single-line JSON
/// object whose values are strings, numbers, booleans, or null. Nested
/// objects and arrays are deliberately rejected — the protocol is
/// newline-delimited and every request/reply fits a flat map, which keeps
/// the hand-rolled codec small enough to audit. Field order is preserved
/// (serialization is canonical: the order fields were added).
using WireFields = std::vector<std::pair<std::string, std::string>>;

/// Parses one line as a flat JSON object. String values are unescaped;
/// numbers, true/false, and null are kept as their literal text. Rejects
/// nested containers, duplicate keys, trailing garbage, and malformed
/// escapes.
StatusOr<WireFields> ParseWireObject(std::string_view line);

/// Serializes fields as a single-line JSON object. Every value is emitted
/// as a JSON string (the parser on the other side reads it back verbatim),
/// so arbitrary bytes — embedded newlines, quotes, spec files, metrics
/// JSON — survive the line-oriented transport.
std::string SerializeWireObject(const WireFields& fields);

/// The value of `key`, or null when absent.
const std::string* FindWireField(const WireFields& fields,
                                 std::string_view key);

}  // namespace htune

#endif  // HTUNE_PLATFORM_WIRE_H_
