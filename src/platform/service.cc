#include "platform/service.h"

#include <algorithm>
#include <utility>

#include "control/dilution.h"
#include "durability/journal.h"
#include "durability/serialize.h"
#include "durability/snapshot.h"
#include "obs/obs.h"
#include "spec/job_spec.h"

namespace htune {

namespace {

constexpr uint32_t kFingerprintVersion = 1;
constexpr uint32_t kServiceSnapshotVersion = 1;
constexpr uint32_t kJobRunStartVersion = 1;
constexpr uint32_t kJobRunEndVersion = 1;

/// Safety horizon in review epochs: only a simulation that stopped making
/// progress (no acceptances forever) can reach it.
constexpr uint64_t kMaxReviewEpochs = 10'000'000;

std::string EncodeJobRunStart(uint64_t job_id, const std::string& name) {
  Encoder e;
  e.PutU32(kJobRunStartVersion);
  e.PutU64(job_id);
  e.PutString(name);
  return e.Release();
}

std::string EncodeJobRunEnd(const std::string& report_bytes,
                            const std::string& trace_bytes) {
  Encoder e;
  e.PutU32(kJobRunEndVersion);
  e.PutString(report_bytes);
  e.PutString(trace_bytes);
  return e.Release();
}

Status DecodeJobRunEnd(std::string_view payload, std::string* report_bytes,
                       std::string* trace_bytes) {
  Decoder d(payload);
  uint32_t version = 0;
  HTUNE_RETURN_IF_ERROR(d.GetU32(&version));
  if (version != kJobRunEndVersion) {
    return InvalidArgumentError("shared service: unsupported kRunEnd v" +
                                std::to_string(version));
  }
  HTUNE_RETURN_IF_ERROR(d.GetString(report_bytes));
  HTUNE_RETURN_IF_ERROR(d.GetString(trace_bytes));
  return d.ExpectDone();
}

}  // namespace

/// One job of the gang, from supervisor hand-off to reported outcome.
struct SharedMarketService::ActiveJob {
  JobRun run;
  /// Set on a session-creation failure: the job never enters the market
  /// and this becomes its outcome status (poison under the fleet mapping).
  Status create_status;
  std::unique_ptr<JobSession> session;
  std::unique_ptr<JournalWriter> writer;
  /// Journaled kRunEnd artifacts from a previous (killed) run, for the
  /// exactly-once bitwise verification.
  bool has_run_end = false;
  std::string journaled_report;
  std::string journaled_trace;
  bool finalized = false;
  JobOutcome outcome;
};

SharedMarketService::SharedMarketService(FleetStorageProvider* provider,
                                         SharedServiceConfig config)
    : provider_(provider), config_(std::move(config)) {}

std::string SharedMarketService::Fingerprint(
    const std::vector<ActiveJob>& jobs) {
  Encoder e;
  e.PutU32(kFingerprintVersion);
  uint64_t competitors = 0;
  for (const ActiveJob& job : jobs) {
    if (job.create_status.ok()) {
      ++competitors;
    }
  }
  e.PutU64(competitors);
  for (const ActiveJob& job : jobs) {
    if (job.create_status.ok()) {
      e.PutU64(job.run.job_id);
      e.PutU64(job.session->seed());
    }
  }
  return e.Release();
}

StatusOr<std::vector<SharedJobDriver::JobOutcome>>
SharedMarketService::RunJobs(std::vector<JobRun> runs) {
  if (runs.empty()) {
    return std::vector<JobOutcome>{};
  }
  ++counts_.gangs;

  // The market's candidate walk is ascending job id; the gang enters in
  // that order no matter how the supervisor prioritized dispatch.
  std::sort(runs.begin(), runs.end(),
            [](const JobRun& a, const JobRun& b) {
              return a.job_id < b.job_id;
            });

  std::vector<ActiveJob> jobs;
  jobs.reserve(runs.size());
  for (JobRun& run : runs) {
    ActiveJob job;
    job.run = std::move(run);
    job.outcome.job_id = job.run.job_id;
    job.outcome.journal_bytes = job.run.start_valid_bytes;
    JobSessionConfig session_config;
    session_config.job_id = job.run.job_id;
    session_config.straggler_factor = config_.straggler_factor;
    session_config.max_escalation = config_.max_escalation;
    auto session = JobSession::Create(job.run.spec, session_config);
    if (session.ok()) {
      job.session = std::make_unique<JobSession>(std::move(*session));
    } else {
      job.create_status = session.status();
    }
    jobs.push_back(std::move(job));
  }

  // Per-job journals: read any prior shared-run history (exactly-once
  // state), then open a writer positioned at the validated tail.
  for (ActiveJob& job : jobs) {
    if (!job.create_status.ok()) {
      continue;
    }
    const auto contents = OpenJournal(*job.run.storage);
    if (!contents.ok()) {
      if (contents.status().code() == StatusCode::kResourceExhausted) {
        return contents.status();  // the injected kill: gang dies as a unit
      }
      job.create_status = contents.status();
      continue;
    }
    for (const JournalRecord& record : contents->records) {
      if (record.type == JournalRecordType::kRunEnd) {
        const Status decoded = DecodeJobRunEnd(
            record.payload, &job.journaled_report, &job.journaled_trace);
        if (!decoded.ok()) {
          job.create_status = InternalError(
              "journaled kRunEnd is undecodable: " + decoded.ToString());
          break;
        }
        job.has_run_end = true;
      }
    }
    if (!job.create_status.ok()) {
      continue;
    }
    job.writer =
        std::make_unique<JournalWriter>(job.run.storage,
                                        contents->valid_bytes);
    job.writer->EnableRetry(config_.journal_retry,
                            job.session->seed() ^ 0x73657276ULL);  // "serv"
    if (contents->records.empty()) {
      const Status started = job.writer->Append(
          JournalRecordType::kRunStart,
          EncodeJobRunStart(job.run.job_id, job.run.spec.name));
      const Status flushed =
          started.ok() ? job.writer->Flush() : started;
      if (!flushed.ok()) {
        if (flushed.code() == StatusCode::kResourceExhausted) {
          return flushed;
        }
        job.create_status = flushed;
        continue;
      }
    }
    job.outcome.journal_bytes = job.writer->valid_bytes();
  }

  // The shared marketplace.
  const auto curve = ParseCurveSpec(config_.market.curve);
  if (!curve.ok()) {
    return InvalidArgumentError("shared service: market curve: " +
                                curve.status().ToString());
  }
  SharedMarketConfig market_config;
  market_config.worker_arrival_rate = config_.market.arrival_rate;
  market_config.worker_error_prob = config_.market.worker_error_prob;
  market_config.curve = *curve;
  market_config.seed = static_cast<uint64_t>(config_.market.seed);
  market_config.record_trace = true;
  HTUNE_RETURN_IF_ERROR(ValidateSharedMarketConfig(market_config));
  SharedMarket market(market_config);

  // Service journal: locate this gang's generation and its newest snapshot.
  HTUNE_ASSIGN_OR_RETURN(JournalStorage * service_storage,
                         provider_->Storage(kSharedServiceJournalPath));
  const auto service_contents = OpenJournal(*service_storage);
  if (!service_contents.ok()) {
    return service_contents.status();
  }
  const std::string fingerprint = Fingerprint(jobs);
  const std::string* snapshot_payload = nullptr;
  bool generation_matches = false;
  for (const JournalRecord& record : service_contents->records) {
    if (record.type == JournalRecordType::kRunStart) {
      generation_matches = record.payload == fingerprint;
      snapshot_payload = nullptr;
    } else if (record.type == JournalRecordType::kSnapshot &&
               generation_matches) {
      snapshot_payload = &record.payload;
    }
  }
  JournalWriter service_writer(service_storage,
                               service_contents->valid_bytes);
  service_writer.EnableRetry(
      config_.journal_retry,
      static_cast<uint64_t>(config_.market.seed) ^ 0x67616e67ULL);  // "gang"

  uint64_t review_epoch = 0;
  if (snapshot_payload != nullptr) {
    // Resume: the engine state carries everything but the session counters.
    Decoder d(*snapshot_payload);
    uint32_t version = 0;
    HTUNE_RETURN_IF_ERROR(d.GetU32(&version));
    if (version != kServiceSnapshotVersion) {
      return InternalError("shared service: unsupported snapshot v" +
                           std::to_string(version));
    }
    HTUNE_RETURN_IF_ERROR(d.GetU64(&review_epoch));
    std::string market_state;
    HTUNE_RETURN_IF_ERROR(d.GetString(&market_state));
    HTUNE_RETURN_IF_ERROR(market.RestoreState(market_state));
    uint64_t session_count = 0;
    HTUNE_RETURN_IF_ERROR(d.GetU64(&session_count));
    for (uint64_t i = 0; i < session_count; ++i) {
      uint64_t job_id = 0;
      std::string counters;
      HTUNE_RETURN_IF_ERROR(d.GetU64(&job_id));
      HTUNE_RETURN_IF_ERROR(d.GetString(&counters));
      for (ActiveJob& job : jobs) {
        if (job.run.job_id == job_id && job.session != nullptr) {
          HTUNE_RETURN_IF_ERROR(job.session->RestoreCounters(counters));
        }
      }
    }
    HTUNE_RETURN_IF_ERROR(d.ExpectDone());
    ++counts_.resumes;
    HTUNE_OBS_COUNTER_ADD("platform.service_resumes", 1);
  } else {
    // Fresh generation: register the gang, post everything, then durably
    // open the generation so the next process knows what it is resuming.
    if (!generation_matches) {
      HTUNE_RETURN_IF_ERROR(service_writer.Append(
          JournalRecordType::kRunStart, fingerprint));
      HTUNE_RETURN_IF_ERROR(service_writer.Flush());
    }
    for (ActiveJob& job : jobs) {
      if (!job.create_status.ok()) {
        continue;
      }
      HTUNE_RETURN_IF_ERROR(
          market.AddJob(job.run.job_id, job.session->seed()));
      HTUNE_RETURN_IF_ERROR(job.session->Post(market));
    }
  }

  // Finalization: exactly-once kRunEnd with bitwise replay verification.
  auto finalize = [&](ActiveJob& job) -> Status {
    const SessionReport report = job.session->Report(market);
    const std::string report_bytes = EncodeSessionReport(report);
    Encoder trace_encoder;
    EncodeTraceEvents(market.Trace(job.run.job_id), trace_encoder);
    std::string trace_bytes = trace_encoder.Release();
    if (job.has_run_end) {
      if (job.journaled_report != report_bytes ||
          job.journaled_trace != trace_bytes) {
        job.outcome.status = InternalError(
            "re-completed job disagrees with its journaled kRunEnd");
        job.outcome.detail = "shared replay";
        job.finalized = true;
        return OkStatus();
      }
    } else {
      const Status appended =
          job.writer->Append(JournalRecordType::kRunEnd,
                             EncodeJobRunEnd(report_bytes, trace_bytes));
      const Status flushed = appended.ok() ? job.writer->Flush() : appended;
      if (!flushed.ok()) {
        if (flushed.code() == StatusCode::kResourceExhausted) {
          return flushed;  // gang dies; kRunEnd retries after recovery
        }
        job.outcome.status = flushed;
        job.finalized = true;
        return OkStatus();
      }
    }
    job.outcome.status = OkStatus();
    job.outcome.result.report_bytes = report_bytes;
    job.outcome.result.trace_bytes = std::move(trace_bytes);
    job.outcome.journal_bytes =
        job.writer != nullptr ? job.writer->valid_bytes()
                              : job.run.start_valid_bytes;
    job.finalized = true;
    ++counts_.jobs_completed;
    HTUNE_OBS_COUNTER_ADD("platform.jobs_completed", 1);
    return OkStatus();
  };
  auto finalize_done_jobs = [&]() -> Status {
    for (ActiveJob& job : jobs) {
      if (job.create_status.ok() && !job.finalized &&
          job.session->Done(market)) {
        HTUNE_RETURN_IF_ERROR(finalize(job));
      }
    }
    return OkStatus();
  };

  // A resumed snapshot may already hold completed jobs whose kRunEnd was
  // lost to the kill (or survived it — the verifier tells them apart).
  HTUNE_RETURN_IF_ERROR(finalize_done_jobs());

  const double interval = config_.market.review_interval;
  while (market.OpenTaskCount() > 0) {
    if (review_epoch >= kMaxReviewEpochs) {
      return InternalError(
          "shared service: review-epoch safety horizon exceeded");
    }
    ++review_epoch;
    market.RunUntil(static_cast<double>(review_epoch) * interval);

    // Sessions observe the competition through the dilution-adjusted
    // shared curve, re-frozen each review epoch.
    const auto diluted = DiluteCurveForSharedMarket(
        *curve, config_.market.arrival_rate, market.TotalPostedWeight());
    for (ActiveJob& job : jobs) {
      if (job.create_status.ok() && !job.finalized &&
          !job.session->Done(market)) {
        HTUNE_RETURN_IF_ERROR(job.session->Review(market, *diluted));
        ++counts_.reviews;
      }
    }
    HTUNE_RETURN_IF_ERROR(finalize_done_jobs());

    if (review_epoch %
            static_cast<uint64_t>(config_.market.snapshot_interval) ==
        0) {
      Encoder e;
      e.PutU32(kServiceSnapshotVersion);
      e.PutU64(review_epoch);
      e.PutString(market.CaptureState());
      uint64_t session_count = 0;
      for (const ActiveJob& job : jobs) {
        if (job.create_status.ok()) {
          ++session_count;
        }
      }
      e.PutU64(session_count);
      for (const ActiveJob& job : jobs) {
        if (job.create_status.ok()) {
          e.PutU64(job.run.job_id);
          e.PutString(job.session->CaptureCounters());
        }
      }
      HTUNE_RETURN_IF_ERROR(service_writer.Append(
          JournalRecordType::kSnapshot, e.Release()));
      HTUNE_RETURN_IF_ERROR(service_writer.Flush());
      ++counts_.snapshots;
      HTUNE_OBS_COUNTER_ADD("platform.service_snapshots", 1);
    }
  }
  HTUNE_RETURN_IF_ERROR(finalize_done_jobs());

  std::vector<JobOutcome> outcomes;
  outcomes.reserve(jobs.size());
  for (ActiveJob& job : jobs) {
    if (!job.create_status.ok()) {
      job.outcome.status = job.create_status;
      job.outcome.detail = "shared session setup failed";
    }
    outcomes.push_back(std::move(job.outcome));
  }
  return outcomes;
}

}  // namespace htune
