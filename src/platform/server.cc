#include "platform/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace htune {

namespace {

Status ErrnoStatus(const std::string& what) {
  return UnavailableError(what + ": " + std::strerror(errno));
}

/// Fills a sockaddr_un, rejecting paths longer than sun_path.
Status FillAddress(const std::string& path, sockaddr_un* addr) {
  if (path.empty()) {
    return InvalidArgumentError("socket path must not be empty");
  }
  if (path.size() >= sizeof(addr->sun_path)) {
    return InvalidArgumentError("socket path too long: " + path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return OkStatus();
}

Status WriteAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write");
    }
    sent += static_cast<size_t>(n);
  }
  return OkStatus();
}

}  // namespace

UnixLineServer::UnixLineServer(std::string socket_path)
    : path_(std::move(socket_path)) {}

UnixLineServer::~UnixLineServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

Status UnixLineServer::Listen() {
  if (listen_fd_ >= 0) {
    return FailedPreconditionError("server already listening");
  }
  sockaddr_un addr;
  HTUNE_RETURN_IF_ERROR(FillAddress(path_, &addr));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("socket");
  }
  ::unlink(path_.c_str());  // the server owns its path; drop stale files
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = ErrnoStatus("bind " + path_);
    ::close(fd);
    return status;
  }
  if (::listen(fd, /*backlog=*/16) < 0) {
    const Status status = ErrnoStatus("listen " + path_);
    ::close(fd);
    ::unlink(path_.c_str());
    return status;
  }
  listen_fd_ = fd;
  return OkStatus();
}

Status UnixLineServer::Serve(const Handler& handler) {
  if (listen_fd_ < 0) {
    return FailedPreconditionError("call Listen() before Serve()");
  }
  bool shutdown = false;
  while (!shutdown) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("accept");
    }
    std::string buffer;
    char chunk[4096];
    while (!shutdown) {
      const ssize_t n = ::read(conn, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // connection-level error: drop the client, keep serving
      }
      if (n == 0) {
        break;  // client closed
      }
      buffer.append(chunk, static_cast<size_t>(n));
      size_t newline = buffer.find('\n');
      while (newline != std::string::npos) {
        const std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        std::string reply = handler(line, &shutdown);
        reply.push_back('\n');
        if (!WriteAll(conn, reply).ok()) {
          shutdown = shutdown || false;
          break;  // client went away mid-reply
        }
        if (shutdown) break;
        newline = buffer.find('\n');
      }
    }
    ::close(conn);
  }
  return OkStatus();
}

StatusOr<std::string> SendUnixRequest(const std::string& socket_path,
                                      const std::string& line) {
  sockaddr_un addr;
  HTUNE_RETURN_IF_ERROR(FillAddress(socket_path, &addr));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("socket");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = ErrnoStatus("connect " + socket_path);
    ::close(fd);
    return status;
  }
  const Status wrote = WriteAll(fd, line + "\n");
  if (!wrote.ok()) {
    ::close(fd);
    return wrote;
  }
  std::string reply;
  char chunk[4096];
  while (reply.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = ErrnoStatus("read");
      ::close(fd);
      return status;
    }
    if (n == 0) {
      ::close(fd);
      return UnavailableError("server closed the connection mid-reply");
    }
    reply.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply.substr(0, reply.find('\n'));
}

}  // namespace htune
