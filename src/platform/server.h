#ifndef HTUNE_PLATFORM_SERVER_H_
#define HTUNE_PLATFORM_SERVER_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "common/statusor.h"

namespace htune {

/// A blocking, single-threaded, newline-delimited request/reply server on a
/// Unix-domain stream socket. One connection is served at a time; each
/// request line gets exactly one reply line. Single-threaded on purpose:
/// the serving loop drives the deterministic shared-market simulation, and
/// one writer means no locking anywhere near the engine.
class UnixLineServer {
 public:
  /// Handles one request line (without the trailing newline) and returns
  /// the reply line. Set *shutdown to make the server return from Serve
  /// after replying.
  using Handler =
      std::function<std::string(const std::string& line, bool* shutdown)>;

  explicit UnixLineServer(std::string socket_path);
  ~UnixLineServer();

  UnixLineServer(const UnixLineServer&) = delete;
  UnixLineServer& operator=(const UnixLineServer&) = delete;

  /// Binds and listens. A stale socket file at the path is unlinked first
  /// (the server owns its path). Call once.
  Status Listen();

  /// Accepts connections and serves request lines until a handler sets
  /// *shutdown. Returns OK on clean shutdown.
  Status Serve(const Handler& handler);

  const std::string& socket_path() const { return path_; }

 private:
  std::string path_;
  int listen_fd_ = -1;
};

/// Client side: connect, send one request line, read one reply line.
StatusOr<std::string> SendUnixRequest(const std::string& socket_path,
                                      const std::string& line);

}  // namespace htune

#endif  // HTUNE_PLATFORM_SERVER_H_
