#include "platform/shared_market.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "durability/serialize.h"
#include "durability/snapshot.h"

namespace htune {

namespace {

/// Snapshot header: version bumps on any layout change (no cross-version
/// decoding — platform snapshots live inside one service journal whose
/// writer and reader always ship together).
constexpr uint32_t kSharedMarketStateVersion = 1;

/// Safety horizon for RunToCompletion, in worker arrivals. Far above any
/// legitimate run (the 1k-job bench stays under ten million); only an
/// impossible configuration (all weights zero forever) can reach it.
constexpr uint64_t kMaxArrivalsPerRun = 500'000'000;

void EncodeRngState(const Random::State& state, Encoder& e) {
  for (const uint64_t word : state.engine) {
    e.PutU64(word);
  }
  e.PutBool(state.has_cached_normal);
  e.PutDouble(state.cached_normal);
}

Status DecodeRngState(Decoder& d, Random::State* state) {
  for (uint64_t& word : state->engine) {
    HTUNE_RETURN_IF_ERROR(d.GetU64(&word));
  }
  HTUNE_RETURN_IF_ERROR(d.GetBool(&state->has_cached_normal));
  return d.GetDouble(&state->cached_normal);
}

}  // namespace

/// One open task: sequential repetitions at rep_prices, answers decided at
/// acceptance and revealed at completion (mirroring MarketSimulator's
/// bookkeeping so outcome shapes are interchangeable).
struct SharedMarket::SharedTask {
  TaskId id = 0;
  std::vector<int> rep_prices;
  double processing_rate = 1.0;
  int true_answer = 0;
  int num_options = 2;
  TaskOutcome outcome;
  /// True while the current repetition awaits a worker.
  bool on_hold = true;
  double current_posted_time = 0.0;
  /// curve->Rate(current price); valid while on_hold. Cached so the
  /// per-arrival walk reads a plain double, recomputed (never adjusted)
  /// on every price change.
  double weight = 0.0;  // HTUNE_TRANSIENT: recomputed from the curve on restore

  /// Completed repetitions (the current one is exposed or processing).
  size_t RepsDone() const {
    const size_t accepted = outcome.repetitions.size();
    return on_hold || accepted == 0 ||
                   outcome.repetitions.back().completed_time > 0.0 ||
                   outcome.completed_time > 0.0
               ? accepted
               : accepted - 1;
  }
};

struct SharedMarket::SharedJob {
  uint64_t id = 0;
  Random rng;
  std::vector<SharedTask> open;  // posting order — the candidate walk
  std::vector<TaskOutcome> completed;
  long spent = 0;
  TaskId next_task = 1;
  /// Cached left-to-right sum of on-hold task weights (RecomputeJobWeight).
  double total_weight = 0.0;  // HTUNE_TRANSIENT: RecomputeJobWeight on restore
  std::vector<TraceEvent> trace;

  explicit SharedJob(uint64_t job_id, uint64_t seed)
      : id(job_id), rng(seed) {}
};

Status ValidateSharedMarketConfig(const SharedMarketConfig& config) {
  if (!(config.worker_arrival_rate > 0.0) ||
      !std::isfinite(config.worker_arrival_rate)) {
    return InvalidArgumentError(
        "SharedMarketConfig: worker_arrival_rate must be positive and "
        "finite");
  }
  if (std::isnan(config.worker_error_prob) || config.worker_error_prob < 0.0 ||
      config.worker_error_prob > 1.0) {
    return InvalidArgumentError(
        "SharedMarketConfig: worker_error_prob must lie in [0, 1]");
  }
  if (config.curve == nullptr) {
    return InvalidArgumentError(
        "SharedMarketConfig: a shared price-rate curve is required");
  }
  return OkStatus();
}

SharedMarket::SharedMarket(const SharedMarketConfig& config)
    : config_(config),
      stream_(config.worker_arrival_rate, config.seed),
      queue_(MakeEventQueue(config.event_queue)) {
  HTUNE_CHECK(ValidateSharedMarketConfig(config).ok());
}

SharedMarket::~SharedMarket() = default;

SharedMarket::SharedJob* SharedMarket::FindJob(uint64_t job_id) {
  for (SharedJob& job : jobs_) {
    if (job.id == job_id) {
      return &job;
    }
  }
  return nullptr;
}

const SharedMarket::SharedJob* SharedMarket::FindJob(uint64_t job_id) const {
  for (const SharedJob& job : jobs_) {
    if (job.id == job_id) {
      return &job;
    }
  }
  return nullptr;
}

SharedMarket::SharedTask* SharedMarket::FindOpenTask(SharedJob& job,
                                                     TaskId task) {
  for (SharedTask& t : job.open) {
    if (t.id == task) {
      return &t;
    }
  }
  return nullptr;
}

const SharedMarket::SharedTask* SharedMarket::FindOpenTask(
    const SharedJob& job, TaskId task) const {
  for (const SharedTask& t : job.open) {
    if (t.id == task) {
      return &t;
    }
  }
  return nullptr;
}

Status SharedMarket::AddJob(uint64_t job_id, uint64_t seed) {
  if (!jobs_.empty() && jobs_.back().id >= job_id) {
    return InvalidArgumentError(
        "SharedMarket: job ids must be added in strictly ascending order "
        "(got " + std::to_string(job_id) + " after " +
        std::to_string(jobs_.back().id) + ")");
  }
  jobs_.emplace_back(SharedJob(job_id, seed));
  return OkStatus();
}

void SharedMarket::RecomputeJobWeight(SharedJob& job) {
  // The canonical left-to-right loop: the job's total is a pure function
  // of its current on-hold membership and cached task weights, so a
  // restored engine recomputing it lands on the identical bits.
  double total = 0.0;
  for (const SharedTask& task : job.open) {
    if (task.on_hold) {
      total += task.weight;
    }
  }
  job.total_weight = total;
}

void SharedMarket::Record(SharedJob& job, const TraceEvent& event) {
  if (config_.record_trace) {
    job.trace.push_back(event);
  }
}

StatusOr<TaskId> SharedMarket::PostTask(uint64_t job_id,
                                        const std::vector<int>& rep_prices,
                                        double processing_rate,
                                        int true_answer, int num_options) {
  SharedJob* job = FindJob(job_id);
  if (job == nullptr) {
    return NotFoundError("SharedMarket: unknown job " +
                         std::to_string(job_id));
  }
  if (rep_prices.empty()) {
    return InvalidArgumentError("SharedMarket: a task needs >= 1 repetition");
  }
  for (const int price : rep_prices) {
    if (price < 1) {
      return InvalidArgumentError(
          "SharedMarket: repetition prices must be >= 1, got " +
          std::to_string(price));
    }
  }
  if (!(processing_rate > 0.0) || !std::isfinite(processing_rate)) {
    return InvalidArgumentError(
        "SharedMarket: processing_rate must be positive and finite");
  }
  if (num_options < 2 || true_answer < 0 || true_answer >= num_options) {
    return InvalidArgumentError(
        "SharedMarket: true_answer must name one of >= 2 options");
  }
  SharedTask task;
  task.id = job->next_task++;
  task.rep_prices = rep_prices;
  task.processing_rate = processing_rate;
  task.true_answer = true_answer;
  task.num_options = num_options;
  task.outcome.id = task.id;
  task.outcome.posted_time = now_;
  task.on_hold = true;
  task.current_posted_time = now_;
  task.weight = config_.curve->Rate(static_cast<double>(rep_prices.front()));
  job->open.push_back(std::move(task));
  ++open_tasks_;
  ++counts_.tasks_posted;
  RecomputeJobWeight(*job);
  return job->open.back().id;
}

Status SharedMarket::Reprice(uint64_t job_id, TaskId task_id, int new_price) {
  SharedJob* job = FindJob(job_id);
  if (job == nullptr) {
    return NotFoundError("SharedMarket: unknown job " +
                         std::to_string(job_id));
  }
  if (new_price < 1) {
    return InvalidArgumentError("SharedMarket: reprice below 1 unit");
  }
  SharedTask* task = FindOpenTask(*job, task_id);
  if (task == nullptr) {
    for (const TaskOutcome& done : job->completed) {
      if (done.id == task_id) {
        return FailedPreconditionError("SharedMarket: task " +
                                       std::to_string(task_id) +
                                       " already completed");
      }
    }
    return NotFoundError("SharedMarket: unknown task " +
                         std::to_string(task_id));
  }
  // The accepted (in-flight) repetition keeps its original terms; the
  // current exposure and everything after it re-post at the new price.
  for (size_t i = task->RepsDone(); i < task->rep_prices.size(); ++i) {
    task->rep_prices[i] = new_price;
  }
  if (task->on_hold) {
    task->weight = config_.curve->Rate(static_cast<double>(new_price));
    RecomputeJobWeight(*job);
  }
  ++counts_.reprices;
  return OkStatus();
}

double SharedMarket::TotalPostedWeight() const {
  double total = 0.0;
  for (const SharedJob& job : jobs_) {
    total += job.total_weight;
  }
  return total;
}

void SharedMarket::StepArrival() {
  const SharedArrivalStream::Draw draw = stream_.StepDraw();
  now_ = draw.time;
  ++counts_.worker_arrivals;

  // W over per-job cached totals, left to right in job order — the outer
  // level of the hierarchical candidate walk.
  double total = 0.0;
  for (const SharedJob& job : jobs_) {
    total += job.total_weight;
  }
  const double threshold =
      draw.selector *
      (total > config_.worker_arrival_rate ? total
                                           : config_.worker_arrival_rate);
  if (threshold >= total || total <= 0.0) {
    return;  // the worker walks away (unsaturated headroom)
  }

  // Select the job by cumulative total, then the task inside it by
  // cumulative weight. Float rounding in threshold - cumulative can push
  // the local coordinate onto (not inside) the job's total, so both walks
  // fall back to the last live candidate — a deterministic tie-break.
  SharedJob* selected_job = nullptr;
  double local = 0.0;
  double cumulative = 0.0;
  SharedJob* last_live = nullptr;
  for (SharedJob& job : jobs_) {
    if (job.total_weight <= 0.0) {
      continue;
    }
    last_live = &job;
    if (threshold < cumulative + job.total_weight) {
      selected_job = &job;
      local = threshold - cumulative;
      break;
    }
    cumulative += job.total_weight;
  }
  if (selected_job == nullptr) {
    selected_job = last_live;
    local = selected_job->total_weight;
  }

  SharedTask* selected = nullptr;
  SharedTask* last_on_hold = nullptr;
  double task_cumulative = 0.0;
  for (SharedTask& task : selected_job->open) {
    if (!task.on_hold || task.weight <= 0.0) {
      continue;
    }
    last_on_hold = &task;
    task_cumulative += task.weight;
    if (local < task_cumulative) {
      selected = &task;
      break;
    }
  }
  if (selected == nullptr) {
    selected = last_on_hold;
  }
  HTUNE_CHECK(selected != nullptr);

  // Acceptance: the worker takes this repetition. Answer decided now from
  // the job's private stream (error Bernoulli, then the wrong-option pick
  // when it errs, then the processing Exponential — a fixed draw order).
  SharedJob& job = *selected_job;
  SharedTask& task = *selected;
  const size_t slot = task.RepsDone();
  RepetitionOutcome rep;
  rep.posted_time = task.current_posted_time;
  rep.accepted_time = now_;
  rep.worker = draw.worker;
  rep.price = task.rep_prices[slot];
  if (job.rng.Bernoulli(config_.worker_error_prob)) {
    const int wrong = static_cast<int>(
        job.rng.UniformInt(static_cast<uint64_t>(task.num_options - 1)));
    rep.answer = wrong >= task.true_answer ? wrong + 1 : wrong;
    rep.correct = false;
  } else {
    rep.answer = task.true_answer;
    rep.correct = true;
  }
  task.outcome.repetitions.push_back(rep);
  task.on_hold = false;
  ++counts_.acceptances;
  Record(job, {now_, TraceEventKind::kTaskAccepted, draw.worker, task.id,
               static_cast<int>(slot) + 1});

  const double processing = job.rng.Exponential(task.processing_rate);
  queue_->Push({now_ + processing, event_sequence_++, task.id,
                MarketEvent::Kind::kCompletion, job.id});
  RecomputeJobWeight(job);
}

void SharedMarket::ApplyCompletion(const MarketEvent& event) {
  now_ = event.time;
  ++counts_.completions;
  SharedJob* job = FindJob(event.generation);
  HTUNE_CHECK(job != nullptr);
  SharedTask* task = FindOpenTask(*job, event.task);
  HTUNE_CHECK(task != nullptr);

  RepetitionOutcome& rep = task->outcome.repetitions.back();
  rep.completed_time = now_;
  job->spent += rep.price;
  const int rep_index = static_cast<int>(task->outcome.repetitions.size());
  Record(*job, {now_, TraceEventKind::kRepetitionCompleted, rep.worker,
                task->id, rep_index});

  if (task->outcome.repetitions.size() == task->rep_prices.size()) {
    task->outcome.completed_time = now_;
    Record(*job, {now_, TraceEventKind::kTaskCompleted, 0, task->id,
                  rep_index});
    job->completed.push_back(std::move(task->outcome));
    for (auto it = job->open.begin(); it != job->open.end(); ++it) {
      if (it->id == event.task) {
        job->open.erase(it);
        break;
      }
    }
    --open_tasks_;
  } else {
    task->on_hold = true;
    task->current_posted_time = now_;
    task->weight = config_.curve->Rate(
        static_cast<double>(task->rep_prices[task->RepsDone()]));
  }
  RecomputeJobWeight(*job);
}

size_t SharedMarket::RunUntil(double deadline) {
  while (open_tasks_ > 0) {
    const double arrival = stream_.NextArrivalTime();
    if (!queue_->empty() && queue_->Min().time <= arrival) {
      if (queue_->Min().time > deadline) {
        break;
      }
      const MarketEvent event = queue_->Pop();
      ApplyCompletion(event);
    } else {
      if (arrival > deadline) {
        break;
      }
      StepArrival();
    }
  }
  return open_tasks_;
}

Status SharedMarket::RunToCompletion() {
  if (open_tasks_ == 0) {
    return FailedPreconditionError("SharedMarket: no open tasks to run");
  }
  const uint64_t start_arrivals = counts_.worker_arrivals;
  while (open_tasks_ > 0) {
    if (counts_.worker_arrivals - start_arrivals > kMaxArrivalsPerRun) {
      return InternalError(
          "SharedMarket: safety horizon exceeded (" +
          std::to_string(kMaxArrivalsPerRun) +
          " arrivals without completing the open tasks)");
    }
    const double arrival = stream_.NextArrivalTime();
    if (!queue_->empty() && queue_->Min().time <= arrival) {
      const MarketEvent event = queue_->Pop();
      ApplyCompletion(event);
    } else {
      StepArrival();
    }
  }
  return OkStatus();
}

const std::vector<TaskOutcome>& SharedMarket::CompletedOutcomes(
    uint64_t job_id) const {
  const SharedJob* job = FindJob(job_id);
  HTUNE_CHECK(job != nullptr);
  return job->completed;
}

long SharedMarket::TotalSpent(uint64_t job_id) const {
  const SharedJob* job = FindJob(job_id);
  HTUNE_CHECK(job != nullptr);
  return job->spent;
}

const std::vector<TraceEvent>& SharedMarket::Trace(uint64_t job_id) const {
  const SharedJob* job = FindJob(job_id);
  HTUNE_CHECK(job != nullptr);
  return job->trace;
}

size_t SharedMarket::OpenTaskCount(uint64_t job_id) const {
  const SharedJob* job = FindJob(job_id);
  HTUNE_CHECK(job != nullptr);
  return job->open.size();
}

std::vector<TaskId> SharedMarket::OpenTaskIds(uint64_t job_id) const {
  const SharedJob* job = FindJob(job_id);
  HTUNE_CHECK(job != nullptr);
  std::vector<TaskId> ids;
  ids.reserve(job->open.size());
  for (const SharedTask& task : job->open) {
    ids.push_back(task.id);
  }
  return ids;
}

StatusOr<double> SharedMarket::OnHoldSince(uint64_t job_id,
                                           TaskId task_id) const {
  const SharedJob* job = FindJob(job_id);
  if (job == nullptr) {
    return NotFoundError("SharedMarket: unknown job " +
                         std::to_string(job_id));
  }
  const SharedTask* task = FindOpenTask(*job, task_id);
  if (task == nullptr) {
    return NotFoundError("SharedMarket: unknown or completed task " +
                         std::to_string(task_id));
  }
  if (!task->on_hold) {
    return FailedPreconditionError(
        "SharedMarket: task " + std::to_string(task_id) +
        " is being processed, not on hold");
  }
  return task->current_posted_time;
}

StatusOr<int> SharedMarket::CurrentPrice(uint64_t job_id,
                                         TaskId task_id) const {
  const SharedJob* job = FindJob(job_id);
  if (job == nullptr) {
    return NotFoundError("SharedMarket: unknown job " +
                         std::to_string(job_id));
  }
  const SharedTask* task = FindOpenTask(*job, task_id);
  if (task == nullptr) {
    return FailedPreconditionError("SharedMarket: task " +
                                   std::to_string(task_id) +
                                   " completed or unknown");
  }
  return task->rep_prices[task->RepsDone()];
}

std::string SharedMarket::CaptureState() const {
  Encoder e;
  e.PutU32(kSharedMarketStateVersion);
  const SharedStreamState stream = stream_.CaptureState();
  e.PutDouble(stream.now);
  e.PutDouble(stream.next_arrival_time);
  e.PutU64(stream.arrivals);
  EncodeRngState(stream.rng, e);
  e.PutDouble(now_);
  e.PutU64(event_sequence_);

  const std::vector<MarketEvent> events = queue_->SortedSnapshot();
  e.PutU64(events.size());
  for (const MarketEvent& event : events) {
    e.PutDouble(event.time);
    e.PutU64(event.sequence);
    e.PutU64(event.task);
    e.PutU8(static_cast<uint8_t>(event.kind));
    e.PutU64(event.generation);
  }

  e.PutU64(jobs_.size());
  for (const SharedJob& job : jobs_) {
    e.PutU64(job.id);
    EncodeRngState(job.rng.SaveState(), e);
    e.PutU64(job.next_task);
    e.PutI64(job.spent);
    e.PutU64(job.open.size());
    for (const SharedTask& task : job.open) {
      e.PutU64(task.id);
      e.PutI32Vector(task.rep_prices);
      e.PutDouble(task.processing_rate);
      e.PutI32(task.true_answer);
      e.PutI32(task.num_options);
      e.PutBool(task.on_hold);
      e.PutDouble(task.current_posted_time);
      EncodeTaskOutcome(task.outcome, e);
    }
    e.PutU64(job.completed.size());
    for (const TaskOutcome& outcome : job.completed) {
      EncodeTaskOutcome(outcome, e);
    }
    EncodeTraceEvents(job.trace, e);
  }
  return e.Release();
}

Status SharedMarket::RestoreState(std::string_view bytes) {
  Decoder d(bytes);
  uint32_t version = 0;
  HTUNE_RETURN_IF_ERROR(d.GetU32(&version));
  if (version != kSharedMarketStateVersion) {
    return InvalidArgumentError(
        "SharedMarket: unsupported snapshot version " +
        std::to_string(version));
  }
  SharedStreamState stream;
  HTUNE_RETURN_IF_ERROR(d.GetDouble(&stream.now));
  HTUNE_RETURN_IF_ERROR(d.GetDouble(&stream.next_arrival_time));
  HTUNE_RETURN_IF_ERROR(d.GetU64(&stream.arrivals));
  HTUNE_RETURN_IF_ERROR(DecodeRngState(d, &stream.rng));
  double restored_now = 0.0;
  uint64_t event_sequence = 0;
  HTUNE_RETURN_IF_ERROR(d.GetDouble(&restored_now));
  HTUNE_RETURN_IF_ERROR(d.GetU64(&event_sequence));

  uint64_t event_count = 0;
  HTUNE_RETURN_IF_ERROR(d.GetU64(&event_count));
  if (event_count > d.remaining()) {
    return InvalidArgumentError("SharedMarket: corrupt event count");
  }
  std::vector<MarketEvent> events;
  events.reserve(static_cast<size_t>(event_count));
  for (uint64_t i = 0; i < event_count; ++i) {
    MarketEvent event;
    uint8_t kind = 0;
    HTUNE_RETURN_IF_ERROR(d.GetDouble(&event.time));
    HTUNE_RETURN_IF_ERROR(d.GetU64(&event.sequence));
    HTUNE_RETURN_IF_ERROR(d.GetU64(&event.task));
    HTUNE_RETURN_IF_ERROR(d.GetU8(&kind));
    HTUNE_RETURN_IF_ERROR(d.GetU64(&event.generation));
    event.kind = static_cast<MarketEvent::Kind>(kind);
    events.push_back(event);
  }

  uint64_t job_count = 0;
  HTUNE_RETURN_IF_ERROR(d.GetU64(&job_count));
  if (job_count > d.remaining()) {
    return InvalidArgumentError("SharedMarket: corrupt job count");
  }
  std::vector<SharedJob> jobs;
  jobs.reserve(static_cast<size_t>(job_count));
  size_t open_tasks = 0;
  for (uint64_t i = 0; i < job_count; ++i) {
    uint64_t job_id = 0;
    HTUNE_RETURN_IF_ERROR(d.GetU64(&job_id));
    if (!jobs.empty() && jobs.back().id >= job_id) {
      return InvalidArgumentError(
          "SharedMarket: snapshot jobs out of order");
    }
    SharedJob job(job_id, /*seed=*/0);
    Random::State rng;
    HTUNE_RETURN_IF_ERROR(DecodeRngState(d, &rng));
    job.rng.RestoreState(rng);
    HTUNE_RETURN_IF_ERROR(d.GetU64(&job.next_task));
    int64_t spent = 0;
    HTUNE_RETURN_IF_ERROR(d.GetI64(&spent));
    job.spent = static_cast<long>(spent);

    uint64_t task_count = 0;
    HTUNE_RETURN_IF_ERROR(d.GetU64(&task_count));
    if (task_count > d.remaining()) {
      return InvalidArgumentError("SharedMarket: corrupt open-task count");
    }
    job.open.reserve(static_cast<size_t>(task_count));
    for (uint64_t j = 0; j < task_count; ++j) {
      SharedTask task;
      HTUNE_RETURN_IF_ERROR(d.GetU64(&task.id));
      HTUNE_RETURN_IF_ERROR(d.GetI32Vector(&task.rep_prices));
      HTUNE_RETURN_IF_ERROR(d.GetDouble(&task.processing_rate));
      HTUNE_RETURN_IF_ERROR(d.GetI32(&task.true_answer));
      HTUNE_RETURN_IF_ERROR(d.GetI32(&task.num_options));
      HTUNE_RETURN_IF_ERROR(d.GetBool(&task.on_hold));
      HTUNE_RETURN_IF_ERROR(d.GetDouble(&task.current_posted_time));
      HTUNE_RETURN_IF_ERROR(DecodeTaskOutcome(d, task.outcome));
      if (task.rep_prices.empty() ||
          task.outcome.repetitions.size() > task.rep_prices.size()) {
        return InvalidArgumentError(
            "SharedMarket: snapshot task shape invalid");
      }
      // The cached weight is derived state: recompute from the curve, the
      // same call a continuously-running engine made at the last change.
      if (task.on_hold) {
        task.weight = config_.curve->Rate(
            static_cast<double>(task.rep_prices[task.RepsDone()]));
      }
      job.open.push_back(std::move(task));
    }
    open_tasks += job.open.size();

    uint64_t completed_count = 0;
    HTUNE_RETURN_IF_ERROR(d.GetU64(&completed_count));
    if (completed_count > d.remaining()) {
      return InvalidArgumentError("SharedMarket: corrupt completed count");
    }
    job.completed.reserve(static_cast<size_t>(completed_count));
    for (uint64_t j = 0; j < completed_count; ++j) {
      TaskOutcome outcome;
      HTUNE_RETURN_IF_ERROR(DecodeTaskOutcome(d, outcome));
      job.completed.push_back(std::move(outcome));
    }
    HTUNE_RETURN_IF_ERROR(DecodeTraceEvents(d, job.trace));
    RecomputeJobWeight(job);
    jobs.push_back(std::move(job));
  }
  HTUNE_RETURN_IF_ERROR(d.ExpectDone());

  stream_.RestoreState(stream);
  now_ = restored_now;
  event_sequence_ = event_sequence;
  queue_->Assign(std::move(events));
  jobs_ = std::move(jobs);
  open_tasks_ = open_tasks;
  return OkStatus();
}

}  // namespace htune
