#include "crowddb/categorize.h"

#include <algorithm>
#include <set>

namespace htune {

StatusOr<CrowdCategorize> CrowdCategorize::Create(
    std::vector<Item> items, std::vector<double> boundaries,
    int repetitions) {
  if (items.empty()) {
    return InvalidArgumentError("CrowdCategorize: need at least one item");
  }
  if (boundaries.empty()) {
    return InvalidArgumentError(
        "CrowdCategorize: need at least one boundary (two buckets)");
  }
  if (repetitions < 1) {
    return InvalidArgumentError("CrowdCategorize: repetitions must be >= 1");
  }
  for (size_t i = 1; i < boundaries.size(); ++i) {
    if (boundaries[i] <= boundaries[i - 1]) {
      return InvalidArgumentError(
          "CrowdCategorize: boundaries must be strictly increasing");
    }
  }
  std::set<int> ids;
  for (const Item& item : items) {
    ids.insert(item.id);
  }
  if (ids.size() != items.size()) {
    return InvalidArgumentError("CrowdCategorize: item ids must be distinct");
  }
  return CrowdCategorize(std::move(items), std::move(boundaries),
                         repetitions);
}

int CrowdCategorize::TrueBucket(double value) const {
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  return static_cast<int>(it - boundaries_.begin());
}

TuningProblem CrowdCategorize::MakeProblem(
    long budget, std::shared_ptr<const PriceRateCurve> curve,
    double processing_rate) const {
  TaskGroup group;
  group.name = "categorize-votes";
  group.num_tasks = static_cast<int>(items_.size());
  group.repetitions = repetitions_;
  group.processing_rate = processing_rate;
  group.curve = std::move(curve);
  TuningProblem problem;
  problem.groups.push_back(std::move(group));
  problem.budget = budget;
  return problem;
}

std::vector<QuestionSpec> CrowdCategorize::Questions() const {
  std::vector<QuestionSpec> questions;
  questions.reserve(items_.size());
  for (const Item& item : items_) {
    QuestionSpec q;
    q.num_options = NumBuckets();
    q.true_answer = TrueBucket(item.value);
    questions.push_back(q);
  }
  return questions;
}

StatusOr<CategorizeResult> CrowdCategorize::Decode(
    const ExecutionResult& execution) const {
  if (execution.answers.size() != items_.size()) {
    return InvalidArgumentError(
        "CrowdCategorize::Decode: answer count does not match item count");
  }
  CategorizeResult result;
  result.categories.reserve(items_.size());
  int correct = 0;
  for (size_t i = 0; i < items_.size(); ++i) {
    const int bucket = MajorityVote(execution.answers[i]);
    result.categories.push_back(bucket);
    if (bucket == TrueBucket(items_[i].value)) {
      ++correct;
    }
  }
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(items_.size());
  result.latency = execution.latency;
  result.spent = execution.spent;
  return result;
}

StatusOr<CategorizeResult> CrowdCategorize::Run(
    MarketSimulator& market, const BudgetAllocator& allocator, long budget,
    std::shared_ptr<const PriceRateCurve> curve,
    double processing_rate) const {
  const TuningProblem problem =
      MakeProblem(budget, std::move(curve), processing_rate);
  HTUNE_ASSIGN_OR_RETURN(const Allocation alloc, allocator.Allocate(problem));
  HTUNE_ASSIGN_OR_RETURN(
      const ExecutionResult execution,
      ExecuteJob(market, problem, alloc, Questions()));
  return Decode(execution);
}

}  // namespace htune
