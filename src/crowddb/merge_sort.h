#ifndef HTUNE_CROWDDB_MERGE_SORT_H_
#define HTUNE_CROWDDB_MERGE_SORT_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "crowddb/sort.h"
#include "crowddb/types.h"
#include "market/simulator.h"

namespace htune {

/// Result of a comparison-efficient crowd sort.
struct MergeSortResult {
  /// Item ids in descending crowd-judged value order.
  std::vector<int> ranking;
  /// Kendall correlation against the true order.
  double kendall_tau = 0.0;
  double latency = 0.0;
  long spent = 0;
  /// Pairwise comparisons actually asked.
  int comparisons = 0;
  /// Merge levels executed (the plan's sequential depth).
  int levels = 0;
};

/// Crowd-powered merge sort: the comparison-frugal alternative to
/// CrowdSort's all-pairs plan. Asks O(n log n) majority-vote comparisons
/// instead of n(n-1)/2, but the comparisons inside a merge are inherently
/// sequential (each depends on the previous verdict), so the plan trades
/// wall-clock depth for money — the planner-level latency/cost tradeoff the
/// paper's HPU framing motivates. Merges at the same level run in parallel
/// on the market.
class CrowdMergeSort {
 public:
  /// Requires >= 2 items with distinct ids and values, repetitions >= 1.
  static StatusOr<CrowdMergeSort> Create(std::vector<Item> items,
                                         int repetitions);

  /// Worst-case comparison count of the full bottom-up merge schedule.
  int WorstCaseComparisons() const;

  /// Runs the sort. Every comparison vote is paid
  /// budget / (WorstCaseComparisons() * repetitions) units (the EA-style
  /// even split over the worst-case work); returns InvalidArgument when
  /// that floor is below one unit. The market must be dedicated to this
  /// job (the run blocks on full completion between rounds).
  StatusOr<MergeSortResult> Run(MarketSimulator& market, long budget,
                                std::shared_ptr<const PriceRateCurve> curve,
                                double processing_rate) const;

 private:
  CrowdMergeSort(std::vector<Item> items, int repetitions)
      : items_(std::move(items)), repetitions_(repetitions) {}

  std::vector<Item> items_;
  int repetitions_;
};

}  // namespace htune

#endif  // HTUNE_CROWDDB_MERGE_SORT_H_
