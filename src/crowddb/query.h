#ifndef HTUNE_CROWDDB_QUERY_H_
#define HTUNE_CROWDDB_QUERY_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "crowddb/metrics.h"
#include "crowddb/types.h"
#include "market/simulator.h"
#include "tuning/allocator.h"

namespace htune {

/// Result of a two-phase crowd query.
struct QueryResult {
  /// Ids reported as the query answer, best first.
  std::vector<int> top_ids;
  /// Set quality against the true answer.
  PrecisionRecall quality;
  /// Sum of the sequential phases' latencies (a Job runs its phases one
  /// after another; §3's Job definition).
  double latency = 0.0;
  long spent = 0;
  /// Ids that survived the filter phase.
  std::vector<int> filtered_ids;
};

/// A concrete crowd-powered query plan:
///   SELECT id FROM items WHERE value >= threshold
///   ORDER BY value DESC LIMIT k
/// executed as two sequential phases — a CrowdFilter pass over all items,
/// then a CrowdTopK tournament over the survivors — with the budget split
/// between the phases in proportion to their expected vote counts. This is
/// the motivating "crowd-powered database" shape: a planner decomposes the
/// query, each phase is tuned with the given allocator, and phases chain on
/// the same market.
class TopKFilteredQuery {
 public:
  /// Requires >= 2 items with distinct ids and values, a k >= 1, and
  /// repetitions >= 1 for both phases.
  static StatusOr<TopKFilteredQuery> Create(std::vector<Item> items,
                                            double threshold, int k,
                                            int filter_repetitions,
                                            int topk_repetitions);

  /// Runs both phases. The reported k may be smaller than requested when
  /// the filter leaves fewer than k survivors. Returns InvalidArgument if
  /// the budget cannot cover one unit per vote in the worst case.
  StatusOr<QueryResult> Run(MarketSimulator& market,
                            const BudgetAllocator& allocator, long budget,
                            std::shared_ptr<const PriceRateCurve> curve,
                            double processing_rate) const;

 private:
  TopKFilteredQuery(std::vector<Item> items, double threshold, int k,
                    int filter_repetitions, int topk_repetitions)
      : items_(std::move(items)),
        threshold_(threshold),
        k_(k),
        filter_repetitions_(filter_repetitions),
        topk_repetitions_(topk_repetitions) {}

  std::vector<Item> items_;
  double threshold_;
  int k_;
  int filter_repetitions_;
  int topk_repetitions_;
};

}  // namespace htune

#endif  // HTUNE_CROWDDB_QUERY_H_
