#include "crowddb/top_k.h"

#include <algorithm>
#include <set>

#include "crowddb/max.h"

namespace htune {

StatusOr<CrowdTopK> CrowdTopK::Create(std::vector<Item> items, int k,
                                      int repetitions) {
  if (items.size() < 2) {
    return InvalidArgumentError("CrowdTopK: need at least two items");
  }
  if (k < 1 || k >= static_cast<int>(items.size())) {
    return InvalidArgumentError(
        "CrowdTopK: k must satisfy 1 <= k < item count");
  }
  if (repetitions < 1) {
    return InvalidArgumentError("CrowdTopK: repetitions must be >= 1");
  }
  std::set<int> ids;
  std::set<double> values;
  for (const Item& item : items) {
    ids.insert(item.id);
    values.insert(item.value);
  }
  if (ids.size() != items.size() || values.size() != items.size()) {
    return InvalidArgumentError(
        "CrowdTopK: item ids and values must be distinct");
  }
  return CrowdTopK(std::move(items), k, repetitions);
}

long CrowdTopK::TotalMatches() const {
  // Tournament j over (n - j) survivors costs n - j - 1 matches.
  const long n = static_cast<long>(items_.size());
  long total = 0;
  for (int j = 0; j < k_; ++j) {
    total += n - j - 1;
  }
  return total;
}

StatusOr<TopKResult> CrowdTopK::Run(
    MarketSimulator& market, const BudgetAllocator& allocator, long budget,
    std::shared_ptr<const PriceRateCurve> curve,
    double processing_rate) const {
  const long total_matches = TotalMatches();
  if (budget < total_matches * repetitions_) {
    return InvalidArgumentError(
        "CrowdTopK: budget below one unit per vote across all tournaments");
  }

  TopKResult result;
  std::vector<Item> pool = items_;
  long budget_left = budget;
  long matches_left = total_matches;
  for (int round = 0; round < k_; ++round) {
    const long round_matches = static_cast<long>(pool.size()) - 1;
    // Proportional share of what remains, so integer remainders roll
    // forward instead of starving the last tournaments.
    const long round_budget = budget_left * round_matches / matches_left;
    const auto tournament = CrowdMax::Create(pool, repetitions_);
    HTUNE_RETURN_IF_ERROR(tournament.status());
    HTUNE_ASSIGN_OR_RETURN(
        const MaxResult winner,
        tournament->Run(market, allocator, round_budget, curve,
                        processing_rate));
    result.top_ids.push_back(winner.winner_id);
    result.latency += winner.latency;
    result.spent += winner.spent;
    result.rounds += winner.rounds;
    budget_left -= winner.spent;
    matches_left -= round_matches;
    pool.erase(std::find_if(pool.begin(), pool.end(),
                            [&](const Item& item) {
                              return item.id == winner.winner_id;
                            }));
  }

  // Ground truth: the k largest values.
  std::vector<Item> by_value = items_;
  std::sort(by_value.begin(), by_value.end(),
            [](const Item& a, const Item& b) { return a.value > b.value; });
  std::vector<int> truth;
  truth.reserve(static_cast<size_t>(k_));
  for (int i = 0; i < k_; ++i) {
    truth.push_back(by_value[static_cast<size_t>(i)].id);
  }
  result.quality = ComputePrecisionRecall(result.top_ids, truth);
  return result;
}

}  // namespace htune
