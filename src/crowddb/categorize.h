#ifndef HTUNE_CROWDDB_CATEGORIZE_H_
#define HTUNE_CROWDDB_CATEGORIZE_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "crowddb/executor.h"
#include "crowddb/types.h"
#include "market/simulator.h"
#include "tuning/allocator.h"

namespace htune {

/// Result of a crowd-powered categorization (the group-by primitive of
/// [10] on our substrate).
struct CategorizeResult {
  /// categories[i] = majority-voted bucket index of item i (input order).
  std::vector<int> categories;
  /// Fraction of items bucketed correctly.
  double accuracy = 0.0;
  double latency = 0.0;
  long spent = 0;
};

/// Crowd-powered GROUP BY: each item is shown with the bucket descriptions
/// and workers pick one (a single multi-option vote repeated `repetitions`
/// times, majority aggregated). Ground truth buckets come from value
/// boundaries: item with value v belongs to the first bucket whose upper
/// boundary exceeds v (the last bucket is unbounded above).
class CrowdCategorize {
 public:
  /// Requires >= 1 item with distinct ids, strictly increasing boundaries
  /// (>= 1 of them, giving boundaries.size() + 1 buckets), repetitions >= 1.
  static StatusOr<CrowdCategorize> Create(std::vector<Item> items,
                                          std::vector<double> boundaries,
                                          int repetitions);

  /// The H-Tuning instance: one group with one task per item.
  TuningProblem MakeProblem(long budget,
                            std::shared_ptr<const PriceRateCurve> curve,
                            double processing_rate) const;

  /// One multi-option question per item.
  std::vector<QuestionSpec> Questions() const;

  StatusOr<CategorizeResult> Decode(const ExecutionResult& execution) const;

  /// Convenience pipeline: MakeProblem -> allocator -> ExecuteJob -> Decode.
  StatusOr<CategorizeResult> Run(MarketSimulator& market,
                                 const BudgetAllocator& allocator,
                                 long budget,
                                 std::shared_ptr<const PriceRateCurve> curve,
                                 double processing_rate) const;

  /// True bucket of `value`.
  int TrueBucket(double value) const;
  int NumBuckets() const { return static_cast<int>(boundaries_.size()) + 1; }

 private:
  CrowdCategorize(std::vector<Item> items, std::vector<double> boundaries,
                  int repetitions)
      : items_(std::move(items)),
        boundaries_(std::move(boundaries)),
        repetitions_(repetitions) {}

  std::vector<Item> items_;
  std::vector<double> boundaries_;
  int repetitions_;
};

}  // namespace htune

#endif  // HTUNE_CROWDDB_CATEGORIZE_H_
