#include "crowddb/metrics.h"

#include <algorithm>
#include <map>
#include <set>

namespace htune {

StatusOr<double> KendallTau(const std::vector<int>& produced,
                            const std::vector<int>& truth) {
  if (produced.size() != truth.size() || produced.size() < 2) {
    return InvalidArgumentError(
        "KendallTau: need two equal-length orderings with >= 2 items");
  }
  {
    std::vector<int> a = produced, b = truth;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b || std::adjacent_find(a.begin(), a.end()) != a.end()) {
      return InvalidArgumentError(
          "KendallTau: orderings must be permutations of the same distinct "
          "ids");
    }
  }
  std::map<int, size_t> truth_position;
  for (size_t i = 0; i < truth.size(); ++i) {
    truth_position[truth[i]] = i;
  }
  const size_t n = produced.size();
  long concordant = 0, discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const bool same_order =
          truth_position.at(produced[i]) < truth_position.at(produced[j]);
      (same_order ? concordant : discordant) += 1;
    }
  }
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return (static_cast<double>(concordant) - static_cast<double>(discordant)) /
         pairs;
}

PrecisionRecall ComputePrecisionRecall(const std::vector<int>& predicted,
                                       const std::vector<int>& truth) {
  const std::set<int> predicted_set(predicted.begin(), predicted.end());
  const std::set<int> truth_set(truth.begin(), truth.end());
  size_t hits = 0;
  for (int id : predicted_set) {
    if (truth_set.count(id) > 0) ++hits;
  }
  PrecisionRecall pr;
  pr.precision = predicted_set.empty()
                     ? 1.0
                     : static_cast<double>(hits) /
                           static_cast<double>(predicted_set.size());
  pr.recall = truth_set.empty() ? 1.0
                                : static_cast<double>(hits) /
                                      static_cast<double>(truth_set.size());
  return pr;
}

}  // namespace htune
