#ifndef HTUNE_CROWDDB_TYPES_H_
#define HTUNE_CROWDDB_TYPES_H_

#include <vector>

namespace htune {

/// A data item processed by crowd-powered operators. `value` is the latent
/// ground truth (e.g. the true dot count of the paper's images); workers
/// only see the item, and the simulator uses `value` to decide which vote
/// answer is correct.
struct Item {
  int id = 0;
  double value = 0.0;
};

/// Ground-truth description of one atomic voting question.
struct QuestionSpec {
  /// Option index of the correct answer.
  int true_answer = 0;
  /// Number of options presented (2 for the binary votes used here).
  int num_options = 2;
};

/// Majority vote over answer option indices; ties broken toward the
/// smallest option. Returns -1 for an empty answer list.
int MajorityVote(const std::vector<int>& answers);

}  // namespace htune

#endif  // HTUNE_CROWDDB_TYPES_H_
