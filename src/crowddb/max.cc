#include "crowddb/max.h"

#include <algorithm>
#include <map>
#include <set>

#include "crowddb/executor.h"

namespace htune {

StatusOr<CrowdMax> CrowdMax::Create(std::vector<Item> items, int repetitions) {
  if (items.size() < 2) {
    return InvalidArgumentError("CrowdMax: need at least two items");
  }
  if (repetitions < 1) {
    return InvalidArgumentError("CrowdMax: repetitions must be >= 1");
  }
  std::set<int> ids;
  std::set<double> values;
  for (const Item& item : items) {
    ids.insert(item.id);
    values.insert(item.value);
  }
  if (ids.size() != items.size() || values.size() != items.size()) {
    return InvalidArgumentError("CrowdMax: item ids and values must be distinct");
  }
  return CrowdMax(std::move(items), repetitions);
}

StatusOr<MaxResult> CrowdMax::Run(MarketSimulator& market,
                                  const BudgetAllocator& allocator,
                                  long budget,
                                  std::shared_ptr<const PriceRateCurve> curve,
                                  double processing_rate) const {
  // Bracket structure up front: round r has floor(survivors / 2) matches.
  std::vector<int> matches_per_round;
  {
    int survivors = static_cast<int>(items_.size());
    while (survivors > 1) {
      matches_per_round.push_back(survivors / 2);
      survivors = survivors / 2 + survivors % 2;
    }
  }
  const long total_matches = TotalMatches();
  if (budget < total_matches * repetitions_) {
    return InvalidArgumentError(
        "CrowdMax: budget below one unit per vote across the bracket");
  }

  // Budget per round, proportional to match count; the integer remainder
  // goes to the first (largest) round.
  std::vector<long> round_budget(matches_per_round.size());
  long assigned = 0;
  for (size_t r = 0; r < matches_per_round.size(); ++r) {
    round_budget[r] = budget * matches_per_round[r] / total_matches;
    assigned += round_budget[r];
  }
  round_budget[0] += budget - assigned;

  MaxResult result;
  std::vector<Item> alive = items_;
  for (size_t r = 0; r < matches_per_round.size(); ++r) {
    // Pair consecutive survivors; a trailing odd item gets a bye.
    std::vector<std::pair<Item, Item>> matches;
    matches.reserve(static_cast<size_t>(matches_per_round[r]));
    std::vector<Item> next_round;
    for (size_t i = 0; i + 1 < alive.size(); i += 2) {
      matches.emplace_back(alive[i], alive[i + 1]);
    }
    if (alive.size() % 2 == 1) {
      next_round.push_back(alive.back());
    }

    TaskGroup group;
    group.name = "max-round-" + std::to_string(r);
    group.num_tasks = static_cast<int>(matches.size());
    group.repetitions = repetitions_;
    group.processing_rate = processing_rate;
    group.curve = curve;
    TuningProblem problem;
    problem.groups.push_back(std::move(group));
    problem.budget = round_budget[r];

    std::vector<QuestionSpec> questions;
    questions.reserve(matches.size());
    for (const auto& [a, b] : matches) {
      QuestionSpec q;
      q.num_options = 2;
      q.true_answer = a.value > b.value ? 0 : 1;
      questions.push_back(q);
    }

    HTUNE_ASSIGN_OR_RETURN(const Allocation alloc,
                           allocator.Allocate(problem));
    HTUNE_ASSIGN_OR_RETURN(
        const ExecutionResult execution,
        ExecuteJob(market, problem, alloc, questions));

    for (size_t m = 0; m < matches.size(); ++m) {
      const int verdict = MajorityVote(execution.answers[m]);
      next_round.push_back(verdict == 0 ? matches[m].first
                                        : matches[m].second);
    }
    result.latency += execution.latency;
    result.spent += execution.spent;
    ++result.rounds;
    alive = std::move(next_round);
  }

  const Item& truth = *std::max_element(
      items_.begin(), items_.end(),
      [](const Item& a, const Item& b) { return a.value < b.value; });
  result.winner_id = alive.front().id;
  result.correct = result.winner_id == truth.id;
  return result;
}

}  // namespace htune
