#include "crowddb/executor.h"

#include <algorithm>

namespace htune {

StatusOr<ExecutionResult> ExecuteJob(
    MarketSimulator& market, const TuningProblem& problem,
    const Allocation& alloc, const std::vector<QuestionSpec>& questions) {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  HTUNE_RETURN_IF_ERROR(ValidateAllocation(problem, alloc));
  if (questions.size() != static_cast<size_t>(problem.TotalTasks())) {
    return InvalidArgumentError(
        "ExecuteJob: need exactly one question per atomic task");
  }

  const double start = market.now();
  const long spent_before = market.TotalSpent();
  std::vector<TaskId> task_ids;
  task_ids.reserve(questions.size());

  size_t question_index = 0;
  for (size_t g = 0; g < problem.groups.size(); ++g) {
    const TaskGroup& group = problem.groups[g];
    for (int t = 0; t < group.num_tasks; ++t, ++question_index) {
      const std::vector<int>& prices = alloc.groups[g].prices[t];
      TaskSpec spec;
      spec.repetitions = group.repetitions;
      spec.processing_rate = group.processing_rate;
      spec.per_repetition_prices = prices;
      spec.per_repetition_rates.reserve(prices.size());
      for (int price : prices) {
        spec.per_repetition_rates.push_back(
            group.curve->Rate(static_cast<double>(price)));
      }
      spec.true_answer = questions[question_index].true_answer;
      spec.num_options = questions[question_index].num_options;
      HTUNE_ASSIGN_OR_RETURN(const TaskId id, market.PostTask(spec));
      task_ids.push_back(id);
    }
  }

  HTUNE_RETURN_IF_ERROR(market.RunToCompletion());

  ExecutionResult result;
  result.answers.reserve(task_ids.size());
  result.task_latencies.reserve(task_ids.size());
  double last_completion = start;
  for (const TaskId id : task_ids) {
    HTUNE_ASSIGN_OR_RETURN(const TaskOutcome* outcome,
                           market.GetOutcomeView(id));
    std::vector<int> answers;
    answers.reserve(outcome->repetitions.size());
    for (const RepetitionOutcome& rep : outcome->repetitions) {
      answers.push_back(rep.answer);
    }
    result.answers.push_back(std::move(answers));
    result.task_latencies.push_back(outcome->completed_time - start);
    last_completion = std::max(last_completion, outcome->completed_time);
  }
  result.latency = last_completion - start;
  result.spent = market.TotalSpent() - spent_before;
  return result;
}

}  // namespace htune
