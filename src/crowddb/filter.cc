#include "crowddb/filter.h"

#include <set>

namespace htune {

StatusOr<CrowdFilter> CrowdFilter::Create(std::vector<Item> items,
                                          double threshold, int repetitions) {
  if (items.empty()) {
    return InvalidArgumentError("CrowdFilter: need at least one item");
  }
  if (repetitions < 1) {
    return InvalidArgumentError("CrowdFilter: repetitions must be >= 1");
  }
  std::set<int> ids;
  for (const Item& item : items) {
    ids.insert(item.id);
  }
  if (ids.size() != items.size()) {
    return InvalidArgumentError("CrowdFilter: item ids must be distinct");
  }
  return CrowdFilter(std::move(items), threshold, repetitions);
}

TuningProblem CrowdFilter::MakeProblem(
    long budget, std::shared_ptr<const PriceRateCurve> curve,
    double processing_rate) const {
  TaskGroup group;
  group.name = "filter-threshold-votes";
  group.num_tasks = static_cast<int>(items_.size());
  group.repetitions = repetitions_;
  group.processing_rate = processing_rate;
  group.curve = std::move(curve);
  TuningProblem problem;
  problem.groups.push_back(std::move(group));
  problem.budget = budget;
  return problem;
}

std::vector<QuestionSpec> CrowdFilter::Questions() const {
  std::vector<QuestionSpec> questions;
  questions.reserve(items_.size());
  for (const Item& item : items_) {
    QuestionSpec q;
    q.num_options = 2;
    q.true_answer = item.value >= threshold_ ? 0 : 1;
    questions.push_back(q);
  }
  return questions;
}

StatusOr<FilterResult> CrowdFilter::Decode(
    const ExecutionResult& execution) const {
  if (execution.answers.size() != items_.size()) {
    return InvalidArgumentError(
        "CrowdFilter::Decode: answer count does not match item count");
  }
  FilterResult result;
  std::vector<int> truth;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (MajorityVote(execution.answers[i]) == 0) {
      result.selected.push_back(items_[i].id);
    }
    if (items_[i].value >= threshold_) {
      truth.push_back(items_[i].id);
    }
  }
  result.quality = ComputePrecisionRecall(result.selected, truth);
  result.latency = execution.latency;
  result.spent = execution.spent;
  return result;
}

StatusOr<FilterResult> CrowdFilter::Run(
    MarketSimulator& market, const BudgetAllocator& allocator, long budget,
    std::shared_ptr<const PriceRateCurve> curve,
    double processing_rate) const {
  const TuningProblem problem =
      MakeProblem(budget, std::move(curve), processing_rate);
  HTUNE_ASSIGN_OR_RETURN(const Allocation alloc, allocator.Allocate(problem));
  HTUNE_ASSIGN_OR_RETURN(
      const ExecutionResult execution,
      ExecuteJob(market, problem, alloc, Questions()));
  return Decode(execution);
}

}  // namespace htune
