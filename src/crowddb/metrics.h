#ifndef HTUNE_CROWDDB_METRICS_H_
#define HTUNE_CROWDDB_METRICS_H_

#include <vector>

#include "common/statusor.h"

namespace htune {

/// Kendall rank correlation between a produced ordering and the ground
/// truth: 1 for identical order, -1 for reversed. Both vectors list item
/// ids, must be permutations of each other with >= 2 elements; returns
/// InvalidArgument otherwise.
StatusOr<double> KendallTau(const std::vector<int>& produced,
                            const std::vector<int>& truth);

/// Precision/recall of a predicted id set against the true id set.
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  double F1() const {
    const double denom = precision + recall;
    return denom == 0.0 ? 0.0 : 2.0 * precision * recall / denom;
  }
};

/// Computes precision and recall; an empty prediction has precision 1 by
/// convention, an empty truth has recall 1.
PrecisionRecall ComputePrecisionRecall(const std::vector<int>& predicted,
                                       const std::vector<int>& truth);

}  // namespace htune

#endif  // HTUNE_CROWDDB_METRICS_H_
