#ifndef HTUNE_CROWDDB_TOP_K_H_
#define HTUNE_CROWDDB_TOP_K_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "crowddb/metrics.h"
#include "crowddb/types.h"
#include "market/simulator.h"
#include "tuning/allocator.h"

namespace htune {

/// Result of a crowd-powered top-k query.
struct TopKResult {
  /// The k item ids judged largest, best first.
  std::vector<int> top_ids;
  /// Set quality against the true top-k.
  PrecisionRecall quality;
  /// Sum of sequential phase latencies.
  double latency = 0.0;
  long spent = 0;
  int rounds = 0;
};

/// Crowd-powered top-k ([10]'s workload on our substrate): k successive
/// single-elimination tournaments; each round's winner is reported and
/// removed, so round j costs (survivors - 1) matches. Between tournaments
/// the previous bracket's verdicts are NOT reused — workers answer fresh
/// votes — keeping every reported rank backed by its own evidence. Each
/// match gathers `repetitions` majority votes.
class CrowdTopK {
 public:
  /// Requires 1 <= k < items.size(), distinct ids and values,
  /// repetitions >= 1.
  static StatusOr<CrowdTopK> Create(std::vector<Item> items, int k,
                                    int repetitions);

  /// Runs the k tournaments. The budget is split across tournaments
  /// proportionally to their match counts.
  StatusOr<TopKResult> Run(MarketSimulator& market,
                           const BudgetAllocator& allocator, long budget,
                           std::shared_ptr<const PriceRateCurve> curve,
                           double processing_rate) const;

  /// Total matches across all k tournaments.
  long TotalMatches() const;
  int k() const { return k_; }

 private:
  CrowdTopK(std::vector<Item> items, int k, int repetitions)
      : items_(std::move(items)), k_(k), repetitions_(repetitions) {}

  std::vector<Item> items_;
  int k_;
  int repetitions_;
};

}  // namespace htune

#endif  // HTUNE_CROWDDB_TOP_K_H_
