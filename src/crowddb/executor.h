#ifndef HTUNE_CROWDDB_EXECUTOR_H_
#define HTUNE_CROWDDB_EXECUTOR_H_

#include <vector>

#include "common/statusor.h"
#include "crowddb/types.h"
#include "market/simulator.h"
#include "tuning/allocation.h"
#include "tuning/problem.h"

namespace htune {

/// Result of running one tuned job on the market.
struct ExecutionResult {
  /// Wall-clock latency: last task completion minus job start.
  double latency = 0.0;
  /// Payment units spent.
  long spent = 0;
  /// answers[q] holds the repetitions' answers for question q, in the
  /// flattened (group-major, task-minor) order of the problem.
  std::vector<std::vector<int>> answers;
  /// Per-question completion times (job-relative).
  std::vector<double> task_latencies;
};

/// Posts every task of `problem` on `market` with the payments in `alloc`
/// (per-repetition rates derived from each group's price-rate curve), runs
/// the market to completion, and collects the answers. `questions` must
/// have one entry per atomic task, flattened group-major. Returns
/// InvalidArgument on shape mismatches and propagates market errors.
StatusOr<ExecutionResult> ExecuteJob(MarketSimulator& market,
                                     const TuningProblem& problem,
                                     const Allocation& alloc,
                                     const std::vector<QuestionSpec>& questions);

}  // namespace htune

#endif  // HTUNE_CROWDDB_EXECUTOR_H_
