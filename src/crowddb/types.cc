#include "crowddb/types.h"

#include <map>

namespace htune {

int MajorityVote(const std::vector<int>& answers) {
  if (answers.empty()) return -1;
  std::map<int, int> counts;
  for (int a : answers) {
    ++counts[a];
  }
  int best_option = -1;
  int best_count = 0;
  for (const auto& [option, count] : counts) {
    if (count > best_count) {  // map order breaks ties toward small options
      best_count = count;
      best_option = option;
    }
  }
  return best_option;
}

}  // namespace htune
