#include "crowddb/sort.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "crowddb/metrics.h"

namespace htune {

StatusOr<CrowdSort> CrowdSort::Create(std::vector<Item> items,
                                      int repetitions) {
  if (items.size() < 2) {
    return InvalidArgumentError("CrowdSort: need at least two items");
  }
  if (repetitions < 1) {
    return InvalidArgumentError("CrowdSort: repetitions must be >= 1");
  }
  std::set<int> ids;
  std::set<double> values;
  for (const Item& item : items) {
    ids.insert(item.id);
    values.insert(item.value);
  }
  if (ids.size() != items.size() || values.size() != items.size()) {
    return InvalidArgumentError(
        "CrowdSort: item ids and values must be distinct");
  }
  return CrowdSort(std::move(items), repetitions);
}

int CrowdSort::NumPairs() const {
  const int n = static_cast<int>(items_.size());
  return n * (n - 1) / 2;
}

TuningProblem CrowdSort::MakeProblem(
    long budget, std::shared_ptr<const PriceRateCurve> curve,
    double processing_rate) const {
  TaskGroup group;
  group.name = "sort-pairwise-votes";
  group.num_tasks = NumPairs();
  group.repetitions = repetitions_;
  group.processing_rate = processing_rate;
  group.curve = std::move(curve);
  TuningProblem problem;
  problem.groups.push_back(std::move(group));
  problem.budget = budget;
  return problem;
}

std::vector<QuestionSpec> CrowdSort::Questions() const {
  std::vector<QuestionSpec> questions;
  questions.reserve(static_cast<size_t>(NumPairs()));
  for (size_t i = 0; i < items_.size(); ++i) {
    for (size_t j = i + 1; j < items_.size(); ++j) {
      QuestionSpec q;
      q.num_options = 2;
      q.true_answer = items_[i].value > items_[j].value ? 0 : 1;
      questions.push_back(q);
    }
  }
  return questions;
}

StatusOr<SortResult> CrowdSort::Decode(const ExecutionResult& execution) const {
  if (execution.answers.size() != static_cast<size_t>(NumPairs())) {
    return InvalidArgumentError(
        "CrowdSort::Decode: answer count does not match pair count");
  }
  // Copeland score: one point per majority-vote pairwise win.
  std::map<int, int> wins;
  for (const Item& item : items_) {
    wins[item.id] = 0;
  }
  size_t q = 0;
  for (size_t i = 0; i < items_.size(); ++i) {
    for (size_t j = i + 1; j < items_.size(); ++j, ++q) {
      const int verdict = MajorityVote(execution.answers[q]);
      ++wins[verdict == 0 ? items_[i].id : items_[j].id];
    }
  }

  std::vector<int> ranking;
  ranking.reserve(items_.size());
  for (const Item& item : items_) {
    ranking.push_back(item.id);
  }
  std::sort(ranking.begin(), ranking.end(), [&wins](int a, int b) {
    if (wins.at(a) != wins.at(b)) return wins.at(a) > wins.at(b);
    return a < b;
  });

  std::vector<Item> by_value = items_;
  std::sort(by_value.begin(), by_value.end(),
            [](const Item& a, const Item& b) { return a.value > b.value; });
  std::vector<int> truth;
  truth.reserve(by_value.size());
  for (const Item& item : by_value) {
    truth.push_back(item.id);
  }

  SortResult result;
  result.ranking = ranking;
  result.latency = execution.latency;
  result.spent = execution.spent;
  HTUNE_ASSIGN_OR_RETURN(result.kendall_tau, KendallTau(ranking, truth));
  return result;
}

StatusOr<SortResult> CrowdSort::Run(
    MarketSimulator& market, const BudgetAllocator& allocator, long budget,
    std::shared_ptr<const PriceRateCurve> curve,
    double processing_rate) const {
  const TuningProblem problem =
      MakeProblem(budget, std::move(curve), processing_rate);
  HTUNE_ASSIGN_OR_RETURN(const Allocation alloc,
                         allocator.Allocate(problem));
  HTUNE_ASSIGN_OR_RETURN(
      const ExecutionResult execution,
      ExecuteJob(market, problem, alloc, Questions()));
  return Decode(execution);
}

}  // namespace htune
