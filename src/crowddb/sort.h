#ifndef HTUNE_CROWDDB_SORT_H_
#define HTUNE_CROWDDB_SORT_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "crowddb/executor.h"
#include "crowddb/types.h"
#include "market/simulator.h"
#include "tuning/allocator.h"

namespace htune {

/// Result of a crowd-powered sort.
struct SortResult {
  /// Item ids in descending crowd-judged value order.
  std::vector<int> ranking;
  /// Kendall correlation of `ranking` against the true value order.
  double kendall_tau = 0.0;
  double latency = 0.0;
  long spent = 0;
};

/// Crowd-powered sort (motivation example 1): decomposes an ORDER BY over
/// `items` into all-pairs binary comparison votes, each repeated
/// `repetitions` times, tunes the budget over them, executes on the market,
/// and ranks items by their majority-vote win counts (Copeland score, ties
/// toward the smaller id).
class CrowdSort {
 public:
  /// Requires >= 2 items with distinct ids and distinct values, and
  /// repetitions >= 1.
  static StatusOr<CrowdSort> Create(std::vector<Item> items, int repetitions);

  /// The H-Tuning instance: one group of n*(n-1)/2 comparison tasks.
  TuningProblem MakeProblem(long budget,
                            std::shared_ptr<const PriceRateCurve> curve,
                            double processing_rate) const;

  /// Ground truth for each pairwise question, pair-major order (i < j):
  /// option 0 = "the first item is larger".
  std::vector<QuestionSpec> Questions() const;

  /// Turns raw execution answers into a ranking.
  StatusOr<SortResult> Decode(const ExecutionResult& execution) const;

  /// Convenience pipeline: MakeProblem -> allocator -> ExecuteJob -> Decode.
  StatusOr<SortResult> Run(MarketSimulator& market,
                           const BudgetAllocator& allocator, long budget,
                           std::shared_ptr<const PriceRateCurve> curve,
                           double processing_rate) const;

  const std::vector<Item>& items() const { return items_; }
  int repetitions() const { return repetitions_; }
  /// Number of pairwise comparison tasks.
  int NumPairs() const;

 private:
  CrowdSort(std::vector<Item> items, int repetitions)
      : items_(std::move(items)), repetitions_(repetitions) {}

  std::vector<Item> items_;
  int repetitions_;
};

}  // namespace htune

#endif  // HTUNE_CROWDDB_SORT_H_
