#include "crowddb/query.h"

#include <algorithm>
#include <set>

#include "crowddb/filter.h"
#include "crowddb/top_k.h"

namespace htune {

StatusOr<TopKFilteredQuery> TopKFilteredQuery::Create(
    std::vector<Item> items, double threshold, int k, int filter_repetitions,
    int topk_repetitions) {
  if (items.size() < 2) {
    return InvalidArgumentError("TopKFilteredQuery: need at least two items");
  }
  if (k < 1) {
    return InvalidArgumentError("TopKFilteredQuery: k must be >= 1");
  }
  if (filter_repetitions < 1 || topk_repetitions < 1) {
    return InvalidArgumentError(
        "TopKFilteredQuery: repetitions must be >= 1");
  }
  std::set<int> ids;
  std::set<double> values;
  for (const Item& item : items) {
    ids.insert(item.id);
    values.insert(item.value);
  }
  if (ids.size() != items.size() || values.size() != items.size()) {
    return InvalidArgumentError(
        "TopKFilteredQuery: item ids and values must be distinct");
  }
  return TopKFilteredQuery(std::move(items), threshold, k,
                           filter_repetitions, topk_repetitions);
}

StatusOr<QueryResult> TopKFilteredQuery::Run(
    MarketSimulator& market, const BudgetAllocator& allocator, long budget,
    std::shared_ptr<const PriceRateCurve> curve,
    double processing_rate) const {
  const long n = static_cast<long>(items_.size());
  const long filter_votes = n * filter_repetitions_;
  // Worst case: every item survives the filter and k tournaments run over
  // all of them.
  long worst_topk_votes = 0;
  for (int j = 0; j < std::min<long>(k_, n - 1); ++j) {
    worst_topk_votes += (n - j - 1) * topk_repetitions_;
  }
  if (budget < filter_votes + worst_topk_votes) {
    return InvalidArgumentError(
        "TopKFilteredQuery: budget below one unit per vote in the worst "
        "case");
  }
  const long filter_budget =
      budget * filter_votes / (filter_votes + worst_topk_votes);

  // Phase 1: filter.
  HTUNE_ASSIGN_OR_RETURN(
      const CrowdFilter filter,
      CrowdFilter::Create(items_, threshold_, filter_repetitions_));
  HTUNE_ASSIGN_OR_RETURN(
      const FilterResult filtered,
      filter.Run(market, allocator, filter_budget, curve, processing_rate));

  QueryResult result;
  result.filtered_ids = filtered.selected;
  result.latency = filtered.latency;
  result.spent = filtered.spent;

  // Ground truth: the k largest qualifying values.
  std::vector<Item> qualifying;
  for (const Item& item : items_) {
    if (item.value >= threshold_) qualifying.push_back(item);
  }
  std::sort(qualifying.begin(), qualifying.end(),
            [](const Item& a, const Item& b) { return a.value > b.value; });
  std::vector<int> truth;
  truth.reserve(std::min(qualifying.size(), static_cast<size_t>(k_)));
  for (size_t i = 0; i < qualifying.size() && i < static_cast<size_t>(k_);
       ++i) {
    truth.push_back(qualifying[i].id);
  }

  // Phase 2: top-k over the survivors.
  std::vector<Item> survivors;
  const std::set<int> selected(filtered.selected.begin(),
                               filtered.selected.end());
  for (const Item& item : items_) {
    if (selected.count(item.id) > 0) survivors.push_back(item);
  }
  if (static_cast<int>(survivors.size()) <= k_) {
    // Everything that survived is in the answer; no ranking phase needed.
    result.top_ids = filtered.selected;
  } else {
    HTUNE_ASSIGN_OR_RETURN(
        const CrowdTopK topk,
        CrowdTopK::Create(survivors, k_, topk_repetitions_));
    HTUNE_ASSIGN_OR_RETURN(
        const TopKResult ranked,
        topk.Run(market, allocator, budget - result.spent, curve,
                 processing_rate));
    result.top_ids = ranked.top_ids;
    result.latency += ranked.latency;
    result.spent += ranked.spent;
  }
  result.quality = ComputePrecisionRecall(result.top_ids, truth);
  return result;
}

}  // namespace htune
