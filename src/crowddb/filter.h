#ifndef HTUNE_CROWDDB_FILTER_H_
#define HTUNE_CROWDDB_FILTER_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "crowddb/executor.h"
#include "crowddb/metrics.h"
#include "crowddb/types.h"
#include "market/simulator.h"
#include "tuning/allocator.h"

namespace htune {

/// Result of a crowd-powered filter.
struct FilterResult {
  /// Ids the crowd judged to pass the threshold.
  std::vector<int> selected;
  /// Quality against ground truth.
  PrecisionRecall quality;
  double latency = 0.0;
  long spent = 0;
};

/// Crowd-powered filter (the paper's MTurk workload, §5.2.1): for each item
/// the crowd answers the binary question "does this item's value reach the
/// threshold?", repeated `repetitions` times, majority-aggregated.
class CrowdFilter {
 public:
  /// Requires >= 1 item with distinct ids and repetitions >= 1.
  static StatusOr<CrowdFilter> Create(std::vector<Item> items,
                                      double threshold, int repetitions);

  /// The H-Tuning instance: one group with one task per item.
  TuningProblem MakeProblem(long budget,
                            std::shared_ptr<const PriceRateCurve> curve,
                            double processing_rate) const;

  /// One binary question per item, option 0 = "passes the threshold".
  std::vector<QuestionSpec> Questions() const;

  StatusOr<FilterResult> Decode(const ExecutionResult& execution) const;

  /// Convenience pipeline: MakeProblem -> allocator -> ExecuteJob -> Decode.
  StatusOr<FilterResult> Run(MarketSimulator& market,
                             const BudgetAllocator& allocator, long budget,
                             std::shared_ptr<const PriceRateCurve> curve,
                             double processing_rate) const;

  const std::vector<Item>& items() const { return items_; }
  double threshold() const { return threshold_; }
  int repetitions() const { return repetitions_; }

 private:
  CrowdFilter(std::vector<Item> items, double threshold, int repetitions)
      : items_(std::move(items)),
        threshold_(threshold),
        repetitions_(repetitions) {}

  std::vector<Item> items_;
  double threshold_;
  int repetitions_;
};

}  // namespace htune

#endif  // HTUNE_CROWDDB_FILTER_H_
