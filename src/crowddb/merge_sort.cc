#include "crowddb/merge_sort.h"

#include <algorithm>
#include <set>

#include "crowddb/metrics.h"

namespace htune {

StatusOr<CrowdMergeSort> CrowdMergeSort::Create(std::vector<Item> items,
                                                int repetitions) {
  if (items.size() < 2) {
    return InvalidArgumentError("CrowdMergeSort: need at least two items");
  }
  if (repetitions < 1) {
    return InvalidArgumentError("CrowdMergeSort: repetitions must be >= 1");
  }
  std::set<int> ids;
  std::set<double> values;
  for (const Item& item : items) {
    ids.insert(item.id);
    values.insert(item.value);
  }
  if (ids.size() != items.size() || values.size() != items.size()) {
    return InvalidArgumentError(
        "CrowdMergeSort: item ids and values must be distinct");
  }
  return CrowdMergeSort(std::move(items), repetitions);
}

int CrowdMergeSort::WorstCaseComparisons() const {
  // Simulate the bottom-up schedule: merging runs of lengths a and b costs
  // at most a + b - 1 comparisons.
  int total = 0;
  std::vector<int> runs(items_.size(), 1);
  while (runs.size() > 1) {
    std::vector<int> next;
    for (size_t i = 0; i + 1 < runs.size(); i += 2) {
      total += runs[i] + runs[i + 1] - 1;
      next.push_back(runs[i] + runs[i + 1]);
    }
    if (runs.size() % 2 == 1) {
      next.push_back(runs.back());
    }
    runs = std::move(next);
  }
  return total;
}

namespace {

// One in-flight merge of two descending runs into `output`.
struct MergeState {
  std::vector<Item> left;
  std::vector<Item> right;
  std::vector<Item> output;
  size_t i = 0;
  size_t j = 0;
  TaskId pending = 0;
  bool has_pending = false;

  bool NeedsComparison() const {
    return i < left.size() && j < right.size();
  }

  // Drains whichever side remains once one run is exhausted.
  void FinishTail() {
    while (i < left.size()) output.push_back(left[i++]);
    while (j < right.size()) output.push_back(right[j++]);
  }
};

}  // namespace

StatusOr<MergeSortResult> CrowdMergeSort::Run(
    MarketSimulator& market, long budget,
    std::shared_ptr<const PriceRateCurve> curve,
    double processing_rate) const {
  const long worst_votes =
      static_cast<long>(WorstCaseComparisons()) * repetitions_;
  const long price = budget / worst_votes;
  if (price < 1) {
    return InvalidArgumentError(
        "CrowdMergeSort: budget below one unit per worst-case vote");
  }

  MergeSortResult result;
  const double start = market.now();
  const long spent_before = market.TotalSpent();

  std::vector<std::vector<Item>> runs;
  runs.reserve(items_.size());
  for (const Item& item : items_) {
    runs.push_back({item});
  }

  while (runs.size() > 1) {
    ++result.levels;
    std::vector<MergeState> merges;
    std::vector<Item> carried;
    for (size_t i = 0; i + 1 < runs.size(); i += 2) {
      MergeState merge;
      merge.left = std::move(runs[i]);
      merge.right = std::move(runs[i + 1]);
      merges.push_back(std::move(merge));
    }
    const bool has_carry = runs.size() % 2 == 1;
    if (has_carry) {
      carried = std::move(runs.back());
    }

    // Rounds: every active merge runs one majority-vote comparison; merges
    // at this level proceed in parallel, comparisons within a merge are
    // sequential.
    while (true) {
      bool any_pending = false;
      for (MergeState& merge : merges) {
        if (!merge.NeedsComparison()) {
          merge.FinishTail();
          continue;
        }
        TaskSpec spec;
        spec.price_per_repetition = static_cast<int>(price);
        spec.repetitions = repetitions_;
        spec.on_hold_rate = curve->Rate(static_cast<double>(price));
        spec.processing_rate = processing_rate;
        spec.num_options = 2;
        // Option 0: the left run's head is larger.
        spec.true_answer =
            merge.left[merge.i].value > merge.right[merge.j].value ? 0 : 1;
        HTUNE_ASSIGN_OR_RETURN(merge.pending, market.PostTask(spec));
        merge.has_pending = true;
        any_pending = true;
        ++result.comparisons;
      }
      if (!any_pending) break;
      HTUNE_RETURN_IF_ERROR(market.RunToCompletion());
      for (MergeState& merge : merges) {
        if (!merge.has_pending) continue;
        merge.has_pending = false;
        HTUNE_ASSIGN_OR_RETURN(const TaskOutcome* outcome,
                               market.GetOutcomeView(merge.pending));
        std::vector<int> answers;
        answers.reserve(outcome->repetitions.size());
        for (const RepetitionOutcome& rep : outcome->repetitions) {
          answers.push_back(rep.answer);
        }
        if (MajorityVote(answers) == 0) {
          merge.output.push_back(merge.left[merge.i++]);
        } else {
          merge.output.push_back(merge.right[merge.j++]);
        }
      }
    }

    std::vector<std::vector<Item>> next;
    next.reserve(merges.size() + 1);
    for (MergeState& merge : merges) {
      next.push_back(std::move(merge.output));
    }
    if (has_carry) {
      next.push_back(std::move(carried));
    }
    runs = std::move(next);
  }

  result.latency = market.now() - start;
  result.spent = market.TotalSpent() - spent_before;
  result.ranking.reserve(items_.size());
  for (const Item& item : runs.front()) {
    result.ranking.push_back(item.id);
  }

  std::vector<Item> by_value = items_;
  std::sort(by_value.begin(), by_value.end(),
            [](const Item& a, const Item& b) { return a.value > b.value; });
  std::vector<int> truth;
  truth.reserve(by_value.size());
  for (const Item& item : by_value) {
    truth.push_back(item.id);
  }
  HTUNE_ASSIGN_OR_RETURN(result.kendall_tau,
                         KendallTau(result.ranking, truth));
  return result;
}

}  // namespace htune
