#ifndef HTUNE_CROWDDB_MAX_H_
#define HTUNE_CROWDDB_MAX_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "crowddb/types.h"
#include "market/simulator.h"
#include "tuning/allocator.h"

namespace htune {

/// Result of a crowd-powered max discovery.
struct MaxResult {
  int winner_id = -1;
  /// Whether the crowd found the true maximum.
  bool correct = false;
  /// Wall-clock latency summed over the tournament rounds (rounds are
  /// sequential phases; §"Job" definition).
  double latency = 0.0;
  long spent = 0;
  int rounds = 0;
};

/// Crowd-powered Max ([8, 9]): a single-elimination tournament of pairwise
/// votes. Each round pairs the surviving items (odd item gets a bye), asks
/// the crowd `repetitions` votes per match, majority-aggregates, and
/// advances the winners. Rounds are sequential job phases, so the total
/// latency is the sum of round latencies. The budget is divided across
/// rounds proportionally to each round's match count (computed up front
/// from the bracket structure) and tuned within the round by the given
/// allocator.
class CrowdMax {
 public:
  /// Requires >= 2 items with distinct ids and values, repetitions >= 1.
  static StatusOr<CrowdMax> Create(std::vector<Item> items, int repetitions);

  /// Runs the tournament. Requires a budget of at least one unit per vote
  /// across all rounds (ceil of matches * repetitions).
  StatusOr<MaxResult> Run(MarketSimulator& market,
                          const BudgetAllocator& allocator, long budget,
                          std::shared_ptr<const PriceRateCurve> curve,
                          double processing_rate) const;

  /// Total number of matches over the whole bracket = n - 1.
  int TotalMatches() const { return static_cast<int>(items_.size()) - 1; }
  int repetitions() const { return repetitions_; }

 private:
  CrowdMax(std::vector<Item> items, int repetitions)
      : items_(std::move(items)), repetitions_(repetitions) {}

  std::vector<Item> items_;
  int repetitions_;
};

}  // namespace htune

#endif  // HTUNE_CROWDDB_MAX_H_
