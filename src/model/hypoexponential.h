#ifndef HTUNE_MODEL_HYPOEXPONENTIAL_H_
#define HTUNE_MODEL_HYPOEXPONENTIAL_H_

#include <vector>

#include "rng/random.h"

namespace htune {

/// Sum of independent exponentials with arbitrary (possibly repeated) rates:
/// the general hypoexponential / phase-type law. This is the exact on-hold
/// latency of a task whose sequential repetitions carry different payments
/// (e.g. EA's remainder units give some repetitions one extra unit), and the
/// exact total latency when processing phases are appended. The CDF is
/// evaluated by uniformization of the underlying pure-birth Markov chain,
/// which is numerically stable for repeated rates where the classical
/// partial-fraction formula blows up.
class HypoexponentialDist {
 public:
  /// Requires a non-empty rate list with every rate > 0.
  explicit HypoexponentialDist(std::vector<double> rates);

  double Cdf(double t) const;
  /// Mean = sum of 1/rate_i.
  double Mean() const { return mean_; }
  /// Variance = sum of 1/rate_i^2 (phases are independent).
  double Variance() const { return variance_; }
  double Sample(Random& rng) const;

  const std::vector<double>& rates() const { return rates_; }

 private:
  std::vector<double> rates_;
  double mean_ = 0.0;
  double variance_ = 0.0;
  /// Uniformization constant: max rate.
  double uniform_rate_ = 0.0;
  /// Per-phase jump probability rate_i / uniform_rate_.
  std::vector<double> jump_prob_;
};

}  // namespace htune

#endif  // HTUNE_MODEL_HYPOEXPONENTIAL_H_
