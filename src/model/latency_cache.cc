#include "model/latency_cache.h"

#include "common/check.h"
#include "obs/obs.h"

namespace htune {

double LatencyKernelCache::Phase1(
    const GroupShape& shape,
    const std::shared_ptr<const PriceRateCurve>& curve, int price) {
  HTUNE_CHECK(curve != nullptr);
  HTUNE_CHECK_GE(price, 1);
  const Key key{shape.num_tasks, shape.repetitions, curve.get(), price};
  Shard& shard = shards_[KeyHash()(key) % kShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Pin before the entry becomes visible so a hit always refers to a live
  // curve (and therefore to THIS curve: live objects have unique addresses).
  PinCurve(curve);
  // Quadrature runs outside the shard lock; see header for the benign race.
  // The span rides the miss path only, so the hit path stays untouched and
  // span cost is dwarfed by the quadrature it times.
  HTUNE_OBS_SPAN("cache.quadrature_eval");
  const double value =
      ExpectedGroupOnHoldLatency(shape, *curve, static_cast<double>(price));
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.emplace(key, value).first->second;
}

void LatencyKernelCache::PinCurve(
    const std::shared_ptr<const PriceRateCurve>& curve) {
  std::lock_guard<std::mutex> lock(pin_mu_);
  pins_.emplace(curve.get(), curve);
}

void LatencyKernelCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  {
    std::lock_guard<std::mutex> lock(pin_mu_);
    pins_.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

LatencyCacheStats LatencyKernelCache::Stats() const {
  LatencyCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries += shard.map.size();
  }
  return stats;
}

void LatencyKernelCache::PublishToMetrics() const {
  const LatencyCacheStats stats = Stats();
  HTUNE_OBS_GAUGE_SET("cache.latency_kernel.hits",
                      static_cast<double>(stats.hits));
  HTUNE_OBS_GAUGE_SET("cache.latency_kernel.misses",
                      static_cast<double>(stats.misses));
  HTUNE_OBS_GAUGE_SET("cache.latency_kernel.entries",
                      static_cast<double>(stats.entries));
}

LatencyKernelCache& GlobalLatencyCache() {
  static LatencyKernelCache cache;
  return cache;
}

}  // namespace htune
