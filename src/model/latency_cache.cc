#include "model/latency_cache.h"

#include "common/check.h"
#include "obs/obs.h"

namespace htune {

double LatencyKernelCache::Phase1(
    const GroupShape& shape,
    const std::shared_ptr<const PriceRateCurve>& curve, int price) {
  HTUNE_CHECK(curve != nullptr);
  HTUNE_CHECK_GE(price, 1);
  const Key key{shape.num_tasks, shape.repetitions, curve.get(), price};
  Shard& shard = shards_[KeyHash()(key) % kShards];
  {
    MutexLock lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Quadrature runs outside the locks; see header for the benign race.
  // The span rides the miss path only, so the hit path stays untouched and
  // span cost is dwarfed by the quadrature it times.
  HTUNE_OBS_SPAN("cache.quadrature_eval");
  const double value =
      ExpectedGroupOnHoldLatency(shape, *curve, static_cast<double>(price));
  // Pin and insert under one pin_mu_ section (lock order: pin_mu_ then
  // shard.mu) so Clear() can never drop the pin while the entry survives;
  // a live pin keeps the curve's address from being recycled into a
  // colliding key.
  MutexLock pin_lock(pin_mu_);
  pins_.emplace(curve.get(), curve);
  MutexLock lock(shard.mu);
  return shard.map.emplace(key, value).first->second;
}

void LatencyKernelCache::Clear() {
  // pin_mu_ held across the whole wipe: the miss path's pin+insert pair
  // also runs under pin_mu_, so Clear is atomic with respect to it.
  MutexLock pin_lock(pin_mu_);
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.map.clear();
  }
  pins_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

LatencyCacheStats LatencyKernelCache::Stats() const {
  LatencyCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    stats.entries += shard.map.size();
  }
  return stats;
}

size_t LatencyKernelCache::UnpinnedEntryCountForTest() const {
  MutexLock pin_lock(pin_mu_);
  size_t unpinned = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    // Order-independent count over the unordered shard map: the result
    // is a scalar, so iteration order never reaches any output.
    for (const auto& [key, value] : shard.map) {
      if (pins_.find(key.curve) == pins_.end()) ++unpinned;
    }
  }
  return unpinned;
}

void LatencyKernelCache::PublishToMetrics() const {
  const LatencyCacheStats stats = Stats();
  HTUNE_OBS_GAUGE_SET("cache.latency_kernel.hits",
                      static_cast<double>(stats.hits));
  HTUNE_OBS_GAUGE_SET("cache.latency_kernel.misses",
                      static_cast<double>(stats.misses));
  HTUNE_OBS_GAUGE_SET("cache.latency_kernel.entries",
                      static_cast<double>(stats.entries));
}

LatencyKernelCache& GlobalLatencyCache() {
  static LatencyKernelCache cache;
  return cache;
}

}  // namespace htune
