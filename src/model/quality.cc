#include "model/quality.h"

#include <cmath>
#include <vector>

namespace htune {
namespace {

// log of the binomial coefficient C(n, k) via lgamma for stability at
// large n.
double LogBinomial(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

}  // namespace

StatusOr<double> MajorityCorrectProbability(double error_prob, int repetitions,
                                            TieBreak tie_break) {
  if (error_prob < 0.0 || error_prob > 1.0) {
    return InvalidArgumentError(
        "MajorityCorrectProbability: error_prob outside [0, 1]");
  }
  if (repetitions < 1) {
    return InvalidArgumentError(
        "MajorityCorrectProbability: repetitions must be >= 1");
  }
  if (error_prob == 0.0) return 1.0;
  if (error_prob == 1.0) return 0.0;

  const double log_p = std::log(1.0 - error_prob);  // correct answer
  const double log_q = std::log(error_prob);        // wrong answer
  double correct = 0.0;
  double tie = 0.0;
  for (int k = 0; k <= repetitions; ++k) {
    // k correct answers out of `repetitions`.
    const double log_mass =
        LogBinomial(repetitions, k) + k * log_p + (repetitions - k) * log_q;
    const double mass = std::exp(log_mass);
    if (2 * k > repetitions) {
      correct += mass;
    } else if (2 * k == repetitions) {
      tie += mass;
    }
  }
  switch (tie_break) {
    case TieBreak::kPessimistic:
      return correct;
    case TieBreak::kOptimistic:
      return correct + tie;
    case TieBreak::kCoinFlip:
      return correct + 0.5 * tie;
  }
  return InternalError("MajorityCorrectProbability: unknown tie break");
}

StatusOr<int> MinRepetitionsForTarget(double error_prob, double target_prob,
                                      int max_repetitions) {
  if (target_prob <= 0.0 || target_prob >= 1.0) {
    return InvalidArgumentError(
        "MinRepetitionsForTarget: target_prob outside (0, 1)");
  }
  if (max_repetitions < 1) {
    return InvalidArgumentError(
        "MinRepetitionsForTarget: max_repetitions must be >= 1");
  }
  if (error_prob < 0.0 || error_prob > 1.0) {
    return InvalidArgumentError(
        "MinRepetitionsForTarget: error_prob outside [0, 1]");
  }
  for (int r = 1; r <= max_repetitions; r += 2) {
    HTUNE_ASSIGN_OR_RETURN(const double p,
                           MajorityCorrectProbability(error_prob, r));
    if (p >= target_prob) {
      return r;
    }
  }
  return ResourceExhaustedError(
      "MinRepetitionsForTarget: target unreachable within max_repetitions "
      "(note: repetition cannot help when error_prob >= 0.5)");
}

StatusOr<std::vector<QualityPoint>> QualityCurve(double error_prob,
                                                 int max_repetitions) {
  if (error_prob < 0.0 || error_prob >= 0.5) {
    return InvalidArgumentError("QualityCurve: error_prob outside [0, 0.5)");
  }
  if (max_repetitions < 1) {
    return InvalidArgumentError("QualityCurve: max_repetitions must be >= 1");
  }
  std::vector<QualityPoint> curve;
  for (int r = 1; r <= max_repetitions; r += 2) {
    HTUNE_ASSIGN_OR_RETURN(const double p,
                           MajorityCorrectProbability(error_prob, r));
    QualityPoint point;
    point.repetitions = r;
    point.correct_prob = p;
    point.latency_factor = static_cast<double>(r);
    point.cost_factor = static_cast<double>(r);
    curve.push_back(point);
  }
  return curve;
}

}  // namespace htune
