#include "model/distributions.h"

#include <cmath>

#include "common/check.h"

namespace htune {

ExponentialDist::ExponentialDist(double lambda) : lambda_(lambda) {
  HTUNE_CHECK_GT(lambda, 0.0);
}

double ExponentialDist::Pdf(double t) const {
  if (t < 0.0) return 0.0;
  return lambda_ * std::exp(-lambda_ * t);
}

double ExponentialDist::Cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-lambda_ * t);
}

double ExponentialDist::Quantile(double q) const {
  HTUNE_CHECK_GE(q, 0.0);
  HTUNE_CHECK_LT(q, 1.0);
  return -std::log1p(-q) / lambda_;
}

ErlangDist::ErlangDist(int k, double lambda) : k_(k), lambda_(lambda) {
  HTUNE_CHECK_GE(k, 1);
  HTUNE_CHECK_GT(lambda, 0.0);
}

double ErlangDist::Pdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t == 0.0) return k_ == 1 ? lambda_ : 0.0;
  // log pdf = k log(lambda) + (k-1) log(t) - lambda t - log((k-1)!)
  double log_pdf = static_cast<double>(k_) * std::log(lambda_) +
                   static_cast<double>(k_ - 1) * std::log(t) - lambda_ * t -
                   std::lgamma(static_cast<double>(k_));
  return std::exp(log_pdf);
}

double ErlangDist::Cdf(double t) const {
  if (t <= 0.0) return 0.0;
  // 1 - sum_{i=0}^{k-1} e^{-lt} (lt)^i / i!, accumulated in a stable forward
  // recurrence term_{i+1} = term_i * (lt) / (i+1).
  const double x = lambda_ * t;
  double term = std::exp(-x);
  double tail = term;
  for (int i = 1; i < k_; ++i) {
    term *= x / static_cast<double>(i);
    tail += term;
  }
  // When x is large exp(-x) underflows and tail ~ 0, which is correct.
  double cdf = 1.0 - tail;
  if (cdf < 0.0) cdf = 0.0;
  if (cdf > 1.0) cdf = 1.0;
  return cdf;
}

TwoPhaseLatencyDist::TwoPhaseLatencyDist(double rate_o, double rate_p)
    : rate_o_(rate_o), rate_p_(rate_p) {
  HTUNE_CHECK_GT(rate_o, 0.0);
  HTUNE_CHECK_GT(rate_p, 0.0);
}

namespace {

// Relative rate gap under which the hypoexponential formulas lose precision
// and the Erlang(2, .) limit is used instead.
constexpr double kEqualRateTolerance = 1e-9;

bool NearlyEqualRates(double a, double b) {
  return std::abs(a - b) <= kEqualRateTolerance * std::max(a, b);
}

}  // namespace

double TwoPhaseLatencyDist::Pdf(double t) const {
  if (t < 0.0) return 0.0;
  if (NearlyEqualRates(rate_o_, rate_p_)) {
    const double lambda = 0.5 * (rate_o_ + rate_p_);
    return lambda * lambda * t * std::exp(-lambda * t);
  }
  // f(t) = lo*lp/(lo - lp) * (e^{-lp t} - e^{-lo t})
  const double lo = rate_o_, lp = rate_p_;
  return lo * lp / (lo - lp) * (std::exp(-lp * t) - std::exp(-lo * t));
}

double TwoPhaseLatencyDist::Cdf(double t) const {
  if (t <= 0.0) return 0.0;
  if (NearlyEqualRates(rate_o_, rate_p_)) {
    return ErlangDist(2, 0.5 * (rate_o_ + rate_p_)).Cdf(t);
  }
  // F(t) = 1 - (lo e^{-lp t} - lp e^{-lo t}) / (lo - lp)
  const double lo = rate_o_, lp = rate_p_;
  double cdf =
      1.0 - (lo * std::exp(-lp * t) - lp * std::exp(-lo * t)) / (lo - lp);
  if (cdf < 0.0) cdf = 0.0;
  if (cdf > 1.0) cdf = 1.0;
  return cdf;
}

}  // namespace htune
