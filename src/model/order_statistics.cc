#include "model/order_statistics.h"

#include <cmath>

#include "common/check.h"
#include "model/quadrature.h"

namespace htune {

double HarmonicNumber(int n) {
  HTUNE_CHECK_GE(n, 0);
  // Above the threshold, the Euler-Maclaurin expansion
  //   H_n = ln n + gamma + 1/(2n) - 1/(12n^2) + 1/(120n^4) - O(1/n^6)
  // replaces the O(n) summation loop (this sits on every
  // ExpectedMaxExponential call). The truncation error is bounded by the
  // next term, 1/(252 n^6) < 6e-14 at n = 65 — comfortably inside the
  // 1e-12 agreement with the exact sum that the tests pin.
  constexpr int kExactThreshold = 64;
  constexpr double kEulerGamma = 0.57721566490153286061;
  if (n > kExactThreshold) {
    const double nn = static_cast<double>(n);
    const double inv2 = 1.0 / (nn * nn);
    return std::log(nn) + kEulerGamma + 0.5 / nn - inv2 / 12.0 +
           inv2 * inv2 / 120.0;
  }
  double h = 0.0;
  for (int i = 1; i <= n; ++i) {
    h += 1.0 / static_cast<double>(i);
  }
  return h;
}

double ExpectedMaxExponential(int n, double lambda) {
  HTUNE_CHECK_GE(n, 1);
  HTUNE_CHECK_GT(lambda, 0.0);
  return HarmonicNumber(n) / lambda;
}

double ExpectedMaxTwoExponentials(double lambda1, double lambda2) {
  HTUNE_CHECK_GT(lambda1, 0.0);
  HTUNE_CHECK_GT(lambda2, 0.0);
  return 1.0 / lambda1 + 1.0 / lambda2 - 1.0 / (lambda1 + lambda2);
}

double ExpectedMinExponential(int n, double lambda) {
  HTUNE_CHECK_GE(n, 1);
  HTUNE_CHECK_GT(lambda, 0.0);
  return 1.0 / (static_cast<double>(n) * lambda);
}

double ExpectedMaxGeneric(const std::function<double(double)>& cdf, int n,
                          double mean_hint, double tolerance) {
  HTUNE_CHECK_GE(n, 1);
  HTUNE_CHECK_GT(mean_hint, 0.0);
  const auto survival = [&cdf, n](double t) {
    const double f = cdf(t);
    if (f >= 1.0) return 0.0;
    if (f <= 0.0) return 1.0;
    // 1 - F^n computed via expm1 for accuracy when F is close to 1.
    return -std::expm1(static_cast<double>(n) * std::log(f));
  };
  // The max of n draws concentrates below ~ mean * (1 + ln n) for the
  // light-tailed laws used here; doubling search extends as needed.
  const double initial_upper =
      mean_hint * (2.0 + std::log(static_cast<double>(n) + 1.0));
  return IntegrateDecayingTail(survival, initial_upper, tolerance / 10.0,
                               tolerance);
}

double ExpectedMaxWithMultiplicity(const std::vector<WeightedCdf>& cdfs,
                                   double mean_hint, double tolerance) {
  HTUNE_CHECK(!cdfs.empty());
  HTUNE_CHECK_GT(mean_hint, 0.0);
  int total = 0;
  for (const auto& wc : cdfs) {
    HTUNE_CHECK_GE(wc.count, 1);
    total += wc.count;
  }
  const auto survival = [&cdfs](double t) {
    double log_product = 0.0;
    for (const auto& wc : cdfs) {
      const double f = wc.cdf(t);
      if (f <= 0.0) return 1.0;
      if (f < 1.0) {
        log_product += static_cast<double>(wc.count) * std::log(f);
      }
    }
    return -std::expm1(log_product);
  };
  const double initial_upper =
      mean_hint * (2.0 + std::log(static_cast<double>(total) + 1.0));
  return IntegrateDecayingTail(survival, initial_upper, tolerance / 10.0,
                               tolerance);
}

double ExpectedMaxErlang(int n, int k, double lambda) {
  HTUNE_CHECK_GE(n, 1);
  HTUNE_CHECK_GE(k, 1);
  HTUNE_CHECK_GT(lambda, 0.0);
  if (k == 1) {
    return ExpectedMaxExponential(n, lambda);
  }
  const ErlangDist dist(k, lambda);
  return ExpectedMaxGeneric([&dist](double t) { return dist.Cdf(t); }, n,
                            dist.Mean());
}

double ExpectedMaxTwoPhase(int n, const TwoPhaseLatencyDist& dist) {
  HTUNE_CHECK_GE(n, 1);
  return ExpectedMaxGeneric([&dist](double t) { return dist.Cdf(t); }, n,
                            dist.Mean());
}

double ExpectedMaxIndependent(
    const std::vector<std::function<double(double)>>& cdfs, double mean_hint,
    double tolerance) {
  HTUNE_CHECK(!cdfs.empty());
  HTUNE_CHECK_GT(mean_hint, 0.0);
  const auto survival = [&cdfs](double t) {
    double product = 1.0;
    for (const auto& cdf : cdfs) {
      product *= cdf(t);
      if (product <= 0.0) return 1.0;
    }
    return 1.0 - product;
  };
  const double initial_upper =
      mean_hint * (2.0 + std::log(static_cast<double>(cdfs.size()) + 1.0));
  return IntegrateDecayingTail(survival, initial_upper, tolerance / 10.0,
                               tolerance);
}

}  // namespace htune
