#ifndef HTUNE_MODEL_LATENCY_CACHE_H_
#define HTUNE_MODEL_LATENCY_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "model/latency_model.h"
#include "model/price_rate_curve.h"

namespace htune {

struct LatencyCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;
};

/// Process-wide memo cache for ExpectedGroupOnHoldLatency — the adaptive
/// quadrature kernel every tuner inner loop reduces to. Keyed on
/// (num_tasks, repetitions, curve identity, price); the group's
/// processing_rate is deliberately NOT part of the key because the phase-1
/// on-hold expectation does not depend on it, so groups that differ only in
/// difficulty (every Fig. 5 sweep) share entries. Duplicate task groups
/// across allocator calls, sweep points, and Monte Carlo replications dedupe
/// their quadrature work here.
///
/// Thread safety: sharded mutexes; safe for concurrent GetOrCompute from
/// pool workers. Misses compute outside the shard lock, so a racing pair may
/// both evaluate the kernel — the integrand is a pure deterministic function
/// of the key, so both arrive at the same bits and either insert wins.
///
/// Curve identity is the curve object's address. To make that sound, the
/// cache pins a shared_ptr to every curve it has entries for: a pinned curve
/// can never be destroyed, so its address can never be recycled into a
/// colliding key by a later allocation. Clear() drops entries and pins.
///
/// Lock order: pin_mu_ before any shard mutex, never the reverse. The
/// miss path inserts the pin and the entry under one pin_mu_ critical
/// section so the pair is atomic against Clear() — otherwise Clear()
/// could land between them and drop the pin while the entry survives,
/// leaving a key whose curve address may be recycled (see
/// LatencyCachePinClearRace regression test). The hit path takes only
/// the shard mutex.
class LatencyKernelCache {
 public:
  /// Cached E[max over num_tasks of Erlang(repetitions, curve(price))].
  /// `shape.processing_rate` is ignored (see class comment).
  double Phase1(const GroupShape& shape,
                const std::shared_ptr<const PriceRateCurve>& curve,
                int price);

  /// Drops every entry, pin, and counter.
  void Clear();

  LatencyCacheStats Stats() const;

  /// Mirrors Stats() into the observability gauges "cache.latency_kernel.*".
  /// Called at phase boundaries (tuner entry points, CLI export) rather than
  /// on the hit path, which keeps the hot lookup untouched.
  void PublishToMetrics() const;

  /// Entries whose curve has no pin — always 0 when the pin/insert pair
  /// is atomic against Clear(). Test-only invariant probe.
  size_t UnpinnedEntryCountForTest() const;

 private:
  struct Key {
    int num_tasks;
    int repetitions;
    const PriceRateCurve* curve;
    int price;

    bool operator==(const Key& other) const {
      return num_tasks == other.num_tasks &&
             repetitions == other.repetitions && curve == other.curve &&
             price == other.price;
    }
  };

  struct KeyHash {
    size_t operator()(const Key& key) const {
      // SplitMix64-style finalization over the packed fields.
      uint64_t h = static_cast<uint64_t>(key.num_tasks) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(key.repetitions) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      h ^= reinterpret_cast<uintptr_t>(key.curve) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(key.price) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
      h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<size_t>(h ^ (h >> 31));
    }
  };

  static constexpr size_t kShards = 16;

  struct Shard {
    Mutex mu;
    std::unordered_map<Key, double, KeyHash> map HTUNE_GUARDED_BY(mu);
  };

  mutable std::array<Shard, kShards> shards_;
  mutable Mutex pin_mu_;
  std::unordered_map<const PriceRateCurve*,
                     std::shared_ptr<const PriceRateCurve>>
      pins_ HTUNE_GUARDED_BY(pin_mu_);
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

/// The process-wide cache instance shared by every GroupLatencyTable.
LatencyKernelCache& GlobalLatencyCache();

}  // namespace htune

#endif  // HTUNE_MODEL_LATENCY_CACHE_H_
