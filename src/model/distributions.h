#ifndef HTUNE_MODEL_DISTRIBUTIONS_H_
#define HTUNE_MODEL_DISTRIBUTIONS_H_

#include "rng/random.h"

namespace htune {

/// Exponential distribution with rate lambda: the paper's model for both the
/// on-hold phase (rate set by price) and the processing phase (rate set by
/// task difficulty), §3.2.
class ExponentialDist {
 public:
  /// Requires lambda > 0.
  explicit ExponentialDist(double lambda);

  double Pdf(double t) const;
  double Cdf(double t) const;
  double Mean() const { return 1.0 / lambda_; }
  double Variance() const { return 1.0 / (lambda_ * lambda_); }
  /// Inverse CDF at `q` in [0, 1).
  double Quantile(double q) const;
  double Sample(Random& rng) const { return rng.Exponential(lambda_); }

  double lambda() const { return lambda_; }

 private:
  double lambda_;
};

/// Erlang distribution Erl(k, lambda): sum of k iid Exponential(lambda).
/// Lemma 3: the on-hold latency of a task requiring k sequential repetitions
/// at equal per-repetition price is Erl(k, lambda_o).
class ErlangDist {
 public:
  /// Requires k >= 1, lambda > 0.
  ErlangDist(int k, double lambda);

  double Pdf(double t) const;
  double Cdf(double t) const;
  double Mean() const { return static_cast<double>(k_) / lambda_; }
  double Variance() const {
    return static_cast<double>(k_) / (lambda_ * lambda_);
  }
  double Sample(Random& rng) const { return rng.Erlang(k_, lambda_); }

  int k() const { return k_; }
  double lambda() const { return lambda_; }

 private:
  int k_;
  double lambda_;
};

/// The overall single-repetition latency L = Lo + Lp with Lo ~ Exp(rate_o)
/// and Lp ~ Exp(rate_p) independent (§3.2): hypoexponential for distinct
/// rates, Erlang(2, rate) when the rates coincide (handled via a numerically
/// safe near-equal branch).
class TwoPhaseLatencyDist {
 public:
  /// Requires rate_o > 0 and rate_p > 0.
  TwoPhaseLatencyDist(double rate_o, double rate_p);

  double Pdf(double t) const;
  double Cdf(double t) const;
  double Mean() const { return 1.0 / rate_o_ + 1.0 / rate_p_; }
  double Variance() const {
    return 1.0 / (rate_o_ * rate_o_) + 1.0 / (rate_p_ * rate_p_);
  }
  double Sample(Random& rng) const {
    return rng.Exponential(rate_o_) + rng.Exponential(rate_p_);
  }

  double rate_o() const { return rate_o_; }
  double rate_p() const { return rate_p_; }

 private:
  double rate_o_;
  double rate_p_;
};

}  // namespace htune

#endif  // HTUNE_MODEL_DISTRIBUTIONS_H_
