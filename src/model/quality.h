#ifndef HTUNE_MODEL_QUALITY_H_
#define HTUNE_MODEL_QUALITY_H_

#include <vector>

#include "common/statusor.h"

namespace htune {

/// How a tied majority vote is scored when computing the probability that
/// aggregation recovers the true answer (even repetition counts can tie).
enum class TieBreak {
  /// Ties count as wrong: a lower bound on aggregation quality.
  kPessimistic,
  /// Ties count as right: an upper bound.
  kOptimistic,
  /// Ties are decided by a fair coin.
  kCoinFlip,
};

/// Probability that majority voting over `repetitions` independent binary
/// answers recovers the truth, when each answer is wrong independently with
/// probability `error_prob` (the HPU's error trait, §1). Exact binomial
/// sum. Requires error_prob in [0, 1] and repetitions >= 1.
StatusOr<double> MajorityCorrectProbability(double error_prob, int repetitions,
                                            TieBreak tie_break =
                                                TieBreak::kCoinFlip);

/// Smallest odd repetition count whose majority-vote correctness reaches
/// `target_prob`, searching up to `max_repetitions`. Odd counts avoid ties
/// entirely. Returns ResourceExhausted if no count within the limit
/// suffices (e.g. error_prob >= 0.5, where repetition cannot help), and
/// InvalidArgument for out-of-range parameters.
StatusOr<int> MinRepetitionsForTarget(double error_prob, double target_prob,
                                      int max_repetitions = 99);

/// The quality/latency/cost contour of one aggregation design point.
struct QualityPoint {
  int repetitions = 1;
  /// Majority-vote correctness probability.
  double correct_prob = 0.0;
  /// Expected sequential latency multiplier relative to one repetition
  /// (repetitions, since phases are iid across repetitions).
  double latency_factor = 1.0;
  /// Cost multiplier relative to one repetition at equal price.
  double cost_factor = 1.0;
};

/// Tabulates the quality curve for odd repetition counts 1, 3, ...,
/// `max_repetitions`: how much latency and cost each extra repetition buys
/// in answer correctness. Requires error_prob in [0, 0.5) so the curve is
/// increasing. Used by the quality-tradeoff bench.
StatusOr<std::vector<QualityPoint>> QualityCurve(double error_prob,
                                                 int max_repetitions);

}  // namespace htune

#endif  // HTUNE_MODEL_QUALITY_H_
