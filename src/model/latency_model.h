#ifndef HTUNE_MODEL_LATENCY_MODEL_H_
#define HTUNE_MODEL_LATENCY_MODEL_H_

#include "model/distributions.h"
#include "model/price_rate_curve.h"

namespace htune {

/// A task group as the tuners see it: `num_tasks` identical atomic tasks run
/// in parallel, each needing `repetitions` sequential answer repetitions,
/// with a common difficulty (processing rate) and price-rate behaviour.
struct GroupShape {
  int num_tasks = 1;
  int repetitions = 1;
  /// Processing-phase clock rate lambda_p (difficulty; price independent).
  double processing_rate = 1.0;
};

/// Expected phase-1 (on-hold) latency of a whole group when every repetition
/// of every task is paid `per_repetition_price`: E[max over num_tasks of
/// Erlang(repetitions, lambda_o(price))] (Lemma 3 + §4.3.1).
double ExpectedGroupOnHoldLatency(const GroupShape& shape,
                                  const PriceRateCurve& curve,
                                  double per_repetition_price);

/// Same, with an explicit on-hold rate instead of a curve+price.
double ExpectedGroupOnHoldLatencyAtRate(const GroupShape& shape,
                                        double on_hold_rate);

/// Expected phase-2 (processing) latency of one task in the group:
/// repetitions / processing_rate. Identical for every task in the group and
/// unaffected by payment (§4.4).
double ExpectedGroupProcessingLatency(const GroupShape& shape);

/// Expected total latency of the whole group, E[max over tasks of
/// (on-hold + processing)], where each task's latency is
/// Erlang(k, lambda_o) + Erlang(k, lambda_p). The sum's CDF is evaluated by
/// numerical convolution, so this is markedly more expensive than the
/// phase-1 form; the tuners use the phase-wise decomposition and this
/// function serves validation/ablation.
double ExpectedGroupTotalLatency(const GroupShape& shape, double on_hold_rate);

/// CDF of Erlang(k1, rate1) + Erlang(k2, rate2) at `t` by numerical
/// convolution of the first pdf against the second CDF.
double SumOfErlangsCdf(int k1, double rate1, int k2, double rate2, double t);

}  // namespace htune

#endif  // HTUNE_MODEL_LATENCY_MODEL_H_
