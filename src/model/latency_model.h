#ifndef HTUNE_MODEL_LATENCY_MODEL_H_
#define HTUNE_MODEL_LATENCY_MODEL_H_

#include <memory>

#include "model/distributions.h"
#include "model/price_rate_curve.h"

namespace htune {

/// A task group as the tuners see it: `num_tasks` identical atomic tasks run
/// in parallel, each needing `repetitions` sequential answer repetitions,
/// with a common difficulty (processing rate) and price-rate behaviour.
struct GroupShape {
  int num_tasks = 1;
  int repetitions = 1;
  /// Processing-phase clock rate lambda_p (difficulty; price independent).
  double processing_rate = 1.0;
};

/// Expected phase-1 (on-hold) latency of a whole group when every repetition
/// of every task is paid `per_repetition_price`: E[max over num_tasks of
/// Erlang(repetitions, lambda_o(price))] (Lemma 3 + §4.3.1).
double ExpectedGroupOnHoldLatency(const GroupShape& shape,
                                  const PriceRateCurve& curve,
                                  double per_repetition_price);

/// Same, with an explicit on-hold rate instead of a curve+price.
double ExpectedGroupOnHoldLatencyAtRate(const GroupShape& shape,
                                        double on_hold_rate);

/// Expected phase-2 (processing) latency of one task in the group:
/// repetitions / processing_rate. Identical for every task in the group and
/// unaffected by payment (§4.4).
double ExpectedGroupProcessingLatency(const GroupShape& shape);

/// Expected total latency of the whole group, E[max over tasks of
/// (on-hold + processing)], where each task's latency is
/// Erlang(k, lambda_o) + Erlang(k, lambda_p). The sum's CDF is evaluated by
/// numerical convolution, so this is markedly more expensive than the
/// phase-1 form; the tuners use the phase-wise decomposition and this
/// function serves validation/ablation.
double ExpectedGroupTotalLatency(const GroupShape& shape, double on_hold_rate);

/// CDF of Erlang(k1, rate1) + Erlang(k2, rate2) at `t` by numerical
/// convolution of the first pdf against the second CDF.
double SumOfErlangsCdf(int k1, double rate1, int k2, double rate2, double t);

/// Worker abandonment as the tuners model it, mirroring
/// MarketConfig::{abandon_prob, abandon_hold_rate}: an accepted repetition
/// is returned unanswered with probability `prob` after an Exp(hold_rate)
/// hold, and the repetition goes back on hold.
struct AbandonmentModel {
  double prob = 0.0;
  double hold_rate = 1.0;
};

/// Largest abandonment probability the model math evaluates at. prob == 1
/// means every acceptance is abandoned: the expected hold chain is
/// infinite, so 1 / (1 - prob) and everything built on it would turn into
/// inf/NaN inside the allocators' DP tables. Configuration validation
/// rejects prob >= 1 with a clear Status; the functions below additionally
/// clamp to this ceiling so a degenerate model that slips through still
/// yields finite (if astronomically pessimistic) rates instead of
/// poisoning the DP.
inline constexpr double kAbandonProbCeiling = 1.0 - 0x1p-30;

/// Expected acceptances needed to get one answered repetition: the attempt
/// count is Geometric(1 - prob), so this is 1 / (1 - prob). Accepts
/// prob in [0, 1]; prob is clamped to kAbandonProbCeiling.
double ExpectedAttemptsPerRepetition(const AbandonmentModel& model);

/// Mean of the renewal pre-processing cycle of one repetition under
/// abandonment: the repetition alternates Exp(on_hold_rate) waits and (with
/// probability prob) Exp(hold_rate) abandoned holds until an attempt
/// sticks, so the renewal sum has mean
///   (1 / (1 - prob)) / on_hold_rate + (prob / (1 - prob)) / hold_rate.
double EffectiveOnHoldMean(double on_hold_rate,
                           const AbandonmentModel& model);

/// The exponential rate whose mean matches EffectiveOnHoldMean — the
/// corrected lambda_o the tuners should allocate against:
///   ((1 - prob) * on_hold_rate * hold_rate)
///     / (hold_rate + prob * on_hold_rate).
/// The renewal sum itself is phase-type, not exponential; matching the mean
/// keeps every first-moment quantity (and the allocators' marginal-gain
/// ordering) exact while the E[max] order statistics become approximations.
double EffectiveOnHoldRate(double on_hold_rate,
                           const AbandonmentModel& model);

/// Expected end-to-end latency of one repetition under abandonment:
/// EffectiveOnHoldMean + 1 / processing_rate. Exact (no distributional
/// approximation — means add by Wald's identity).
double EffectiveRepetitionLatency(double on_hold_rate,
                                  double processing_rate,
                                  const AbandonmentModel& model);

/// Decorates `curve` so Rate(p) returns the abandonment-corrected effective
/// on-hold rate EffectiveOnHoldRate(curve->Rate(p), model). Monotonicity
/// and positivity are preserved, so the result honors the PriceRateCurve
/// contract and plugs into every allocator and evaluator unchanged. A model
/// with prob == 0 returns `curve` itself.
std::shared_ptr<const PriceRateCurve> AdjustCurveForAbandonment(
    std::shared_ptr<const PriceRateCurve> curve,
    const AbandonmentModel& model);

}  // namespace htune

#endif  // HTUNE_MODEL_LATENCY_MODEL_H_
