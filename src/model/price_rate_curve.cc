#include "model/price_rate_curve.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace htune {

LinearCurve::LinearCurve(double slope, double intercept)
    : slope_(slope), intercept_(intercept) {
  HTUNE_CHECK_GE(slope, 0.0);
  HTUNE_CHECK_GT(slope + intercept, 0.0);
}

double LinearCurve::Rate(double price) const {
  return slope_ * price + intercept_;
}

std::string LinearCurve::Name() const {
  return FormatDouble(slope_, 1) + "p+" + FormatDouble(intercept_, 1);
}

std::unique_ptr<PriceRateCurve> LinearCurve::Clone() const {
  return std::make_unique<LinearCurve>(*this);
}

QuadraticCurve::QuadraticCurve(double coefficient, double intercept)
    : coefficient_(coefficient), intercept_(intercept) {
  HTUNE_CHECK_GE(coefficient, 0.0);
  HTUNE_CHECK_GT(coefficient + intercept, 0.0);
}

double QuadraticCurve::Rate(double price) const {
  return intercept_ + coefficient_ * price * price;
}

std::string QuadraticCurve::Name() const {
  return FormatDouble(intercept_, 1) + "+" + FormatDouble(coefficient_, 1) +
         "p^2";
}

std::unique_ptr<PriceRateCurve> QuadraticCurve::Clone() const {
  return std::make_unique<QuadraticCurve>(*this);
}

LogCurve::LogCurve(double scale) : scale_(scale) {
  HTUNE_CHECK_GT(scale, 0.0);
}

double LogCurve::Rate(double price) const {
  return scale_ * std::log1p(price);
}

std::string LogCurve::Name() const {
  return FormatDouble(scale_, 1) + "*log(1+p)";
}

std::unique_ptr<PriceRateCurve> LogCurve::Clone() const {
  return std::make_unique<LogCurve>(*this);
}

StatusOr<TableCurve> TableCurve::Create(
    std::vector<std::pair<double, double>> points, std::string name) {
  if (points.size() < 2) {
    return InvalidArgumentError("TableCurve: need at least two points");
  }
  std::sort(points.begin(), points.end());
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].second <= 0.0) {
      return InvalidArgumentError("TableCurve: rates must be positive");
    }
    if (i > 0) {
      if (points[i].first == points[i - 1].first) {
        return InvalidArgumentError("TableCurve: duplicate price point");
      }
      if (points[i].second < points[i - 1].second) {
        return InvalidArgumentError(
            "TableCurve: rates must be non-decreasing in price");
      }
    }
  }
  return TableCurve(std::move(points), std::move(name));
}

double TableCurve::Rate(double price) const {
  if (price <= points_.front().first) {
    return points_.front().second;
  }
  // Find the segment containing `price`, or extrapolate the last segment.
  size_t hi = points_.size() - 1;
  if (price < points_[hi].first) {
    const auto it = std::lower_bound(
        points_.begin(), points_.end(), price,
        [](const std::pair<double, double>& pt, double p) {
          return pt.first < p;
        });
    hi = static_cast<size_t>(it - points_.begin());
  }
  const auto& [x0, y0] = points_[hi - 1];
  const auto& [x1, y1] = points_[hi];
  const double slope = (y1 - y0) / (x1 - x0);
  const double value = y0 + slope * (price - x0);
  // Linear extrapolation past the last point could in principle dip only if
  // slope were negative, which Create() forbids; rates stay positive.
  return value;
}

std::string TableCurve::Name() const { return name_; }

std::unique_ptr<PriceRateCurve> TableCurve::Clone() const {
  return std::unique_ptr<PriceRateCurve>(new TableCurve(*this));
}

SigmoidCurve::SigmoidCurve(double max_rate, double midpoint, double width)
    : max_rate_(max_rate), midpoint_(midpoint), width_(width) {
  HTUNE_CHECK_GT(max_rate, 0.0);
  HTUNE_CHECK_GT(width, 0.0);
}

double SigmoidCurve::Rate(double price) const {
  return max_rate_ / (1.0 + std::exp(-(price - midpoint_) / width_));
}

std::string SigmoidCurve::Name() const {
  return "sigmoid(" + FormatDouble(max_rate_, 1) + "," +
         FormatDouble(midpoint_, 1) + "," + FormatDouble(width_, 1) + ")";
}

std::unique_ptr<PriceRateCurve> SigmoidCurve::Clone() const {
  return std::make_unique<SigmoidCurve>(*this);
}

FunctionCurve::FunctionCurve(std::function<double(double)> fn,
                             std::string name)
    : fn_(std::move(fn)), name_(std::move(name)) {
  HTUNE_CHECK(fn_ != nullptr);
}

double FunctionCurve::Rate(double price) const { return fn_(price); }

std::string FunctionCurve::Name() const { return name_; }

std::unique_ptr<PriceRateCurve> FunctionCurve::Clone() const {
  return std::make_unique<FunctionCurve>(*this);
}

std::vector<std::unique_ptr<PriceRateCurve>> PaperSyntheticCurves() {
  std::vector<std::unique_ptr<PriceRateCurve>> curves;
  curves.push_back(std::make_unique<LinearCurve>(1.0, 1.0));     // (a) 1+p
  curves.push_back(std::make_unique<LinearCurve>(10.0, 1.0));    // (b) 10p+1
  curves.push_back(std::make_unique<LinearCurve>(0.1, 10.0));    // (c) 0.1p+10
  curves.push_back(std::make_unique<LinearCurve>(3.0, 3.0));     // (d) 3p+3
  curves.push_back(std::make_unique<QuadraticCurve>(1.0, 1.0));  // (e) 1+p^2
  curves.push_back(std::make_unique<LogCurve>(1.0));             // (f) log(1+p)
  return curves;
}

}  // namespace htune
