#ifndef HTUNE_MODEL_QUADRATURE_H_
#define HTUNE_MODEL_QUADRATURE_H_

#include <functional>

namespace htune {

/// Adaptive Simpson integration of `f` over [a, b] to absolute tolerance
/// `tolerance`. Deterministic, recursion-depth bounded; for the smooth
/// survival-function integrands used in this library the bound is never hit.
double IntegrateAdaptiveSimpson(const std::function<double(double)>& f,
                                double a, double b, double tolerance);

/// Integrates a non-negative decreasing tail function `f` over [0, inf):
/// finds an upper cut T where f(T) < `tail_epsilon` by doubling from
/// `initial_upper`, then integrates [0, T] adaptively. Used for
/// E[max] = integral of survival functions.
double IntegrateDecayingTail(const std::function<double(double)>& f,
                             double initial_upper, double tail_epsilon,
                             double tolerance);

}  // namespace htune

#endif  // HTUNE_MODEL_QUADRATURE_H_
