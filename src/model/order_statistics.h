#ifndef HTUNE_MODEL_ORDER_STATISTICS_H_
#define HTUNE_MODEL_ORDER_STATISTICS_H_

#include <functional>
#include <vector>

#include "model/distributions.h"

namespace htune {

/// n-th harmonic number H_n = 1 + 1/2 + ... + 1/n (H_0 = 0).
double HarmonicNumber(int n);

/// E[max of n iid Exp(lambda)] = H_n / lambda — the closed form the paper
/// uses for single-round task groups (§4.3.1). Requires n >= 1, lambda > 0.
double ExpectedMaxExponential(int n, double lambda);

/// E[max{X1, X2}] for independent X1 ~ Exp(lambda1), X2 ~ Exp(lambda2):
/// 1/lambda1 + 1/lambda2 - 1/(lambda1 + lambda2). Used by the motivation
/// examples and the Lemma 1 proof.
double ExpectedMaxTwoExponentials(double lambda1, double lambda2);

/// E[min of n iid Exp(lambda)] = 1 / (n * lambda).
double ExpectedMinExponential(int n, double lambda);

/// E[max of n iid draws] for an arbitrary CDF via the tail-integral identity
/// E[max] = integral_0^inf (1 - F(t)^n) dt, evaluated with adaptive
/// quadrature. `mean_hint` scales the initial integration window (pass the
/// single-draw mean). Requires n >= 1, mean_hint > 0.
double ExpectedMaxGeneric(const std::function<double(double)>& cdf, int n,
                          double mean_hint, double tolerance = 1e-9);

/// E[max of n iid Erlang(k, lambda)] via ExpectedMaxGeneric; exact harmonic
/// form for k == 1.
double ExpectedMaxErlang(int n, int k, double lambda);

/// E[max of n iid two-phase (hypoexponential) latencies].
double ExpectedMaxTwoPhase(int n, const TwoPhaseLatencyDist& dist);

/// E[max of independent, non-identically distributed draws]:
/// integral_0^inf (1 - prod_i F_i(t)) dt. `mean_hint` should be the largest
/// single-draw mean. Requires a non-empty cdf list.
double ExpectedMaxIndependent(
    const std::vector<std::function<double(double)>>& cdfs, double mean_hint,
    double tolerance = 1e-9);

/// A distribution repeated `count` times among independent draws whose max
/// is wanted. Grouping identical CDFs lets the integrand raise each one to
/// a power instead of multiplying per draw.
struct WeightedCdf {
  std::function<double(double)> cdf;
  int count = 1;
};

/// E[max] over sum(count_i) independent draws, count_i of which follow
/// cdf_i: integral_0^inf (1 - prod_i F_i(t)^{count_i}) dt.
double ExpectedMaxWithMultiplicity(const std::vector<WeightedCdf>& cdfs,
                                   double mean_hint, double tolerance = 1e-9);

}  // namespace htune

#endif  // HTUNE_MODEL_ORDER_STATISTICS_H_
