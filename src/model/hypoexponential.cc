#include "model/hypoexponential.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "model/distributions.h"

namespace htune {

HypoexponentialDist::HypoexponentialDist(std::vector<double> rates)
    : rates_(std::move(rates)) {
  HTUNE_CHECK(!rates_.empty());
  for (double r : rates_) {
    HTUNE_CHECK_GT(r, 0.0);
    mean_ += 1.0 / r;
    variance_ += 1.0 / (r * r);
    uniform_rate_ = std::max(uniform_rate_, r);
  }
  jump_prob_.reserve(rates_.size());
  for (double r : rates_) {
    jump_prob_.push_back(r / uniform_rate_);
  }
}

double HypoexponentialDist::Cdf(double t) const {
  if (t <= 0.0) return 0.0;
  const size_t k = rates_.size();

  // Fast path: identical rates form an Erlang.
  if (std::all_of(rates_.begin(), rates_.end(),
                  [&](double r) { return r == rates_[0]; })) {
    return ErlangDist(static_cast<int>(k), rates_[0]).Cdf(t);
  }

  // Uniformization: embed the pure-birth chain (phase i -> i+1 at rate
  // rates_[i]) into a Poisson(uniform_rate_ * t) number of jumps, each
  // advancing phase i with probability jump_prob_[i]. Then
  //   P(T <= t) = sum_n  Poisson(n; Lt) * P(absorbed within n jumps).
  const double lt = uniform_rate_ * t;

  // phase_mass[i] = probability the chain sits in transient phase i after n
  // jumps; absorbed = 1 - sum(phase_mass).
  std::vector<double> phase_mass(k, 0.0);
  phase_mass[0] = 1.0;
  double absorbed = 0.0;

  // Poisson weights are accumulated iteratively in linear space when
  // exp(-lt) is representable, otherwise restarted from the mode in
  // log space.
  double cdf = 0.0;
  double poisson_mass_used = 0.0;

  const bool use_log_space = lt > 700.0;
  const long n_max =
      static_cast<long>(lt + 12.0 * std::sqrt(lt + 1.0) + 64.0);

  double weight;
  double log_lt = std::log(lt);
  if (!use_log_space) {
    weight = std::exp(-lt);
  } else {
    weight = 0.0;  // recomputed per step below
  }

  for (long n = 0; n <= n_max; ++n) {
    double w;
    if (!use_log_space) {
      w = weight;
      weight *= lt / static_cast<double>(n + 1);
    } else {
      const double log_w = static_cast<double>(n) * log_lt - lt -
                           std::lgamma(static_cast<double>(n) + 1.0);
      w = log_w < -745.0 ? 0.0 : std::exp(log_w);
    }
    cdf += w * absorbed;
    poisson_mass_used += w;
    // Everything past n contributes at most the remaining Poisson mass
    // (absorbed <= 1), so stop once the mass is exhausted.
    if (poisson_mass_used > 1.0 - 1e-13 && n > static_cast<long>(lt)) {
      cdf += (1.0 - poisson_mass_used) * absorbed;
      break;
    }
    // Advance the chain by one uniformized jump (in place, back to front).
    absorbed += phase_mass[k - 1] * jump_prob_[k - 1];
    for (size_t i = k - 1; i > 0; --i) {
      phase_mass[i] = phase_mass[i] * (1.0 - jump_prob_[i]) +
                      phase_mass[i - 1] * jump_prob_[i - 1];
    }
    phase_mass[0] *= 1.0 - jump_prob_[0];
  }

  if (cdf < 0.0) cdf = 0.0;
  if (cdf > 1.0) cdf = 1.0;
  return cdf;
}

double HypoexponentialDist::Sample(Random& rng) const {
  double total = 0.0;
  for (double r : rates_) {
    total += rng.Exponential(r);
  }
  return total;
}

}  // namespace htune
