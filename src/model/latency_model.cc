#include "model/latency_model.h"

#include <cmath>

#include "common/check.h"
#include "model/order_statistics.h"
#include "model/quadrature.h"

namespace htune {

double ExpectedGroupOnHoldLatency(const GroupShape& shape,
                                  const PriceRateCurve& curve,
                                  double per_repetition_price) {
  const double rate = curve.Rate(per_repetition_price);
  HTUNE_CHECK_GT(rate, 0.0);
  return ExpectedGroupOnHoldLatencyAtRate(shape, rate);
}

double ExpectedGroupOnHoldLatencyAtRate(const GroupShape& shape,
                                        double on_hold_rate) {
  HTUNE_CHECK_GE(shape.num_tasks, 1);
  HTUNE_CHECK_GE(shape.repetitions, 1);
  HTUNE_CHECK_GT(on_hold_rate, 0.0);
  return ExpectedMaxErlang(shape.num_tasks, shape.repetitions, on_hold_rate);
}

double ExpectedGroupProcessingLatency(const GroupShape& shape) {
  HTUNE_CHECK_GE(shape.repetitions, 1);
  HTUNE_CHECK_GT(shape.processing_rate, 0.0);
  return static_cast<double>(shape.repetitions) / shape.processing_rate;
}

double SumOfErlangsCdf(int k1, double rate1, int k2, double rate2, double t) {
  if (t <= 0.0) return 0.0;
  const ErlangDist first(k1, rate1);
  const ErlangDist second(k2, rate2);
  // F_S(t) = integral_0^t f1(u) F2(t - u) du
  const auto integrand = [&](double u) {
    return first.Pdf(u) * second.Cdf(t - u);
  };
  double cdf = IntegrateAdaptiveSimpson(integrand, 0.0, t, 1e-10);
  if (cdf < 0.0) cdf = 0.0;
  if (cdf > 1.0) cdf = 1.0;
  return cdf;
}

double ExpectedGroupTotalLatency(const GroupShape& shape,
                                 double on_hold_rate) {
  HTUNE_CHECK_GE(shape.num_tasks, 1);
  HTUNE_CHECK_GT(on_hold_rate, 0.0);
  const int k = shape.repetitions;
  const double mean = static_cast<double>(k) / on_hold_rate +
                      static_cast<double>(k) / shape.processing_rate;
  const auto cdf = [&](double t) {
    return SumOfErlangsCdf(k, on_hold_rate, k, shape.processing_rate, t);
  };
  return ExpectedMaxGeneric(cdf, shape.num_tasks, mean, 1e-7);
}

}  // namespace htune
