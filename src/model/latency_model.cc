#include "model/latency_model.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "model/order_statistics.h"
#include "model/quadrature.h"

namespace htune {

namespace {

void CheckAbandonmentModel(const AbandonmentModel& model) {
  HTUNE_CHECK_GE(model.prob, 0.0);
  HTUNE_CHECK_LE(model.prob, 1.0);
  if (model.prob > 0.0) {
    HTUNE_CHECK_GT(model.hold_rate, 0.0);
  }
}

/// The probability the model math runs on. prob == 1 is a degenerate input
/// (every acceptance is abandoned, so the expected hold chain never ends
/// and 1 / (1 - prob) is infinite); configuration validation rejects it
/// with a Status, and any caller that reaches the math anyway gets the
/// finite ceiling instead of inf/NaN propagating into the DP tables.
double ClampedAbandonProb(const AbandonmentModel& model) {
  return std::min(model.prob, kAbandonProbCeiling);
}

}  // namespace

double ExpectedAttemptsPerRepetition(const AbandonmentModel& model) {
  CheckAbandonmentModel(model);
  return 1.0 / (1.0 - ClampedAbandonProb(model));
}

double EffectiveOnHoldMean(double on_hold_rate,
                           const AbandonmentModel& model) {
  CheckAbandonmentModel(model);
  HTUNE_CHECK_GT(on_hold_rate, 0.0);
  const double prob = ClampedAbandonProb(model);
  if (prob == 0.0) {
    return 1.0 / on_hold_rate;
  }
  const double attempts = 1.0 / (1.0 - prob);
  return attempts / on_hold_rate +
         (attempts - 1.0) / model.hold_rate;
}

double EffectiveOnHoldRate(double on_hold_rate,
                           const AbandonmentModel& model) {
  return 1.0 / EffectiveOnHoldMean(on_hold_rate, model);
}

double EffectiveRepetitionLatency(double on_hold_rate,
                                  double processing_rate,
                                  const AbandonmentModel& model) {
  HTUNE_CHECK_GT(processing_rate, 0.0);
  return EffectiveOnHoldMean(on_hold_rate, model) + 1.0 / processing_rate;
}

std::shared_ptr<const PriceRateCurve> AdjustCurveForAbandonment(
    std::shared_ptr<const PriceRateCurve> curve,
    const AbandonmentModel& model) {
  HTUNE_CHECK(curve != nullptr);
  CheckAbandonmentModel(model);
  if (model.prob == 0.0) {
    return curve;
  }
  const std::string name =
      curve->Name() + " | abandon(" + FormatDouble(model.prob, 2) + ")";
  return std::make_shared<FunctionCurve>(
      [base = std::move(curve), model](double price) {
        return EffectiveOnHoldRate(base->Rate(price), model);
      },
      name);
}

double ExpectedGroupOnHoldLatency(const GroupShape& shape,
                                  const PriceRateCurve& curve,
                                  double per_repetition_price) {
  const double rate = curve.Rate(per_repetition_price);
  HTUNE_CHECK_GT(rate, 0.0);
  return ExpectedGroupOnHoldLatencyAtRate(shape, rate);
}

double ExpectedGroupOnHoldLatencyAtRate(const GroupShape& shape,
                                        double on_hold_rate) {
  HTUNE_CHECK_GE(shape.num_tasks, 1);
  HTUNE_CHECK_GE(shape.repetitions, 1);
  HTUNE_CHECK_GT(on_hold_rate, 0.0);
  return ExpectedMaxErlang(shape.num_tasks, shape.repetitions, on_hold_rate);
}

double ExpectedGroupProcessingLatency(const GroupShape& shape) {
  HTUNE_CHECK_GE(shape.repetitions, 1);
  HTUNE_CHECK_GT(shape.processing_rate, 0.0);
  return static_cast<double>(shape.repetitions) / shape.processing_rate;
}

double SumOfErlangsCdf(int k1, double rate1, int k2, double rate2, double t) {
  if (t <= 0.0) return 0.0;
  const ErlangDist first(k1, rate1);
  const ErlangDist second(k2, rate2);
  // F_S(t) = integral_0^t f1(u) F2(t - u) du
  const auto integrand = [&](double u) {
    return first.Pdf(u) * second.Cdf(t - u);
  };
  double cdf = IntegrateAdaptiveSimpson(integrand, 0.0, t, 1e-10);
  if (cdf < 0.0) cdf = 0.0;
  if (cdf > 1.0) cdf = 1.0;
  return cdf;
}

double ExpectedGroupTotalLatency(const GroupShape& shape,
                                 double on_hold_rate) {
  HTUNE_CHECK_GE(shape.num_tasks, 1);
  HTUNE_CHECK_GT(on_hold_rate, 0.0);
  const int k = shape.repetitions;
  const double mean = static_cast<double>(k) / on_hold_rate +
                      static_cast<double>(k) / shape.processing_rate;
  const auto cdf = [&](double t) {
    return SumOfErlangsCdf(k, on_hold_rate, k, shape.processing_rate, t);
  };
  return ExpectedMaxGeneric(cdf, shape.num_tasks, mean, 1e-7);
}

}  // namespace htune
