#ifndef HTUNE_MODEL_PRICE_RATE_CURVE_H_
#define HTUNE_MODEL_PRICE_RATE_CURVE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/statusor.h"

namespace htune {

/// Maps a task's promised payment (in discrete units; $0.01 on AMT) to the
/// on-hold clock rate lambda_o of the HPU — the rate of the thinned Poisson
/// acceptance process (§3.1.2). Implementations must be monotonically
/// non-decreasing in price and strictly positive for price >= 1; callers
/// (the tuning algorithms) rely on both properties.
class PriceRateCurve {
 public:
  virtual ~PriceRateCurve() = default;

  /// On-hold rate at `price` (>= 1 payment unit).
  virtual double Rate(double price) const = 0;

  /// Short identifier used in reports, e.g. "1+p" or "10p+1".
  virtual std::string Name() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<PriceRateCurve> Clone() const = 0;
};

/// lambda_o(p) = slope * p + intercept — the paper's Linearity Hypothesis
/// (Hypothesis 1, §3.3.2). Requires slope >= 0, and slope + intercept > 0 so
/// the rate is positive from price 1 upward.
class LinearCurve : public PriceRateCurve {
 public:
  LinearCurve(double slope, double intercept);

  double Rate(double price) const override;
  std::string Name() const override;
  std::unique_ptr<PriceRateCurve> Clone() const override;

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }

 private:
  double slope_;
  double intercept_;
};

/// lambda_o(p) = intercept + coefficient * p^2 — the paper's first nonlinear
/// robustness case (lambda = 1 + p^2).
class QuadraticCurve : public PriceRateCurve {
 public:
  QuadraticCurve(double coefficient, double intercept);

  double Rate(double price) const override;
  std::string Name() const override;
  std::unique_ptr<PriceRateCurve> Clone() const override;

 private:
  double coefficient_;
  double intercept_;
};

/// lambda_o(p) = scale * log(1 + p) — the paper's second nonlinear case.
class LogCurve : public PriceRateCurve {
 public:
  explicit LogCurve(double scale);

  double Rate(double price) const override;
  std::string Name() const override;
  std::unique_ptr<PriceRateCurve> Clone() const override;

 private:
  double scale_;
};

/// Piecewise-linear interpolation through measured (price, rate) points, with
/// constant extrapolation below the first and linear extrapolation of the
/// last segment above the final point. Reproduces Table 1, where only a few
/// discrete price points are known.
class TableCurve : public PriceRateCurve {
 public:
  /// Builds from (price, rate) points. Returns InvalidArgument unless there
  /// are >= 2 points, prices are strictly increasing after sorting, and
  /// rates are positive and non-decreasing.
  static StatusOr<TableCurve> Create(
      std::vector<std::pair<double, double>> points, std::string name);

  double Rate(double price) const override;
  std::string Name() const override;
  std::unique_ptr<PriceRateCurve> Clone() const override;

 private:
  TableCurve(std::vector<std::pair<double, double>> points, std::string name)
      : points_(std::move(points)), name_(std::move(name)) {}

  std::vector<std::pair<double, double>> points_;
  std::string name_;
};

/// Saturating uptake: lambda_o(p) = max_rate / (1 + e^{-(p - midpoint)/width}).
/// Models a finite worker pool — beyond the midpoint, extra payment buys
/// less and less rate, and the rate never exceeds max_rate no matter the
/// price. The paper's linear hypothesis is this curve's small-price regime.
class SigmoidCurve : public PriceRateCurve {
 public:
  /// Requires max_rate > 0 and width > 0.
  SigmoidCurve(double max_rate, double midpoint, double width);

  double Rate(double price) const override;
  std::string Name() const override;
  std::unique_ptr<PriceRateCurve> Clone() const override;

  double max_rate() const { return max_rate_; }

 private:
  double max_rate_;
  double midpoint_;
  double width_;
};

/// Wraps an arbitrary callable; for experiments with custom curves. The
/// callable must satisfy the monotonicity/positivity contract.
class FunctionCurve : public PriceRateCurve {
 public:
  FunctionCurve(std::function<double(double)> fn, std::string name);

  double Rate(double price) const override;
  std::string Name() const override;
  std::unique_ptr<PriceRateCurve> Clone() const override;

 private:
  std::function<double(double)> fn_;
  std::string name_;
};

/// The six curves of the paper's synthetic evaluation (§5.1.1), in figure
/// order (a)-(f): 1+p, 10p+1, 0.1p+10, 3p+3, 1+p^2, log(1+p).
std::vector<std::unique_ptr<PriceRateCurve>> PaperSyntheticCurves();

}  // namespace htune

#endif  // HTUNE_MODEL_PRICE_RATE_CURVE_H_
