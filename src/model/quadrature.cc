#include "model/quadrature.h"

#include <cmath>

#include "common/check.h"

namespace htune {
namespace {

constexpr int kMaxDepth = 48;
// Forced refinement before the error estimate may accept: protects against
// narrow features invisible to the initial coarse sampling.
constexpr int kMinDepth = 6;

double SimpsonRule(double fa, double fm, double fb, double a, double b) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double AdaptiveStep(const std::function<double(double)>& f, double a, double b,
                    double fa, double fm, double fb, double whole,
                    double tolerance, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = SimpsonRule(fa, flm, fm, a, m);
  const double right = SimpsonRule(fm, frm, fb, m, b);
  const double delta = left + right - whole;
  if (depth >= kMaxDepth ||
      (depth >= kMinDepth && std::abs(delta) <= 15.0 * tolerance)) {
    return left + right + delta / 15.0;
  }
  return AdaptiveStep(f, a, m, fa, flm, fm, left, tolerance / 2.0, depth + 1) +
         AdaptiveStep(f, m, b, fm, frm, fb, right, tolerance / 2.0, depth + 1);
}

}  // namespace

double IntegrateAdaptiveSimpson(const std::function<double(double)>& f,
                                double a, double b, double tolerance) {
  HTUNE_CHECK_LE(a, b);
  HTUNE_CHECK_GT(tolerance, 0.0);
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = SimpsonRule(fa, fm, fb, a, b);
  return AdaptiveStep(f, a, b, fa, fm, fb, whole, tolerance, 0);
}

double IntegrateDecayingTail(const std::function<double(double)>& f,
                             double initial_upper, double tail_epsilon,
                             double tolerance) {
  HTUNE_CHECK_GT(initial_upper, 0.0);
  HTUNE_CHECK_GT(tail_epsilon, 0.0);
  double upper = initial_upper;
  // Doubling search for a cut where the integrand is negligible. 64 doublings
  // is far beyond any latency scale appearing in the model.
  for (int i = 0; i < 64 && f(upper) >= tail_epsilon; ++i) {
    upper *= 2.0;
  }
  return IntegrateAdaptiveSimpson(f, 0.0, upper, tolerance);
}

}  // namespace htune
