#ifndef HTUNE_RESILIENCE_CIRCUIT_BREAKER_H_
#define HTUNE_RESILIENCE_CIRCUIT_BREAKER_H_

#include <string_view>

#include "common/status.h"

namespace htune {

/// Knobs for a closed/open/half-open circuit breaker. All times are
/// *simulated* seconds — the breaker never reads a clock itself; every
/// transition is driven by the `now` its caller passes, which is what makes
/// breaker behavior bitwise-reproducible under the chaos harness.
struct CircuitBreakerConfig {
  /// Consecutive transient failures that trip the breaker open.
  int failure_threshold = 5;
  /// Simulated seconds the breaker stays open before admitting a probe.
  double open_cooldown = 1.0;
  /// Consecutive probe successes in half-open needed to close again.
  int half_open_successes = 1;
};

/// Rejects NaN/non-positive thresholds and cooldowns.
Status ValidateCircuitBreakerConfig(const CircuitBreakerConfig& config);

/// A deterministic circuit breaker guarding one downstream dependency
/// (e.g. market posting). State machine:
///
///   closed     requests flow; `failure_threshold` consecutive transient
///              failures -> open.
///   open       requests are short-circuited (AllowRequest false) until
///              `open_cooldown` simulated seconds pass -> half-open.
///   half-open  exactly ONE probe request is admitted at a time; further
///              AllowRequest calls return false until the probe resolves.
///              `half_open_successes` consecutive successes -> closed;
///              any failure -> open with a fresh cooldown.
///
/// The caller contract: call AllowRequest(now) before the operation; on
/// false, skip it (degrade). On true, run it and report the outcome with
/// RecordSuccess/RecordFailure. Not thread-safe — one breaker per
/// controller, like the executor itself.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const CircuitBreakerConfig& config)
      : config_(config) {}

  /// True when the operation may proceed. Mutates: an open breaker whose
  /// cooldown has elapsed transitions to half-open and admits the single
  /// probe this call.
  bool AllowRequest(double now);

  /// Reports the outcome of an admitted operation.
  void RecordSuccess(double now);
  void RecordFailure(double now);

  State state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }
  /// Times the breaker transitioned closed/half-open -> open.
  int trips() const { return trips_; }

 private:
  void TripOpen(double now);

  CircuitBreakerConfig config_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_streak_ = 0;
  bool probe_in_flight_ = false;
  double opened_at_ = 0.0;
  int trips_ = 0;
};

std::string_view CircuitBreakerStateToString(CircuitBreaker::State state);

}  // namespace htune

#endif  // HTUNE_RESILIENCE_CIRCUIT_BREAKER_H_
