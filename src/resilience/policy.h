#ifndef HTUNE_RESILIENCE_POLICY_H_
#define HTUNE_RESILIENCE_POLICY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "rng/splitmix64.h"

namespace htune {

/// A gate a controller consults immediately before a market-side operation
/// (post, reprice): OK means proceed, a kUnavailable status means the
/// operation transiently failed before reaching the market (a stalled
/// endpoint). A default-constructed (empty) gate means no injection. This
/// is the seam the chaos harness's FaultInjector binds; production configs
/// leave it unset and pay nothing.
using FaultGate = std::function<Status(std::string_view op)>;

/// True for the one status code the resilience layer retries
/// (kUnavailable). Everything else — including the crash injector's
/// kResourceExhausted kill and real file-I/O kInternal errors — is treated
/// as permanent and propagates immediately, so retry wiring added to a
/// call site can never mask a genuine failure.
inline bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

/// Bounded retry with exponential backoff and deterministic seeded jitter.
///
/// Backoff is accounted in *simulated* seconds: the tuner's world has no
/// wall clock (the determinism linter forbids one), so retries are
/// instantaneous in simulation and the would-be delays are accumulated
/// into the `resilience.retry_backoff_ticks_us` counter for inspection. A
/// deployment gluing this onto a real platform sleeps for BackoffFor()
/// instead. Jitter comes from a SplitMix64 stream the caller seeds, never
/// from ambient randomness, so a retried run is bitwise reproducible.
struct RetryPolicy {
  /// Total tries including the first (1 = no retry). 0 is invalid.
  int max_attempts = 4;
  /// Delay after the first failed attempt, in simulated seconds.
  double initial_backoff = 0.01;
  /// Multiplier applied per subsequent failure (>= 1).
  double backoff_multiplier = 2.0;
  /// Ceiling on any single delay.
  double max_backoff = 1.0;
  /// Uniform jitter as a fraction of the delay: the drawn delay lies in
  /// [d * (1 - f), d * (1 + f)]. Must be in [0, 1].
  double jitter_fraction = 0.25;
};

/// Rejects NaN/negative/zero/inverted knobs with a descriptive
/// InvalidArgument; OK policies are safe to hand to RetryTransient.
Status ValidateRetryPolicy(const RetryPolicy& policy);

/// The delay after failure number `attempt` (1-based), jittered from
/// `jitter`. Always consumes exactly one draw when jitter_fraction > 0 so
/// call sites stay stream-aligned whether or not they honor the delay.
double BackoffFor(const RetryPolicy& policy, int attempt, SplitMix64& jitter);

/// A propagated completion deadline in simulated seconds. Deadline is a
/// value type so controllers can tighten it per phase (e.g. reserve tail
/// time for settlement) without mutating the caller's copy.
class Deadline {
 public:
  /// No deadline: Expired() is always false.
  static Deadline Infinite() { return Deadline(); }
  /// Absolute deadline at simulated time `at`. Non-positive or non-finite
  /// values mean infinite (the config convention: 0 disables).
  static Deadline At(double at);

  bool infinite() const { return infinite_; }
  bool Expired(double now) const { return !infinite_ && now >= at_; }
  /// Simulated seconds left; +inf when infinite, never negative.
  double Remaining(double now) const;
  /// OK while unexpired; ResourceExhausted naming `what` once the clock
  /// passes the deadline — the cancellation check long loops call.
  Status Check(double now, std::string_view what) const;

 private:
  Deadline() = default;
  bool infinite_ = true;
  double at_ = 0.0;
};

/// Runs `op` (a callable returning Status) under `policy`: transient
/// failures (IsTransient) are retried up to max_attempts with jittered
/// exponential backoff; permanent failures and success return immediately.
/// `repair`, when non-null, runs between a transient failure and the next
/// attempt (e.g. truncating a torn journal tail); a repair failure aborts
/// the retry loop with that status. `backoff_spent`, when non-null,
/// accumulates the simulated seconds of backoff consumed.
template <typename Op>
Status RetryTransient(const RetryPolicy& policy, SplitMix64& jitter, Op&& op,
                      const std::function<Status()>& repair = nullptr,
                      double* backoff_spent = nullptr) {
  Status status = OkStatus();
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    status = op();
    if (status.ok() || !IsTransient(status)) {
      return status;
    }
    if (attempt == policy.max_attempts) {
      break;  // exhausted: return the last transient status
    }
    if (repair) {
      const Status repaired = repair();
      if (!repaired.ok()) {
        return repaired;
      }
    }
    const double delay = BackoffFor(policy, attempt, jitter);
    if (backoff_spent != nullptr) {
      *backoff_spent += delay;
    }
  }
  return status;
}

}  // namespace htune

#endif  // HTUNE_RESILIENCE_POLICY_H_
