#ifndef HTUNE_RESILIENCE_FAULT_INJECTOR_H_
#define HTUNE_RESILIENCE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "durability/journal.h"
#include "resilience/policy.h"
#include "rng/splitmix64.h"

namespace htune {

/// Deterministic fault schedule for one chaos run. Probabilities are per
/// operation; every draw comes from SplitMix64 streams derived from `seed`,
/// so the same seed over the same operation sequence injects the same
/// faults — chaos runs are replayable, diffable, and bisectable.
struct FaultInjectorConfig {
  uint64_t seed = 1;
  /// P(append fails transiently, nothing persisted).
  double append_fault_prob = 0.0;
  /// P(append persists a strict prefix, then fails transiently) — the
  /// short-write model; the persisted length is drawn uniformly.
  double short_write_prob = 0.0;
  /// P(flush fails transiently).
  double flush_fault_prob = 0.0;
  /// P(a gated market operation fails transiently).
  double market_fault_prob = 0.0;
  /// Hard cap on consecutive injected faults per facet (storage / market):
  /// after this many in a row the next operation is forced clean, which
  /// guarantees any retry policy with max_attempts > the cap makes
  /// progress. 0 disables injection entirely.
  int max_consecutive_faults = 2;
};

/// Rejects NaN/out-of-range probabilities and negative caps, and sums of
/// append/short-write probabilities above 1.
Status ValidateFaultInjectorConfig(const FaultInjectorConfig& config);

/// Running tally of what a FaultInjector actually injected.
struct FaultInjectorStats {
  uint64_t append_faults = 0;
  uint64_t short_writes = 0;
  uint64_t flush_faults = 0;
  uint64_t market_faults = 0;
};

class FaultInjectingStorage;

/// Factory for the deterministic chaos surfaces of one run: a
/// JournalStorage wrapper that injects transient append/flush faults and
/// short writes, and a FaultGate that injects market stalls. The storage
/// and market facets draw from independent SplitMix64 streams (seed+1 and
/// seed+2; short-write lengths from seed+3), so retries on one facet never
/// shift the schedule of the other.
///
/// The injector must outlive every wrapper and gate it hands out.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorConfig& config);

  /// Wraps `inner` (borrowed, must outlive the wrapper) with this
  /// injector's storage fault schedule.
  std::unique_ptr<FaultInjectingStorage> WrapStorage(JournalStorage* inner);

  /// A gate bound to this injector's market fault schedule.
  FaultGate MarketGate();

  const FaultInjectorStats& stats() const { return stats_; }

 private:
  friend class FaultInjectingStorage;

  /// Uniform [0, 1) draw from `stream`.
  static double NextDouble(SplitMix64& stream);

  /// One storage-facet decision; returns OK or the injected fault and
  /// maintains the consecutive-fault cap. `short_write_len`, when
  /// non-null, receives the prefix length for an injected short write of
  /// an `size`-byte append (and the fault kind is then a short write).
  Status DrawStorageFault(double fault_prob, double short_prob, size_t size,
                          size_t* short_write_len);

  FaultInjectorConfig config_;
  SplitMix64 storage_stream_;
  SplitMix64 market_stream_;
  SplitMix64 length_stream_;
  int consecutive_storage_ = 0;
  int consecutive_market_ = 0;
  FaultInjectorStats stats_;
};

/// JournalStorage wrapper that injects the schedule of its FaultInjector
/// into Append and Flush. Load and Truncate pass through clean: recovery
/// and the retry layer's torn-tail repair must always be able to run —
/// chaos tests the write path, not the repair tools themselves.
class FaultInjectingStorage : public JournalStorage {
 public:
  FaultInjectingStorage(FaultInjector* injector, JournalStorage* inner)
      : injector_(injector), inner_(inner) {}

  StatusOr<std::string> Load() override { return inner_->Load(); }
  Status Append(std::string_view bytes) override;
  Status Truncate(uint64_t size) override { return inner_->Truncate(size); }
  Status Flush() override;

 private:
  FaultInjector* injector_;
  JournalStorage* inner_;
};

class FleetKillStorage;

/// Whole-process kill for a fleet: one shared byte budget across every
/// storage of every job, counted down atomically so the kill lands at a
/// deterministic total write volume regardless of which worker thread's
/// append crosses it. The crossing append persists exactly the prefix that
/// still fits (the torn-write model), then the switch trips and every
/// subsequent Append/Flush on every wrapped storage fails with
/// CrashInjectingStorage::CrashStatus() — the fleet-wide analogue of the
/// single-job CrashInjectingStorage. Load and Truncate keep working so the
/// post-kill recovery can reuse the same underlying storages.
///
/// Thread-safe, unlike FaultInjector: the budget is one atomic and the
/// killed flag only ever goes false -> true.
class FleetKillSwitch {
 public:
  /// The fleet dies once `fail_after_bytes` total bytes have been appended
  /// across all wrapped storages.
  explicit FleetKillSwitch(uint64_t fail_after_bytes)
      : budget_(static_cast<int64_t>(fail_after_bytes)) {}

  /// Wraps `inner` (borrowed, must outlive the wrapper) with the shared
  /// kill schedule. The switch must outlive every wrapper.
  std::unique_ptr<FleetKillStorage> WrapStorage(JournalStorage* inner);

  bool killed() const { return killed_.load(std::memory_order_acquire); }

 private:
  friend class FleetKillStorage;

  std::atomic<int64_t> budget_;
  std::atomic<bool> killed_{false};
};

/// JournalStorage wrapper bound to a FleetKillSwitch.
class FleetKillStorage : public JournalStorage {
 public:
  FleetKillStorage(FleetKillSwitch* kill, JournalStorage* inner)
      : kill_(kill), inner_(inner) {}

  StatusOr<std::string> Load() override { return inner_->Load(); }
  Status Append(std::string_view bytes) override;
  Status Truncate(uint64_t size) override { return inner_->Truncate(size); }
  Status Flush() override;

 private:
  FleetKillSwitch* kill_;
  JournalStorage* inner_;
};

}  // namespace htune

#endif  // HTUNE_RESILIENCE_FAULT_INJECTOR_H_
