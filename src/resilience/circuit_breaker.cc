#include "resilience/circuit_breaker.h"

#include <cmath>
#include <string>

#include "obs/obs.h"

namespace htune {

Status ValidateCircuitBreakerConfig(const CircuitBreakerConfig& config) {
  if (config.failure_threshold < 1) {
    return InvalidArgumentError(
        "CircuitBreakerConfig: failure_threshold must be >= 1, got " +
        std::to_string(config.failure_threshold));
  }
  if (std::isnan(config.open_cooldown) ||
      !std::isfinite(config.open_cooldown) || config.open_cooldown <= 0.0) {
    return InvalidArgumentError(
        "CircuitBreakerConfig: open_cooldown must be positive and finite, "
        "got " +
        std::to_string(config.open_cooldown));
  }
  if (config.half_open_successes < 1) {
    return InvalidArgumentError(
        "CircuitBreakerConfig: half_open_successes must be >= 1, got " +
        std::to_string(config.half_open_successes));
  }
  return OkStatus();
}

bool CircuitBreaker::AllowRequest(double now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ < config_.open_cooldown) {
        HTUNE_OBS_COUNTER_ADD("resilience.breaker_short_circuits", 1);
        return false;
      }
      state_ = State::kHalfOpen;
      half_open_streak_ = 0;
      probe_in_flight_ = true;
      HTUNE_OBS_COUNTER_ADD("resilience.breaker_probes", 1);
      return true;
    case State::kHalfOpen:
      // Single-probe contract: only one in-flight operation may test the
      // dependency; everyone else stays short-circuited until it resolves.
      if (probe_in_flight_) {
        HTUNE_OBS_COUNTER_ADD("resilience.breaker_short_circuits", 1);
        return false;
      }
      probe_in_flight_ = true;
      HTUNE_OBS_COUNTER_ADD("resilience.breaker_probes", 1);
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(double) {
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kOpen:
      // A success reported while open (an operation admitted before the
      // trip resolved late) does not close the breaker early.
      break;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_streak_ >= config_.half_open_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        HTUNE_OBS_COUNTER_ADD("resilience.breaker_closes", 1);
      }
      break;
  }
}

void CircuitBreaker::RecordFailure(double now) {
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        TripOpen(now);
      }
      break;
    case State::kOpen:
      break;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      TripOpen(now);
      break;
  }
}

void CircuitBreaker::TripOpen(double now) {
  state_ = State::kOpen;
  opened_at_ = now;
  half_open_streak_ = 0;
  probe_in_flight_ = false;
  ++trips_;
  HTUNE_OBS_COUNTER_ADD("resilience.breaker_opens", 1);
}

std::string_view CircuitBreakerStateToString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "CLOSED";
    case CircuitBreaker::State::kOpen:
      return "OPEN";
    case CircuitBreaker::State::kHalfOpen:
      return "HALF_OPEN";
  }
  return "UNKNOWN";
}

}  // namespace htune
