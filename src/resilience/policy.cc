#include "resilience/policy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.h"

namespace htune {

namespace {

Status BadKnob(std::string_view name, double value) {
  return InvalidArgumentError("RetryPolicy: " + std::string(name) +
                              " is invalid: " + std::to_string(value));
}

}  // namespace

Status ValidateRetryPolicy(const RetryPolicy& policy) {
  if (policy.max_attempts < 1) {
    return InvalidArgumentError(
        "RetryPolicy: max_attempts must be >= 1, got " +
        std::to_string(policy.max_attempts));
  }
  if (std::isnan(policy.initial_backoff) ||
      !std::isfinite(policy.initial_backoff) || policy.initial_backoff < 0.0) {
    return BadKnob("initial_backoff", policy.initial_backoff);
  }
  if (std::isnan(policy.backoff_multiplier) ||
      !std::isfinite(policy.backoff_multiplier) ||
      policy.backoff_multiplier < 1.0) {
    return BadKnob("backoff_multiplier", policy.backoff_multiplier);
  }
  if (std::isnan(policy.max_backoff) || !std::isfinite(policy.max_backoff) ||
      policy.max_backoff < policy.initial_backoff) {
    return BadKnob("max_backoff", policy.max_backoff);
  }
  if (std::isnan(policy.jitter_fraction) || policy.jitter_fraction < 0.0 ||
      policy.jitter_fraction > 1.0) {
    return BadKnob("jitter_fraction", policy.jitter_fraction);
  }
  return OkStatus();
}

double BackoffFor(const RetryPolicy& policy, int attempt, SplitMix64& jitter) {
  HTUNE_OBS_COUNTER_ADD("resilience.retries", 1);
  double delay = policy.initial_backoff;
  for (int i = 1; i < attempt; ++i) {
    delay = std::min(delay * policy.backoff_multiplier, policy.max_backoff);
  }
  delay = std::min(delay, policy.max_backoff);
  if (policy.jitter_fraction > 0.0) {
    // Top 53 bits -> uniform in [0, 1); always one draw per call so the
    // jitter stream position is a pure function of the retry count.
    const double u =
        static_cast<double>(jitter.Next() >> 11) * 0x1.0p-53;
    delay *= 1.0 + policy.jitter_fraction * (2.0 * u - 1.0);
  }
  HTUNE_OBS_COUNTER_ADD("resilience.retry_backoff_ticks_us",
                        static_cast<uint64_t>(delay * 1e6));
  return delay;
}

Deadline Deadline::At(double at) {
  Deadline deadline;
  if (std::isfinite(at) && at > 0.0) {
    deadline.infinite_ = false;
    deadline.at_ = at;
  }
  return deadline;
}

double Deadline::Remaining(double now) const {
  if (infinite_) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(0.0, at_ - now);
}

Status Deadline::Check(double now, std::string_view what) const {
  if (!Expired(now)) {
    return OkStatus();
  }
  HTUNE_OBS_COUNTER_ADD("resilience.deadline_expirations", 1);
  return ResourceExhaustedError(std::string(what) +
                                ": deadline " + std::to_string(at_) +
                                " expired at simulated time " +
                                std::to_string(now));
}

}  // namespace htune
