#include "resilience/fault_injector.h"

#include <cmath>
#include <string>

#include "obs/obs.h"

namespace htune {

namespace {

Status CheckProb(double value, std::string_view name) {
  if (std::isnan(value) || value < 0.0 || value > 1.0) {
    return InvalidArgumentError("FaultInjectorConfig: " + std::string(name) +
                                " must lie in [0, 1], got " +
                                std::to_string(value));
  }
  return OkStatus();
}

}  // namespace

Status ValidateFaultInjectorConfig(const FaultInjectorConfig& config) {
  HTUNE_RETURN_IF_ERROR(
      CheckProb(config.append_fault_prob, "append_fault_prob"));
  HTUNE_RETURN_IF_ERROR(CheckProb(config.short_write_prob,
                                  "short_write_prob"));
  HTUNE_RETURN_IF_ERROR(CheckProb(config.flush_fault_prob,
                                  "flush_fault_prob"));
  HTUNE_RETURN_IF_ERROR(CheckProb(config.market_fault_prob,
                                  "market_fault_prob"));
  if (config.append_fault_prob + config.short_write_prob > 1.0) {
    return InvalidArgumentError(
        "FaultInjectorConfig: append_fault_prob + short_write_prob must not "
        "exceed 1");
  }
  if (config.max_consecutive_faults < 0) {
    return InvalidArgumentError(
        "FaultInjectorConfig: max_consecutive_faults must be >= 0, got " +
        std::to_string(config.max_consecutive_faults));
  }
  return OkStatus();
}

FaultInjector::FaultInjector(const FaultInjectorConfig& config)
    : config_(config),
      storage_stream_(config.seed + 1),
      market_stream_(config.seed + 2),
      length_stream_(config.seed + 3) {}

double FaultInjector::NextDouble(SplitMix64& stream) {
  return static_cast<double>(stream.Next() >> 11) * 0x1.0p-53;
}

std::unique_ptr<FaultInjectingStorage> FaultInjector::WrapStorage(
    JournalStorage* inner) {
  return std::make_unique<FaultInjectingStorage>(this, inner);
}

Status FaultInjector::DrawStorageFault(double fault_prob, double short_prob,
                                       size_t size,
                                       size_t* short_write_len) {
  if (config_.max_consecutive_faults == 0) {
    return OkStatus();
  }
  // One draw per operation regardless of outcome keeps the schedule a pure
  // function of the operation index.
  const double u = NextDouble(storage_stream_);
  if (consecutive_storage_ >= config_.max_consecutive_faults) {
    consecutive_storage_ = 0;  // forced-clean op: progress guarantee
    return OkStatus();
  }
  if (short_write_len != nullptr && size > 0 && u < short_prob) {
    ++consecutive_storage_;
    *short_write_len = static_cast<size_t>(length_stream_.Next() % size);
    return UnavailableError(
        "injected short write: " + std::to_string(*short_write_len) + " of " +
        std::to_string(size) + " bytes persisted");
  }
  if (u < short_prob + fault_prob) {
    ++consecutive_storage_;
    return UnavailableError("injected transient storage fault");
  }
  consecutive_storage_ = 0;
  return OkStatus();
}

FaultGate FaultInjector::MarketGate() {
  return [this](std::string_view op) -> Status {
    if (config_.max_consecutive_faults == 0 ||
        config_.market_fault_prob <= 0.0) {
      return OkStatus();
    }
    const double u = NextDouble(market_stream_);
    if (consecutive_market_ >= config_.max_consecutive_faults) {
      consecutive_market_ = 0;
      return OkStatus();
    }
    if (u < config_.market_fault_prob) {
      ++consecutive_market_;
      ++stats_.market_faults;
      HTUNE_OBS_COUNTER_ADD("resilience.injected_market_faults", 1);
      return UnavailableError("injected market stall during " +
                              std::string(op));
    }
    consecutive_market_ = 0;
    return OkStatus();
  };
}

Status FaultInjectingStorage::Append(std::string_view bytes) {
  size_t short_len = 0;
  const Status fault = injector_->DrawStorageFault(
      injector_->config_.append_fault_prob,
      injector_->config_.short_write_prob, bytes.size(), &short_len);
  if (fault.ok()) {
    return inner_->Append(bytes);
  }
  if (short_len > 0) {
    // The prefix reaches the device before the blip; the caller sees only
    // the transient error and must repair (truncate) before retrying.
    ++injector_->stats_.short_writes;
    HTUNE_OBS_COUNTER_ADD("resilience.injected_short_writes", 1);
    HTUNE_RETURN_IF_ERROR(inner_->Append(bytes.substr(0, short_len)));
  } else {
    ++injector_->stats_.append_faults;
    HTUNE_OBS_COUNTER_ADD("resilience.injected_append_faults", 1);
  }
  return fault;
}

Status FaultInjectingStorage::Flush() {
  const Status fault = injector_->DrawStorageFault(
      injector_->config_.flush_fault_prob, 0.0, 0, nullptr);
  if (fault.ok()) {
    return inner_->Flush();
  }
  ++injector_->stats_.flush_faults;
  HTUNE_OBS_COUNTER_ADD("resilience.injected_flush_faults", 1);
  return fault;
}

std::unique_ptr<FleetKillStorage> FleetKillSwitch::WrapStorage(
    JournalStorage* inner) {
  return std::make_unique<FleetKillStorage>(this, inner);
}

Status FleetKillStorage::Append(std::string_view bytes) {
  if (kill_->killed_.load(std::memory_order_acquire)) {
    return CrashInjectingStorage::CrashStatus();
  }
  // Claim the bytes atomically: exactly one append across all the fleet's
  // storages crosses zero, and that append is the torn one. A concurrent
  // append that drew its claim before the crossing one still completes —
  // writes already "in flight at the moment of death" reaching the device
  // is within the torn-write model recovery must absorb anyway.
  const int64_t before = kill_->budget_.fetch_sub(
      static_cast<int64_t>(bytes.size()), std::memory_order_acq_rel);
  if (before >= static_cast<int64_t>(bytes.size())) {
    return inner_->Append(bytes);
  }
  if (before > 0) {
    // The crossing append: persist the prefix that fit, then die.
    (void)inner_->Append(bytes.substr(0, static_cast<size_t>(before)));
  }
  kill_->killed_.store(true, std::memory_order_release);
  return CrashInjectingStorage::CrashStatus();
}

Status FleetKillStorage::Flush() {
  if (kill_->killed_.load(std::memory_order_acquire)) {
    return CrashInjectingStorage::CrashStatus();
  }
  return inner_->Flush();
}

}  // namespace htune
