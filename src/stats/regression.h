#ifndef HTUNE_STATS_REGRESSION_H_
#define HTUNE_STATS_REGRESSION_H_

#include <vector>

#include "common/statusor.h"

namespace htune {

/// Result of an ordinary least-squares fit of y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 1 when the fit is exact.
  double r_squared = 0.0;
  /// Root of the mean squared residual.
  double residual_rms = 0.0;

  /// Evaluates the fitted line at `x`.
  double Predict(double x) const { return slope * x + intercept; }
};

/// Ordinary least-squares fit. Requires xs.size() == ys.size() >= 2 and at
/// least two distinct x values; returns InvalidArgument otherwise. Used to
/// test the paper's Linearity Hypothesis (lambda_o(c) = k*c + b, §3.3.2).
StatusOr<LinearFit> FitLinear(const std::vector<double>& xs,
                              const std::vector<double>& ys);

}  // namespace htune

#endif  // HTUNE_STATS_REGRESSION_H_
