#include "stats/regression.h"

#include <cmath>

namespace htune {

StatusOr<LinearFit> FitLinear(const std::vector<double>& xs,
                              const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return InvalidArgumentError("FitLinear: xs and ys differ in length");
  }
  const size_t n = xs.size();
  if (n < 2) {
    return InvalidArgumentError("FitLinear: need at least two points");
  }
  double mean_x = 0.0, mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    return InvalidArgumentError("FitLinear: all x values are identical");
  }

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;

  double ss_res = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double r = ys[i] - fit.Predict(xs[i]);
    ss_res += r * r;
  }
  fit.residual_rms = std::sqrt(ss_res / static_cast<double>(n));
  fit.r_squared = (syy == 0.0) ? 1.0 : 1.0 - ss_res / syy;
  return fit;
}

}  // namespace htune
