#ifndef HTUNE_STATS_KAPLAN_MEIER_H_
#define HTUNE_STATS_KAPLAN_MEIER_H_

#include <utility>
#include <vector>

#include "common/statusor.h"

namespace htune {

/// One duration observation: `time` until the event, or until observation
/// stopped (`event == false`, right-censored). In the crowdsourcing probe,
/// a completed acceptance is an event; a repetition still on hold when the
/// probe window closes is censored at the elapsed wait.
struct SurvivalObservation {
  double time = 0.0;
  bool event = true;
};

/// Kaplan-Meier product-limit estimator of the survival function S(t) from
/// right-censored durations — the methodology the paper's completion-time
/// reference ([16], Wang et al.) applies to crowdsourcing latencies. Used
/// to validate the exponential on-hold model without the bias of dropping
/// censored waits.
class KaplanMeier {
 public:
  /// Fits the estimator. Requires at least one observation with a
  /// non-negative time and at least one uncensored event.
  static StatusOr<KaplanMeier> Fit(std::vector<SurvivalObservation> data);

  /// Estimated survival probability S(t) = P(duration > t).
  double Survival(double t) const;

  /// The step function as (event_time, survival_just_after) pairs, in
  /// increasing time order.
  const std::vector<std::pair<double, double>>& steps() const {
    return steps_;
  }

  /// Smallest event time with S(t) <= 0.5, or +infinity if the curve never
  /// falls that far (heavy censoring).
  double MedianSurvivalTime() const;

  size_t num_events() const { return num_events_; }
  size_t num_censored() const { return num_censored_; }

 private:
  KaplanMeier() = default;

  std::vector<std::pair<double, double>> steps_;
  size_t num_events_ = 0;
  size_t num_censored_ = 0;
};

/// Sup over the fitted step points of |S_km(t) - e^{-lambda t}|: a
/// goodness-of-fit distance between the nonparametric curve and the
/// exponential model at rate `lambda`. Requires lambda > 0.
double MaxDeviationFromExponential(const KaplanMeier& km, double lambda);

}  // namespace htune

#endif  // HTUNE_STATS_KAPLAN_MEIER_H_
