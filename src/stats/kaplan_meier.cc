#include "stats/kaplan_meier.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace htune {

StatusOr<KaplanMeier> KaplanMeier::Fit(
    std::vector<SurvivalObservation> data) {
  if (data.empty()) {
    return InvalidArgumentError("KaplanMeier: no observations");
  }
  size_t events = 0;
  for (const SurvivalObservation& obs : data) {
    if (obs.time < 0.0) {
      return InvalidArgumentError("KaplanMeier: negative duration");
    }
    if (obs.event) ++events;
  }
  if (events == 0) {
    return InvalidArgumentError(
        "KaplanMeier: need at least one uncensored event");
  }

  // Sort by time; at equal times process events before censorings (the
  // standard convention: a subject censored at t was still at risk at t).
  std::sort(data.begin(), data.end(),
            [](const SurvivalObservation& a, const SurvivalObservation& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.event && !b.event;
            });

  KaplanMeier km;
  km.num_events_ = events;
  km.num_censored_ = data.size() - events;

  double survival = 1.0;
  size_t at_risk = data.size();
  size_t i = 0;
  while (i < data.size()) {
    const double t = data[i].time;
    size_t deaths = 0;
    size_t removed = 0;
    while (i < data.size() && data[i].time == t) {
      if (data[i].event) ++deaths;
      ++removed;
      ++i;
    }
    if (deaths > 0) {
      survival *= 1.0 - static_cast<double>(deaths) /
                            static_cast<double>(at_risk);
      km.steps_.emplace_back(t, survival);
    }
    at_risk -= removed;
  }
  return km;
}

double KaplanMeier::Survival(double t) const {
  // Last step at or before t.
  double survival = 1.0;
  for (const auto& [time, value] : steps_) {
    if (time > t) break;
    survival = value;
  }
  return survival;
}

double KaplanMeier::MedianSurvivalTime() const {
  for (const auto& [time, value] : steps_) {
    if (value <= 0.5) return time;
  }
  return std::numeric_limits<double>::infinity();
}

double MaxDeviationFromExponential(const KaplanMeier& km, double lambda) {
  HTUNE_CHECK_GT(lambda, 0.0);
  double sup = 0.0;
  double previous_survival = 1.0;
  for (const auto& [time, value] : km.steps()) {
    const double model = std::exp(-lambda * time);
    // The step function jumps at `time`: compare the model against both the
    // left limit and the new level.
    sup = std::max(sup, std::abs(previous_survival - model));
    sup = std::max(sup, std::abs(value - model));
    previous_survival = value;
  }
  return sup;
}

}  // namespace htune
