#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace htune {

RunningStats::RunningStats()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

double RunningStats::Min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::Max() const { return count_ == 0 ? 0.0 : max_; }

void RunningStats::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void RunningStats::AddAll(const std::vector<double>& values) {
  for (double v : values) {
    Add(v);
  }
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::StdError() const {
  if (count_ < 2) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) {
    const double d = v - mean;
    sum_sq += d * d;
  }
  return sum_sq / static_cast<double>(values.size() - 1);
}

namespace {

/// NaN samples would sort with undefined ordering (std::sort's comparator
/// contract) and silently poison every order statistic, so the quantile and
/// ECDF entry points reject them up front — file-sourced data is expected to
/// have been validated already (ParseTraceCsv returns a line-numbered
/// InvalidArgument for NaN); reaching this point with a NaN is a programming
/// error in the caller.
bool SampleIsNanFree(const std::vector<double>& values) {
  for (double v : values) {
    if (std::isnan(v)) return false;
  }
  return true;
}

}  // namespace

double Quantile(std::vector<double> values, double q) {
  HTUNE_CHECK(!values.empty());
  HTUNE_CHECK(SampleIsNanFree(values));
  HTUNE_CHECK_GE(q, 0.0);
  HTUNE_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double position = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(position);
  if (lo + 1 >= values.size()) {
    return values.back();
  }
  const double frac = position - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  HTUNE_CHECK(!sorted_.empty());
  HTUNE_CHECK(SampleIsNanFree(sorted_));
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

}  // namespace htune
