#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace htune {

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), buckets_(num_buckets, 0) {
  HTUNE_CHECK_LT(lo, hi);
  HTUNE_CHECK_GE(num_buckets, 1u);
}

void Histogram::Add(double value) {
  ++count_;
  if (std::isnan(value)) {
    ++nan_count_;
    return;
  }
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
  long index = static_cast<long>((value - lo_) / width);
  // Floating-point rounding can push a value just below hi_ to an index of
  // num_buckets; clamping is correct here because the value IS in range.
  index = std::clamp<long>(index, 0, static_cast<long>(buckets_.size()) - 1);
  ++buckets_[static_cast<size_t>(index)];
}

double Histogram::bucket_lower(size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
  return lo_ + width * static_cast<double>(i);
}

std::string Histogram::ToAscii(size_t width) const {
  size_t max_count = 1;
  for (size_t c : buckets_) max_count = std::max(max_count, c);
  std::string out;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const size_t bar = buckets_[i] * width / max_count;
    out += '[';
    out += FormatDouble(bucket_lower(i), 3);
    out += "] ";
    out.append(bar, '#');
    out += " (";
    out += std::to_string(buckets_[i]);
    out += ")\n";
  }
  if (underflow_ > 0) {
    out += "< " + FormatDouble(lo_, 3) + " underflow (" +
           std::to_string(underflow_) + ")\n";
  }
  if (overflow_ > 0) {
    out += ">= " + FormatDouble(hi_, 3) + " overflow (" +
           std::to_string(overflow_) + ")\n";
  }
  if (nan_count_ > 0) {
    out += "NaN (" + std::to_string(nan_count_) + ")\n";
  }
  return out;
}

}  // namespace htune
