#ifndef HTUNE_STATS_HISTOGRAM_H_
#define HTUNE_STATS_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace htune {

/// Fixed-width histogram over [lo, hi). Observations outside the range are
/// NOT folded into the edge buckets (that silently corrupts the tail buckets
/// of latency reports); they are tallied in explicit underflow/overflow
/// counters instead, and NaN observations in their own counter. Used for
/// latency distributions in traces and bench reports.
class Histogram {
 public:
  /// Builds `num_buckets` equal-width buckets spanning [lo, hi).
  /// Requires lo < hi and num_buckets >= 1.
  Histogram(double lo, double hi, size_t num_buckets);

  /// Records one observation. Values < lo count as underflow, values >= hi
  /// as overflow, NaN as nan_count; only in-range values land in a bucket.
  void Add(double value);

  /// Total number of recorded observations, including out-of-range and NaN.
  size_t count() const { return count_; }

  /// Count in bucket `i`.
  size_t bucket_count(size_t i) const { return buckets_[i]; }
  size_t num_buckets() const { return buckets_.size(); }

  /// Observations below `lo` (excluded from the buckets).
  size_t underflow() const { return underflow_; }
  /// Observations at or above `hi` (excluded from the buckets).
  size_t overflow() const { return overflow_; }
  /// NaN observations (neither bucketed nor counted as under/overflow).
  size_t nan_count() const { return nan_count_; }

  /// Inclusive lower edge of bucket `i`.
  double bucket_lower(size_t i) const;

  /// Renders an ASCII bar chart, one bucket per line, `width` chars max bar.
  /// Out-of-range tallies are appended as explicit "< lo" / ">= hi" / "NaN"
  /// lines whenever they are non-zero, so clipped tails stay visible.
  std::string ToAscii(size_t width) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> buckets_;
  size_t count_ = 0;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
  size_t nan_count_ = 0;
};

}  // namespace htune

#endif  // HTUNE_STATS_HISTOGRAM_H_
