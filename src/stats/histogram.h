#ifndef HTUNE_STATS_HISTOGRAM_H_
#define HTUNE_STATS_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace htune {

/// Fixed-width histogram over [lo, hi) with an overflow/underflow policy of
/// clamping into the edge buckets. Used for latency distributions in traces
/// and bench reports.
class Histogram {
 public:
  /// Builds `num_buckets` equal-width buckets spanning [lo, hi).
  /// Requires lo < hi and num_buckets >= 1.
  Histogram(double lo, double hi, size_t num_buckets);

  /// Records one observation.
  void Add(double value);

  /// Total number of recorded observations.
  size_t count() const { return count_; }

  /// Count in bucket `i`.
  size_t bucket_count(size_t i) const { return buckets_[i]; }
  size_t num_buckets() const { return buckets_.size(); }

  /// Inclusive lower edge of bucket `i`.
  double bucket_lower(size_t i) const;

  /// Renders an ASCII bar chart, one bucket per line, `width` chars max bar.
  std::string ToAscii(size_t width) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> buckets_;
  size_t count_ = 0;
};

}  // namespace htune

#endif  // HTUNE_STATS_HISTOGRAM_H_
