#ifndef HTUNE_STATS_DESCRIPTIVE_H_
#define HTUNE_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace htune {

/// Streaming accumulator for count / mean / variance / extrema using
/// Welford's numerically stable update.
class RunningStats {
 public:
  RunningStats();

  /// Folds `value` into the accumulator.
  void Add(double value);

  /// Folds every element of `values` into the accumulator.
  void AddAll(const std::vector<double>& values);

  size_t count() const { return count_; }
  /// Mean of added values; 0 if empty.
  double Mean() const { return mean_; }
  /// Unbiased sample variance; 0 if fewer than two values.
  double Variance() const;
  /// Square root of `Variance()`.
  double StdDev() const;
  /// Smallest added value; 0 if empty. (The +/-inf sentinels used to leak
  /// out of empty accumulators straight into JSON exports, which have no
  /// representation for non-finite numbers.)
  double Min() const;
  /// Largest added value; 0 if empty.
  double Max() const;
  /// Standard error of the mean; 0 if fewer than two values.
  double StdError() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;
};

/// Returns the mean of `values`; 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Returns the unbiased sample variance; 0 with fewer than two values.
double Variance(const std::vector<double>& values);

/// Returns the `q`-quantile (q in [0, 1]) with linear interpolation between
/// order statistics. Requires a non-empty, NaN-free vector (a NaN sample
/// aborts with a diagnostic: NaN would make the internal sort's ordering
/// undefined); `values` is copied and sorted internally.
double Quantile(std::vector<double> values, double q);

/// Empirical CDF over a fixed sample.
class EmpiricalCdf {
 public:
  /// Builds the ECDF of `sample` (copied and sorted). Requires a non-empty,
  /// NaN-free sample (NaN aborts with a diagnostic, as Quantile).
  explicit EmpiricalCdf(std::vector<double> sample);

  /// Fraction of sample points <= x.
  double operator()(double x) const;

  size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_sample() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// One-sample Kolmogorov-Smirnov statistic: sup_x |ECDF(x) - cdf(x)| where
/// `cdf` is evaluated at each sample point. Used by tests to validate that
/// simulator outputs follow their intended distributions.
template <typename Cdf>
double KolmogorovSmirnovStatistic(const EmpiricalCdf& ecdf, Cdf&& cdf) {
  const auto& xs = ecdf.sorted_sample();
  const double n = static_cast<double>(xs.size());
  double sup = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double theoretical = cdf(xs[i]);
    const double upper = (static_cast<double>(i) + 1.0) / n - theoretical;
    const double lower = theoretical - static_cast<double>(i) / n;
    if (upper > sup) sup = upper;
    if (lower > sup) sup = lower;
  }
  return sup;
}

}  // namespace htune

#endif  // HTUNE_STATS_DESCRIPTIVE_H_
