#ifndef HTUNE_STATS_BOOTSTRAP_H_
#define HTUNE_STATS_BOOTSTRAP_H_

#include <vector>

#include "common/statusor.h"
#include "rng/random.h"

namespace htune {

/// A two-sided confidence interval for a resampled statistic.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point_estimate = 0.0;

  /// True iff `value` lies inside [lower, upper].
  bool Contains(double value) const {
    return value >= lower && value <= upper;
  }
};

/// Percentile-bootstrap confidence interval for the mean of `sample`.
/// `confidence` in (0, 1), e.g. 0.95; `resamples` >= 10. Returns
/// InvalidArgument on an empty sample or out-of-range parameters.
StatusOr<ConfidenceInterval> BootstrapMeanCi(const std::vector<double>& sample,
                                             double confidence, int resamples,
                                             Random& rng);

}  // namespace htune

#endif  // HTUNE_STATS_BOOTSTRAP_H_
