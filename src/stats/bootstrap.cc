#include "stats/bootstrap.h"

#include "stats/descriptive.h"

namespace htune {

StatusOr<ConfidenceInterval> BootstrapMeanCi(const std::vector<double>& sample,
                                             double confidence, int resamples,
                                             Random& rng) {
  if (sample.empty()) {
    return InvalidArgumentError("BootstrapMeanCi: empty sample");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    return InvalidArgumentError("BootstrapMeanCi: confidence outside (0, 1)");
  }
  if (resamples < 10) {
    return InvalidArgumentError("BootstrapMeanCi: need >= 10 resamples");
  }

  const size_t n = sample.size();
  std::vector<double> means;
  means.reserve(static_cast<size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += sample[rng.UniformInt(n)];
    }
    means.push_back(sum / static_cast<double>(n));
  }

  const double alpha = 1.0 - confidence;
  ConfidenceInterval ci;
  ci.point_estimate = Mean(sample);
  ci.lower = Quantile(means, alpha / 2.0);
  ci.upper = Quantile(means, 1.0 - alpha / 2.0);
  return ci;
}

}  // namespace htune
