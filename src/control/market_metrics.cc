#include "control/market_metrics.h"

#include "obs/obs.h"

namespace htune {

void PublishMarketMetrics(const MarketSimulator& market) {
  const MarketEventCounts& counts = market.EventCounts();
  HTUNE_OBS_GAUGE_SET("market.events_dispatched",
                      static_cast<double>(counts.events_dispatched));
  HTUNE_OBS_GAUGE_SET("market.completions",
                      static_cast<double>(counts.completions));
  HTUNE_OBS_GAUGE_SET("market.abandons",
                      static_cast<double>(counts.abandons));
  HTUNE_OBS_GAUGE_SET("market.expiries",
                      static_cast<double>(counts.expiries));
  HTUNE_OBS_GAUGE_SET("market.stale_expiries",
                      static_cast<double>(counts.stale_expiries));
  HTUNE_OBS_GAUGE_SET("market.worker_arrivals",
                      static_cast<double>(counts.worker_arrivals));
  HTUNE_OBS_GAUGE_SET("market.tasks_posted",
                      static_cast<double>(counts.tasks_posted));
  HTUNE_OBS_GAUGE_SET("market.reprices",
                      static_cast<double>(counts.reprices));
}

}  // namespace htune
