#include "control/dilution.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace htune {

DilutedCurve::DilutedCurve(std::shared_ptr<const PriceRateCurve> base,
                           double arrival_rate, double total_weight)
    : base_(std::move(base)),
      arrival_rate_(arrival_rate),
      total_weight_(total_weight) {
  HTUNE_CHECK(base_ != nullptr);
  HTUNE_CHECK_GT(arrival_rate_, 0.0);
  HTUNE_CHECK(std::isfinite(arrival_rate_));
  HTUNE_CHECK_GE(total_weight_, 0.0);
  HTUNE_CHECK(std::isfinite(total_weight_));
  factor_ = total_weight_ > arrival_rate_ ? arrival_rate_ / total_weight_
                                          : 1.0;
}

double DilutedCurve::Rate(double price) const {
  return base_->Rate(price) * factor_;
}

std::string DilutedCurve::Name() const {
  return base_->Name() + " | diluted(" + FormatDouble(factor_, 3) + ")";
}

std::unique_ptr<PriceRateCurve> DilutedCurve::Clone() const {
  return std::make_unique<DilutedCurve>(base_, arrival_rate_, total_weight_);
}

std::shared_ptr<const PriceRateCurve> DiluteCurveForSharedMarket(
    std::shared_ptr<const PriceRateCurve> base, double arrival_rate,
    double total_weight) {
  HTUNE_CHECK(base != nullptr);
  if (total_weight <= arrival_rate) {
    return base;
  }
  return std::make_shared<DilutedCurve>(std::move(base), arrival_rate,
                                        total_weight);
}

}  // namespace htune
