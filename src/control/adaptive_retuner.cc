#include "control/adaptive_retuner.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "model/price_rate_curve.h"

namespace htune {

AdaptiveRetuner::AdaptiveRetuner(const BudgetAllocator* allocator,
                                 RetunerConfig config)
    : allocator_(allocator), config_(config) {
  HTUNE_CHECK(allocator != nullptr);
  HTUNE_CHECK_GT(config.review_interval, 0.0);
  HTUNE_CHECK_GE(config.max_reviews, 0);
  HTUNE_CHECK_GE(config.min_observations, 1);
  HTUNE_CHECK_GT(config.smoothing, 0.0);
  HTUNE_CHECK_LE(config.smoothing, 1.0);
  HTUNE_CHECK_GE(config.retune_threshold, 0.0);
}

namespace {

struct GroupState {
  std::vector<TaskId> task_ids;
  double scale = 1.0;
  int current_price = 1;
};

// Censored-free MLE of the multiplicative gap between the market's real
// rates and the assumed curve: events / sum(latency * assumed_rate).
struct ScaleEstimate {
  int events = 0;
  double exposure = 0.0;
  double Value() const { return static_cast<double>(events) / exposure; }
};

}  // namespace

StatusOr<RetunerReport> AdaptiveRetuner::Run(
    MarketSimulator& market, const TuningProblem& problem,
    const std::vector<QuestionSpec>& questions) const {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  if (questions.size() != static_cast<size_t>(problem.TotalTasks())) {
    return InvalidArgumentError(
        "AdaptiveRetuner: need one question per atomic task");
  }

  if (!config_.market_truth_per_group.empty() &&
      config_.market_truth_per_group.size() != problem.groups.size()) {
    return InvalidArgumentError(
        "AdaptiveRetuner: market_truth_per_group must match group count");
  }

  HTUNE_ASSIGN_OR_RETURN(const Allocation initial,
                         allocator_->Allocate(problem));

  const double start = market.now();
  const long spent_before = market.TotalSpent();
  std::vector<GroupState> groups(problem.groups.size());

  // Post everything under the initial allocation.
  size_t question_index = 0;
  for (size_t g = 0; g < problem.groups.size(); ++g) {
    const TaskGroup& group = problem.groups[g];
    groups[g].current_price = initial.groups[g].prices[0][0];
    for (int t = 0; t < group.num_tasks; ++t, ++question_index) {
      const std::vector<int>& prices = initial.groups[g].prices[t];
      TaskSpec spec;
      spec.repetitions = group.repetitions;
      spec.processing_rate = group.processing_rate;
      spec.per_repetition_prices = prices;
      spec.per_repetition_rates.reserve(prices.size());
      for (int price : prices) {
        // The requester's belief; overridden by the market's true curve
        // when one is configured.
        spec.per_repetition_rates.push_back(
            group.curve->Rate(static_cast<double>(price)));
      }
      spec.true_answer = questions[question_index].true_answer;
      spec.num_options = questions[question_index].num_options;
      if (!config_.market_truth_per_group.empty()) {
        spec.true_curve = config_.market_truth_per_group[g];
      }
      HTUNE_ASSIGN_OR_RETURN(const TaskId id, market.PostTask(spec));
      groups[g].task_ids.push_back(id);
    }
  }

  RetunerReport report;
  double deadline = start;
  for (int review = 0; review < config_.max_reviews; ++review) {
    deadline += config_.review_interval;
    if (market.RunUntil(deadline) == 0) {
      break;
    }
    ++report.reviews;

    // 1. Re-estimate each group's scale from observed acceptances. The
    // estimate is the censored MLE: completed waits contribute an event and
    // their assumed-rate exposure; a repetition still waiting for a worker
    // contributes its elapsed exposure with no event. Dropping the censored
    // term would bias the scale upward badly — short waits complete first.
    bool drifted = false;
    const double now = market.now();
    for (size_t g = 0; g < groups.size(); ++g) {
      ScaleEstimate estimate;
      for (const TaskId id : groups[g].task_ids) {
        HTUNE_ASSIGN_OR_RETURN(const TaskOutcome progress,
                               market.GetProgress(id));
        for (const RepetitionOutcome& rep : progress.repetitions) {
          ++estimate.events;
          estimate.exposure +=
              rep.OnHoldLatency() *
              problem.groups[g].curve->Rate(static_cast<double>(rep.price));
        }
        if (progress.completed_time > 0.0) {
          continue;  // no active wait
        }
        // Censored wait in progress: it started when the task was posted
        // (no acceptances yet) or when the last answer came back and the
        // next repetition was exposed.
        double wait_start = -1.0;
        if (progress.repetitions.empty()) {
          wait_start = progress.posted_time;
        } else if (progress.repetitions.back().completed_time > 0.0 &&
                   static_cast<int>(progress.repetitions.size()) <
                       problem.groups[g].repetitions) {
          wait_start = progress.repetitions.back().completed_time;
        }  // else: the current repetition is being processed, not waiting
        if (wait_start >= 0.0 && now > wait_start) {
          estimate.exposure +=
              (now - wait_start) *
              problem.groups[g].curve->Rate(
                  static_cast<double>(groups[g].current_price));
        }
      }
      if (estimate.events < config_.min_observations ||
          estimate.exposure <= 0.0) {
        continue;
      }
      const double fresh = estimate.Value();
      if (std::abs(fresh - groups[g].scale) >
          config_.retune_threshold * groups[g].scale) {
        groups[g].scale = config_.smoothing * fresh +
                          (1.0 - config_.smoothing) * groups[g].scale;
        drifted = true;
      }
    }
    if (!drifted) {
      continue;
    }

    // 2. Re-solve the remaining problem under the rescaled curves.
    TuningProblem remaining;
    std::vector<size_t> remaining_to_group;
    std::vector<std::vector<TaskId>> open_ids_per_group(groups.size());
    long committed = 0;  // accepted-but-unpaid repetitions
    for (size_t g = 0; g < groups.size(); ++g) {
      int open_tasks = 0;
      long total_remaining = 0;
      for (const TaskId id : groups[g].task_ids) {
        HTUNE_ASSIGN_OR_RETURN(const TaskOutcome progress,
                               market.GetProgress(id));
        if (progress.completed_time > 0.0) {
          continue;  // task already done
        }
        ++open_tasks;
        open_ids_per_group[g].push_back(id);
        for (const RepetitionOutcome& rep : progress.repetitions) {
          if (rep.completed_time <= 0.0) {
            committed += rep.price;  // in flight, promise stands
          }
        }
        // The in-flight repetition finishes on its own; only unexposed
        // repetitions are retunable.
        total_remaining += problem.groups[g].repetitions -
                           static_cast<int>(progress.repetitions.size());
      }
      if (open_tasks == 0 || total_remaining == 0) {
        continue;
      }
      TaskGroup g_remaining = problem.groups[g];
      g_remaining.num_tasks = open_tasks;
      // Average remaining repetitions, rounded up: matches the group's real
      // residual cost closely so the reallocation spends what is available
      // (a max across tasks would overestimate the cost and under-spend).
      g_remaining.repetitions = static_cast<int>(
          (total_remaining + open_tasks - 1) / open_tasks);
      const double scale = groups[g].scale;
      const PriceRateCurve* base = problem.groups[g].curve.get();
      const std::shared_ptr<const PriceRateCurve> believed =
          problem.groups[g].curve;
      g_remaining.curve = std::make_shared<FunctionCurve>(
          [believed, scale](double p) { return scale * believed->Rate(p); },
          base->Name() + " x" + std::to_string(scale));
      remaining.groups.push_back(std::move(g_remaining));
      remaining_to_group.push_back(g);
    }
    if (remaining.groups.empty()) {
      continue;
    }
    const long spent = market.TotalSpent() - spent_before;
    remaining.budget = problem.budget - spent - committed;
    if (remaining.budget < remaining.MinimumBudget()) {
      continue;  // too poor to retune; ride out the current prices
    }
    const auto realloc = allocator_->Allocate(remaining);
    if (!realloc.ok()) {
      continue;  // allocator preconditions unmet for the residual shape
    }

    // 3. Reprice open tasks, clamping down if the market refuses a rate
    // above its arrival capacity.
    bool any_repriced = false;
    for (size_t r = 0; r < remaining.groups.size(); ++r) {
      const size_t g = remaining_to_group[r];
      int price = realloc->groups[r].prices[0][0];
      if (price == groups[g].current_price) {
        continue;
      }
      for (const TaskId id : open_ids_per_group[g]) {
        int attempt = price;
        Status status = market.Reprice(
            id, attempt,
            remaining.groups[r].curve->Rate(static_cast<double>(attempt)));
        while (!status.ok() &&
               status.code() == StatusCode::kFailedPrecondition &&
               attempt > 1) {
          --attempt;
          status = market.Reprice(
              id, attempt,
              remaining.groups[r].curve->Rate(static_cast<double>(attempt)));
        }
        HTUNE_RETURN_IF_ERROR(status);
        price = attempt;
      }
      groups[g].current_price = price;
      any_repriced = true;
    }
    if (any_repriced) {
      ++report.retunes;
    }
  }

  if (market.OpenTaskCount() > 0) {
    HTUNE_RETURN_IF_ERROR(market.RunToCompletion());
  }

  double last_completion = start;
  for (const GroupState& state : groups) {
    report.final_scale.push_back(state.scale);
    report.final_prices.push_back(state.current_price);
    for (const TaskId id : state.task_ids) {
      HTUNE_ASSIGN_OR_RETURN(const TaskOutcome outcome,
                             market.GetOutcome(id));
      last_completion = std::max(last_completion, outcome.completed_time);
    }
  }
  report.latency = last_completion - start;
  report.spent = market.TotalSpent() - spent_before;
  return report;
}

}  // namespace htune
