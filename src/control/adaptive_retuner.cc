#include "control/adaptive_retuner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "common/check.h"
#include "durability/ledger.h"
#include "model/latency_cache.h"
#include "obs/obs.h"
#include "durability/serialize.h"
#include "durability/snapshot.h"
#include "model/price_rate_curve.h"

namespace htune {

AdaptiveRetuner::AdaptiveRetuner(const BudgetAllocator* allocator,
                                 RetunerConfig config)
    : allocator_(allocator), config_(config) {
  HTUNE_CHECK(allocator != nullptr);
  HTUNE_CHECK_GT(config.review_interval, 0.0);
  HTUNE_CHECK_GE(config.max_reviews, 0);
  HTUNE_CHECK_GE(config.min_observations, 1);
  HTUNE_CHECK_GT(config.smoothing, 0.0);
  HTUNE_CHECK_LE(config.smoothing, 1.0);
  HTUNE_CHECK_GE(config.retune_threshold, 0.0);
}

namespace {

struct GroupState {
  std::vector<TaskId> task_ids;
  /// Parallel to task_ids: 1 once the task's kCompletion was journaled
  /// (durable runs only; stays all-zero otherwise).
  std::vector<uint8_t> completed_logged;
  double scale = 1.0;
  int current_price = 1;
};

/// Loop-carried retuner state for checkpoint/restore; see the executor's
/// ExecState for why `deadline` is stored rather than recomputed.
struct RetunerState {
  std::vector<GroupState> groups;
  double start = 0.0;
  long spent_before = 0;
  double deadline = 0.0;
  int next_review = 0;
  int reviews = 0;
  int retunes = 0;
  bool initialized = false;  // HTUNE_TRANSIENT: implied true by decode
};

std::string EncodeRetunerState(const RetunerState& state,
                               const BudgetLedger& ledger) {
  Encoder encoder;
  encoder.PutDouble(state.start);
  encoder.PutI64(state.spent_before);
  encoder.PutDouble(state.deadline);
  encoder.PutI32(state.next_review);
  encoder.PutI32(state.reviews);
  encoder.PutI32(state.retunes);
  encoder.PutU64(state.groups.size());
  for (const GroupState& group : state.groups) {
    encoder.PutU64(group.task_ids.size());
    for (TaskId id : group.task_ids) encoder.PutU64(id);
    for (uint8_t logged : group.completed_logged) encoder.PutU8(logged);
    encoder.PutDouble(group.scale);
    encoder.PutI32(group.current_price);
  }
  encoder.PutString(ledger.Encode());
  return std::move(encoder).Release();
}

Status DecodeRetunerState(std::string_view bytes, RetunerState& state,
                          BudgetLedger& ledger) {
  Decoder decoder(bytes);
  int64_t spent_before = 0;
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&state.start));
  HTUNE_RETURN_IF_ERROR(decoder.GetI64(&spent_before));
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&state.deadline));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&state.next_review));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&state.reviews));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&state.retunes));
  state.spent_before = static_cast<long>(spent_before);
  uint64_t group_count = 0;
  HTUNE_RETURN_IF_ERROR(decoder.GetU64(&group_count));
  if (group_count > decoder.remaining()) {
    return InvalidArgumentError(
        "retuner snapshot: group count exceeds input size");
  }
  state.groups.clear();
  state.groups.reserve(static_cast<size_t>(group_count));
  for (uint64_t g = 0; g < group_count; ++g) {
    GroupState group;
    uint64_t task_count = 0;
    HTUNE_RETURN_IF_ERROR(decoder.GetU64(&task_count));
    if (task_count * 8 > decoder.remaining()) {
      return InvalidArgumentError(
          "retuner snapshot: task count exceeds input size");
    }
    group.task_ids.resize(static_cast<size_t>(task_count));
    for (TaskId& id : group.task_ids) {
      HTUNE_RETURN_IF_ERROR(decoder.GetU64(&id));
    }
    group.completed_logged.resize(static_cast<size_t>(task_count));
    for (uint8_t& logged : group.completed_logged) {
      HTUNE_RETURN_IF_ERROR(decoder.GetU8(&logged));
    }
    HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&group.scale));
    HTUNE_RETURN_IF_ERROR(decoder.GetI32(&group.current_price));
    state.groups.push_back(std::move(group));
  }
  std::string ledger_bytes;
  HTUNE_RETURN_IF_ERROR(decoder.GetString(&ledger_bytes));
  HTUNE_RETURN_IF_ERROR(decoder.ExpectDone());
  HTUNE_ASSIGN_OR_RETURN(ledger, BudgetLedger::Decode(ledger_bytes));
  state.initialized = true;
  return OkStatus();
}

// Censored-free MLE of the multiplicative gap between the market's real
// rates and the assumed curve: events / sum(latency * assumed_rate).
struct ScaleEstimate {
  int events = 0;
  double exposure = 0.0;
  double Value() const { return static_cast<double>(events) / exposure; }
};

/// Journals and ledgers the payments for every completed-but-unpaid
/// repetition of one task, plus its completion record the first time the
/// task is seen finished.
Status SettleTask(DurableContext& ctx, BudgetLedger& ledger, TaskId id,
                  const TaskOutcome& progress, uint8_t& completed_logged) {
  int completed = 0;
  for (const RepetitionOutcome& rep : progress.repetitions) {
    if (rep.completed_time > 0.0) ++completed;
  }
  for (int slot = ledger.PaymentsFor(id); slot < completed; ++slot) {
    const int price = progress.repetitions[static_cast<size_t>(slot)].price;
    Encoder record;
    record.PutU64(id);
    record.PutI32(slot);
    record.PutI32(price);
    HTUNE_RETURN_IF_ERROR(
        ctx.Emit(JournalRecordType::kPayment, record.bytes()));
    HTUNE_ASSIGN_OR_RETURN(const bool fresh,
                           ledger.RecordPayment(id, slot, price));
    (void)fresh;
  }
  if (progress.completed_time > 0.0 && completed_logged == 0) {
    Encoder record;
    record.PutU64(id);
    record.PutDouble(progress.completed_time);
    HTUNE_RETURN_IF_ERROR(
        ctx.Emit(JournalRecordType::kCompletion, record.bytes()));
    completed_logged = 1;
  }
  return OkStatus();
}

/// The retuning loop shared by Run and RunDurable; `ctx`/`ledger` are null
/// for plain runs, and `state` is fresh or snapshot-restored.
StatusOr<RetunerReport> RunJob(const BudgetAllocator& allocator,
                               const RetunerConfig& config,
                               MarketSimulator& market,
                               const TuningProblem& problem,
                               const std::vector<QuestionSpec>& questions,
                               DurableContext* ctx, BudgetLedger* ledger,
                               RetunerState& state) {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  if (questions.size() != static_cast<size_t>(problem.TotalTasks())) {
    return InvalidArgumentError(
        "AdaptiveRetuner: need one question per atomic task");
  }
  if (!config.market_truth_per_group.empty() &&
      config.market_truth_per_group.size() != problem.groups.size()) {
    return InvalidArgumentError(
        "AdaptiveRetuner: market_truth_per_group must match group count");
  }

  if (!state.initialized) {
    HTUNE_ASSIGN_OR_RETURN(const Allocation initial,
                           allocator.Allocate(problem));
    state.start = market.now();
    state.spent_before = market.TotalSpent();
    state.deadline = state.start;
    state.groups.assign(problem.groups.size(), GroupState());
    if (ctx != nullptr) {
      Encoder record;
      record.PutI64(problem.budget);
      record.PutU64(questions.size());
      HTUNE_RETURN_IF_ERROR(
          ctx->Emit(JournalRecordType::kRunStart, record.bytes()));
    }

    // Post everything under the initial allocation.
    size_t question_index = 0;
    for (size_t g = 0; g < problem.groups.size(); ++g) {
      const TaskGroup& group = problem.groups[g];
      state.groups[g].current_price = initial.groups[g].prices[0][0];
      for (int t = 0; t < group.num_tasks; ++t, ++question_index) {
        const std::vector<int>& prices = initial.groups[g].prices[t];
        TaskSpec spec;
        spec.repetitions = group.repetitions;
        spec.processing_rate = group.processing_rate;
        spec.per_repetition_prices = prices;
        spec.per_repetition_rates.reserve(prices.size());
        for (int price : prices) {
          // The requester's belief; overridden by the market's true curve
          // when one is configured.
          spec.per_repetition_rates.push_back(
              group.curve->Rate(static_cast<double>(price)));
        }
        spec.true_answer = questions[question_index].true_answer;
        spec.num_options = questions[question_index].num_options;
        if (!config.market_truth_per_group.empty()) {
          spec.true_curve = config.market_truth_per_group[g];
        }
        HTUNE_ASSIGN_OR_RETURN(const TaskId id, market.PostTask(spec));
        if (ctx != nullptr) {
          Encoder record;
          record.PutU64(id);
          record.PutU64(g);
          record.PutI32Vector(prices);
          HTUNE_RETURN_IF_ERROR(
              ctx->Emit(JournalRecordType::kPost, record.bytes()));
        }
        state.groups[g].task_ids.push_back(id);
        state.groups[g].completed_logged.push_back(0);
      }
    }
    state.initialized = true;
  } else if (state.groups.size() != problem.groups.size()) {
    return InvalidArgumentError(
        "AdaptiveRetuner: recovered state has " +
        std::to_string(state.groups.size()) + " groups but the problem has " +
        std::to_string(problem.groups.size()));
  }

  for (int review = state.next_review; review < config.max_reviews;
       ++review) {
    state.next_review = review + 1;
    state.deadline += config.review_interval;
    {
      HTUNE_OBS_SPAN("market.run_until");
      if (market.RunUntil(state.deadline) == 0) {
        break;
      }
    }
    ++state.reviews;
    HTUNE_OBS_SPAN("retuner.review");
    HTUNE_OBS_COUNTER_ADD("retuner.reviews", 1);

    // 1. Re-estimate each group's scale from observed acceptances. The
    // estimate is the censored MLE: completed waits contribute an event and
    // their assumed-rate exposure; a repetition still waiting for a worker
    // contributes its elapsed exposure with no event. Dropping the censored
    // term would bias the scale upward badly — short waits complete first.
    bool drifted = false;
    const double now = market.now();
    {
      HTUNE_OBS_SPAN("retuner.scale_estimation");
      for (size_t g = 0; g < state.groups.size(); ++g) {
        GroupState& group = state.groups[g];
        ScaleEstimate estimate;
        for (size_t t = 0; t < group.task_ids.size(); ++t) {
          const TaskId id = group.task_ids[t];
          HTUNE_ASSIGN_OR_RETURN(const TaskOutcome* progress_view,
                                 market.GetProgressView(id));
          const TaskOutcome& progress = *progress_view;
          if (ctx != nullptr) {
            HTUNE_RETURN_IF_ERROR(SettleTask(*ctx, *ledger, id, progress,
                                             group.completed_logged[t]));
          }
          for (const RepetitionOutcome& rep : progress.repetitions) {
            ++estimate.events;
            estimate.exposure +=
                rep.OnHoldLatency() *
                problem.groups[g].curve->Rate(static_cast<double>(rep.price));
          }
          if (progress.completed_time > 0.0) {
            continue;  // no active wait
          }
          // Censored wait in progress: it started when the task was posted
          // (no acceptances yet) or when the last answer came back and the
          // next repetition was exposed.
          double wait_start = -1.0;
          if (progress.repetitions.empty()) {
            wait_start = progress.posted_time;
          } else if (progress.repetitions.back().completed_time > 0.0 &&
                     static_cast<int>(progress.repetitions.size()) <
                         problem.groups[g].repetitions) {
            wait_start = progress.repetitions.back().completed_time;
          }  // else: the current repetition is being processed, not waiting
          if (wait_start >= 0.0 && now > wait_start) {
            estimate.exposure +=
                (now - wait_start) *
                problem.groups[g].curve->Rate(
                    static_cast<double>(group.current_price));
          }
        }
        if (estimate.events < config.min_observations ||
            estimate.exposure <= 0.0) {
          continue;
        }
        const double fresh = estimate.Value();
        if (std::abs(fresh - group.scale) >
            config.retune_threshold * group.scale) {
          group.scale = config.smoothing * fresh +
                        (1.0 - config.smoothing) * group.scale;
          drifted = true;
        }
      }
    }

    // 2 + 3. Re-solve the remaining problem under the rescaled curves and
    // reprice open tasks in place.
    if (drifted) {
      HTUNE_OBS_SPAN("retuner.reallocation");
      HTUNE_OBS_COUNTER_ADD("retuner.retunes", 1);
      TuningProblem remaining;
      std::vector<size_t> remaining_to_group;
      std::vector<std::vector<TaskId>> open_ids_per_group(
          state.groups.size());
      long committed = 0;  // accepted-but-unpaid repetitions
      for (size_t g = 0; g < state.groups.size(); ++g) {
        int open_tasks = 0;
        long total_remaining = 0;
        for (const TaskId id : state.groups[g].task_ids) {
          HTUNE_ASSIGN_OR_RETURN(const TaskOutcome* progress_view,
                                 market.GetProgressView(id));
          const TaskOutcome& progress = *progress_view;
          if (progress.completed_time > 0.0) {
            continue;  // task already done
          }
          ++open_tasks;
          open_ids_per_group[g].push_back(id);
          for (const RepetitionOutcome& rep : progress.repetitions) {
            if (rep.completed_time <= 0.0) {
              committed += rep.price;  // in flight, promise stands
            }
          }
          // The in-flight repetition finishes on its own; only unexposed
          // repetitions are retunable.
          total_remaining += problem.groups[g].repetitions -
                             static_cast<int>(progress.repetitions.size());
        }
        if (open_tasks == 0 || total_remaining == 0) {
          continue;
        }
        TaskGroup g_remaining = problem.groups[g];
        g_remaining.num_tasks = open_tasks;
        // Average remaining repetitions, rounded up: matches the group's
        // real residual cost closely so the reallocation spends what is
        // available (a max across tasks would overestimate the cost and
        // under-spend).
        g_remaining.repetitions = static_cast<int>(
            (total_remaining + open_tasks - 1) / open_tasks);
        const double scale = state.groups[g].scale;
        const PriceRateCurve* base = problem.groups[g].curve.get();
        const std::shared_ptr<const PriceRateCurve> believed =
            problem.groups[g].curve;
        g_remaining.curve = std::make_shared<FunctionCurve>(
            [believed, scale](double p) { return scale * believed->Rate(p); },
            base->Name() + " x" + std::to_string(scale));
        remaining.groups.push_back(std::move(g_remaining));
        remaining_to_group.push_back(g);
      }
      if (!remaining.groups.empty()) {
        const long spent = market.TotalSpent() - state.spent_before;
        remaining.budget = problem.budget - spent - committed;
        if (remaining.budget >= remaining.MinimumBudget()) {
          const auto realloc = allocator.Allocate(remaining);
          if (realloc.ok()) {
            bool any_repriced = false;
            for (size_t r = 0; r < remaining.groups.size(); ++r) {
              const size_t g = remaining_to_group[r];
              int price = realloc->groups[r].prices[0][0];
              if (price == state.groups[g].current_price) {
                continue;
              }
              for (const TaskId id : open_ids_per_group[g]) {
                int attempt = price;
                Status status = market.Reprice(
                    id, attempt,
                    remaining.groups[r].curve->Rate(
                        static_cast<double>(attempt)));
                while (!status.ok() &&
                       status.code() == StatusCode::kFailedPrecondition &&
                       attempt > 1) {
                  --attempt;
                  status = market.Reprice(
                      id, attempt,
                      remaining.groups[r].curve->Rate(
                          static_cast<double>(attempt)));
                }
                HTUNE_RETURN_IF_ERROR(status);
                if (ctx != nullptr) {
                  Encoder record;
                  record.PutU64(id);
                  record.PutI32(attempt);
                  record.PutI64(0);  // remaining slots not tracked here
                  HTUNE_RETURN_IF_ERROR(
                      ctx->Emit(JournalRecordType::kReprice, record.bytes()));
                }
                price = attempt;
              }
              state.groups[g].current_price = price;
              any_repriced = true;
            }
            if (any_repriced) {
              ++state.retunes;
            }
          }
        }
      }
    }

    if (ctx != nullptr) {
      Encoder record;
      record.PutI32(review);
      record.PutDouble(now);
      record.PutI64(market.TotalSpent() - state.spent_before);
      HTUNE_RETURN_IF_ERROR(
          ctx->Emit(JournalRecordType::kReviewEnd, record.bytes()));
      if (ctx->ShouldSnapshot(state.reviews) && !ctx->replaying()) {
        HTUNE_ASSIGN_OR_RETURN(
            const MarketState market_state,
            market.CaptureState(config.market_truth_per_group));
        HTUNE_RETURN_IF_ERROR(
            ctx->EmitSnapshot(EncodeMarketState(market_state),
                              EncodeRetunerState(state, *ledger)));
      }
    }
  }

  if (market.OpenTaskCount() > 0) {
    HTUNE_RETURN_IF_ERROR(market.RunToCompletion());
  }

  RetunerReport report;
  report.reviews = state.reviews;
  report.retunes = state.retunes;
  double last_completion = state.start;
  for (size_t g = 0; g < state.groups.size(); ++g) {
    GroupState& group = state.groups[g];
    report.final_scale.push_back(group.scale);
    report.final_prices.push_back(group.current_price);
    for (size_t t = 0; t < group.task_ids.size(); ++t) {
      HTUNE_ASSIGN_OR_RETURN(const TaskOutcome* outcome_view,
                             market.GetOutcomeView(group.task_ids[t]));
      const TaskOutcome& outcome = *outcome_view;
      if (ctx != nullptr) {
        HTUNE_RETURN_IF_ERROR(SettleTask(*ctx, *ledger, group.task_ids[t],
                                         outcome,
                                         group.completed_logged[t]));
      }
      last_completion = std::max(last_completion, outcome.completed_time);
    }
  }
  report.latency = last_completion - state.start;
  report.spent = market.TotalSpent() - state.spent_before;
  HTUNE_OBS_GAUGE_SET("retuner.spent", static_cast<double>(report.spent));
  HTUNE_OBS_GAUGE_SET("retuner.latency", report.latency);
  GlobalLatencyCache().PublishToMetrics();

  if (ctx != nullptr) {
    Encoder record;
    record.PutI64(report.spent);
    record.PutDouble(report.latency);
    HTUNE_RETURN_IF_ERROR(
        ctx->Emit(JournalRecordType::kRunEnd, record.bytes()));
    if (ledger->TotalPaid() != report.spent) {
      return InternalError("AdaptiveRetuner: ledger total " +
                           std::to_string(ledger->TotalPaid()) +
                           " != market spend " + std::to_string(report.spent) +
                           " -- a payment was lost or double-counted");
    }
    HTUNE_RETURN_IF_ERROR(ctx->Flush());
  }
  return report;
}

}  // namespace

StatusOr<RetunerReport> AdaptiveRetuner::Run(
    MarketSimulator& market, const TuningProblem& problem,
    const std::vector<QuestionSpec>& questions) const {
  RetunerState state;
  return RunJob(*allocator_, config_, market, problem, questions,
                /*ctx=*/nullptr, /*ledger=*/nullptr, state);
}

StatusOr<RetunerReport> AdaptiveRetuner::RunDurable(
    const MarketConfig& market_config, const TuningProblem& problem,
    const std::vector<QuestionSpec>& questions,
    const DurabilityConfig& durability,
    std::vector<TraceEvent>* final_trace) const {
  HTUNE_ASSIGN_OR_RETURN(DurableContext ctx, DurableContext::Open(durability));
  MarketSimulator market(market_config);
  RetunerState state;
  BudgetLedger ledger;
  if (ctx.has_snapshot()) {
    HTUNE_ASSIGN_OR_RETURN(const MarketState market_state,
                           DecodeMarketState(ctx.market_snapshot()));
    HTUNE_RETURN_IF_ERROR(
        market.RestoreState(market_state, config_.market_truth_per_group));
    HTUNE_RETURN_IF_ERROR(
        DecodeRetunerState(ctx.executor_snapshot(), state, ledger));
  }
  HTUNE_ASSIGN_OR_RETURN(
      RetunerReport report,
      RunJob(*allocator_, config_, market, problem, questions, &ctx, &ledger,
             state));
  if (final_trace != nullptr) {
    *final_trace = market.trace();
  }
  return report;
}

}  // namespace htune
