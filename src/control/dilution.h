#ifndef HTUNE_CONTROL_DILUTION_H_
#define HTUNE_CONTROL_DILUTION_H_

#include <memory>

#include "model/price_rate_curve.h"

namespace htune {

/// A price-rate curve as seen from inside a contended shared market: the
/// base curve's rate, scaled by the common dilution factor
///   arrival_rate / max(arrival_rate, total_weight)
/// that SharedArrivalStream applies once the sum of all competitors'
/// posted weights exceeds the worker arrival rate. Executors tuned against
/// a DilutedCurve observe cross-job rate dilution through the existing
/// curve interface — no allocator or evaluator learns anything about the
/// other jobs beyond the single scalar `total_weight`.
///
/// The dilution factor is frozen at construction (a review-epoch
/// observation), so within one tuning pass the curve is an ordinary
/// deterministic PriceRateCurve: positive, finite, and monotone wherever
/// the base curve is. Controllers rebuild it each review with the current
/// total weight, mirroring how a real requester re-estimates market
/// responsiveness between posting rounds.
class DilutedCurve : public PriceRateCurve {
 public:
  /// `base` must be non-null; `arrival_rate` positive and finite;
  /// `total_weight` non-negative and finite (the left-to-right sum from
  /// SharedArrivalStream::TotalWeight over every competing candidate,
  /// including this job's own postings).
  DilutedCurve(std::shared_ptr<const PriceRateCurve> base,
               double arrival_rate, double total_weight);

  double Rate(double price) const override;
  std::string Name() const override;
  std::unique_ptr<PriceRateCurve> Clone() const override;

  /// The frozen factor arrival_rate / max(arrival_rate, total_weight),
  /// in (0, 1].
  double factor() const { return factor_; }

 private:
  std::shared_ptr<const PriceRateCurve> base_;
  double arrival_rate_;
  double total_weight_;
  double factor_;
};

/// Convenience wrapper: returns `base` unchanged while the market is
/// unsaturated (total_weight <= arrival_rate, factor 1), otherwise a
/// DilutedCurve — so the common uncontended path adds no indirection.
std::shared_ptr<const PriceRateCurve> DiluteCurveForSharedMarket(
    std::shared_ptr<const PriceRateCurve> base, double arrival_rate,
    double total_weight);

}  // namespace htune

#endif  // HTUNE_CONTROL_DILUTION_H_
