#include "control/fault_tolerant_executor.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "tuning/allocation.h"

namespace htune {

FaultTolerantExecutor::FaultTolerantExecutor(const BudgetAllocator* allocator,
                                             FaultTolerantConfig config)
    : allocator_(allocator), config_(config) {
  HTUNE_CHECK(allocator != nullptr);
  HTUNE_CHECK_GT(config.review_interval, 0.0);
  HTUNE_CHECK_GE(config.max_reviews, 0);
  HTUNE_CHECK_GT(config.straggler_quantile, 0.0);
  HTUNE_CHECK_LT(config.straggler_quantile, 1.0);
  HTUNE_CHECK_GE(config.max_reposts, 0);
  HTUNE_CHECK_GT(config.price_escalation, 1.0);
  HTUNE_CHECK_GE(config.budget, 0);
  HTUNE_CHECK_GE(config.acceptance_timeout, 0.0);
}

namespace {

/// Executor-side view of one posted task.
struct TaskState {
  TaskId id = 0;
  size_t group = 0;
  /// Planned payment of every repetition slot; escalations and floor
  /// demotions rewrite the not-yet-accepted suffix.
  std::vector<int> planned;
  /// Escalations applied to the slot that was current when
  /// `counter_completed` repetitions had completed (bounded retries).
  int counter_completed = 0;
  int escalations_this_slot = 0;
  bool floored = false;
  bool done = false;
};

int CompletedRepetitions(const TaskOutcome& progress) {
  int completed = 0;
  for (const RepetitionOutcome& rep : progress.repetitions) {
    if (rep.completed_time > 0.0) ++completed;
  }
  return completed;
}

/// Cost of the not-yet-accepted slots ([accepted, end) of the plan).
long FutureCost(const TaskState& state, size_t accepted) {
  long cost = 0;
  for (size_t j = accepted; j < state.planned.size(); ++j) {
    cost += state.planned[j];
  }
  return cost;
}

/// Reprices `state`'s open task to `target`, clamping down while the market
/// refuses a rate above its arrival capacity (as AdaptiveRetuner). On
/// success the achieved price is written into the plan's unaccepted suffix.
StatusOr<int> RepriceTo(MarketSimulator& market, const PriceRateCurve& curve,
                        TaskState& state, size_t accepted, int target) {
  int attempt = target;
  Status status =
      market.Reprice(state.id, attempt,
                     curve.Rate(static_cast<double>(attempt)));
  while (!status.ok() && status.code() == StatusCode::kFailedPrecondition &&
         attempt > 1) {
    --attempt;
    status = market.Reprice(state.id, attempt,
                            curve.Rate(static_cast<double>(attempt)));
  }
  HTUNE_RETURN_IF_ERROR(status);
  for (size_t j = accepted; j < state.planned.size(); ++j) {
    state.planned[j] = attempt;
  }
  return attempt;
}

}  // namespace

StatusOr<FaultTolerantReport> FaultTolerantExecutor::Run(
    MarketSimulator& market, const TuningProblem& problem,
    const std::vector<QuestionSpec>& questions) const {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  if (questions.size() != static_cast<size_t>(problem.TotalTasks())) {
    return InvalidArgumentError(
        "FaultTolerantExecutor: need one question per atomic task");
  }
  const long budget =
      config_.budget > 0 ? config_.budget : problem.budget;

  // Allocate against the abandonment-corrected problem so the initial prices
  // already account for wasted attempts.
  const TuningProblem adjusted =
      ProblemWithAbandonment(problem, config_.abandonment);
  HTUNE_ASSIGN_OR_RETURN(const Allocation initial,
                         allocator_->Allocate(adjusted));
  long initial_cost = 0;
  for (const GroupAllocation& g : initial.groups) {
    for (const std::vector<int>& prices : g.prices) {
      for (int price : prices) initial_cost += price;
    }
  }
  if (initial_cost > budget) {
    return InvalidArgumentError(
        "FaultTolerantExecutor: initial allocation costs " +
        std::to_string(initial_cost) + " but the budget is " +
        std::to_string(budget));
  }

  const double start = market.now();
  const long spent_before = market.TotalSpent();

  // Post everything under the initial allocation. Rates sent to the market
  // are the requester's belief about the raw (pre-abandonment) curve; the
  // market applies abandonment itself.
  std::vector<TaskState> tasks;
  tasks.reserve(questions.size());
  size_t question_index = 0;
  for (size_t g = 0; g < problem.groups.size(); ++g) {
    const TaskGroup& group = problem.groups[g];
    for (int t = 0; t < group.num_tasks; ++t, ++question_index) {
      const std::vector<int>& prices = initial.groups[g].prices[t];
      TaskSpec spec;
      spec.repetitions = group.repetitions;
      spec.processing_rate = group.processing_rate;
      spec.per_repetition_prices = prices;
      spec.per_repetition_rates.reserve(prices.size());
      for (int price : prices) {
        spec.per_repetition_rates.push_back(
            group.curve->Rate(static_cast<double>(price)));
      }
      spec.acceptance_timeout = config_.acceptance_timeout;
      spec.true_answer = questions[question_index].true_answer;
      spec.num_options = questions[question_index].num_options;
      HTUNE_ASSIGN_OR_RETURN(const TaskId id, market.PostTask(spec));
      TaskState state;
      state.id = id;
      state.group = g;
      state.planned = prices;
      tasks.push_back(std::move(state));
    }
  }

  FaultTolerantReport report;
  const double quantile_factor = -std::log(1.0 - config_.straggler_quantile);
  double deadline = start;
  for (int review = 0; review < config_.max_reviews; ++review) {
    deadline += config_.review_interval;
    if (market.RunUntil(deadline) == 0) {
      break;
    }
    ++report.reviews;
    const double now = market.now();
    const long spent = market.TotalSpent() - spent_before;

    // Accounting pass: what the job is already committed to pay (spent plus
    // in-flight promises) and what the current plan would add.
    long committed = spent;
    long future = 0;
    std::vector<size_t> accepted_of(tasks.size(), 0);
    // Time the currently exposed slot first became available (the previous
    // answer's completion, or the post); < 0 when the task is processing.
    // Abandon/expiry reposts do NOT reset this clock — unlike OnHoldSince —
    // so churn accumulates into a detectable straggler wait.
    std::vector<double> slot_open_since(tasks.size(), -1.0);
    for (size_t i = 0; i < tasks.size(); ++i) {
      TaskState& state = tasks[i];
      if (state.done) continue;
      HTUNE_ASSIGN_OR_RETURN(const TaskOutcome progress,
                             market.GetProgress(state.id));
      if (progress.completed_time > 0.0) {
        state.done = true;
        continue;
      }
      const int completed = CompletedRepetitions(progress);
      if (completed != state.counter_completed) {
        state.counter_completed = completed;
        state.escalations_this_slot = 0;
      }
      const size_t accepted = progress.repetitions.size();
      accepted_of[i] = accepted;
      if (static_cast<int>(accepted) > completed) {
        committed += progress.repetitions.back().price;  // in flight
      } else {
        slot_open_since[i] = progress.repetitions.empty()
                                 ? progress.posted_time
                                 : progress.repetitions.back().completed_time;
      }
      future += FutureCost(state, accepted);
    }
    long planned_total = committed + future;

    // Budget-exhaustion pass: the plan can exceed the ceiling when the
    // configured budget is below the initial allocation's assumption (e.g. a
    // mid-course budget cut between runs) — demote the costliest plans to
    // floor price until the job fits again, and flag partial quality.
    while (planned_total > budget) {
      size_t worst = tasks.size();
      long worst_future = 0;
      for (size_t i = 0; i < tasks.size(); ++i) {
        if (tasks[i].done || tasks[i].floored) continue;
        const long task_future = FutureCost(tasks[i], accepted_of[i]);
        if (task_future > worst_future) {
          worst_future = task_future;
          worst = i;
        }
      }
      if (worst == tasks.size()) break;  // only in-flight promises remain
      TaskState& state = tasks[worst];
      const long slots = static_cast<long>(state.planned.size()) -
                         static_cast<long>(accepted_of[worst]);
      HTUNE_ASSIGN_OR_RETURN(
          const int achieved,
          RepriceTo(market, *problem.groups[state.group].curve, state,
                    accepted_of[worst], 1));
      planned_total += static_cast<long>(achieved) * slots - worst_future;
      state.floored = true;
      report.degraded = true;
      report.floor_repetitions += static_cast<int>(slots);
    }

    // Straggler pass.
    for (size_t i = 0; i < tasks.size(); ++i) {
      TaskState& state = tasks[i];
      if (state.done || state.floored) continue;
      if (slot_open_since[i] < 0.0) continue;  // processing: no wait
      HTUNE_ASSIGN_OR_RETURN(const int price, market.CurrentPrice(state.id));
      const double effective_rate = adjusted.groups[state.group].curve->Rate(
          static_cast<double>(price));
      if (now - slot_open_since[i] <= quantile_factor / effective_rate) {
        continue;
      }
      ++report.stragglers;
      if (state.escalations_this_slot >= config_.max_reposts) {
        continue;  // retries exhausted for this slot; let it ride
      }
      const size_t accepted = accepted_of[i];
      const long slots =
          static_cast<long>(state.planned.size()) - static_cast<long>(accepted);
      if (slots <= 0) continue;
      const long task_future = FutureCost(state, accepted);
      const int proposed = std::max(
          price + 1,
          static_cast<int>(
              std::ceil(config_.price_escalation * static_cast<double>(price))));
      // Raising every remaining slot of this task to q keeps the job within
      // budget iff planned_total - task_future + slots * q <= budget.
      const long cap = (budget - planned_total + task_future) / slots;
      const int target =
          static_cast<int>(std::min<long>(proposed, cap));
      const PriceRateCurve& believed = *problem.groups[state.group].curve;
      if (target > price) {
        HTUNE_ASSIGN_OR_RETURN(
            const int achieved,
            RepriceTo(market, believed, state, accepted, target));
        planned_total += static_cast<long>(achieved) * slots - task_future;
        ++report.escalations;
        ++state.escalations_this_slot;
      } else {
        // Budget exhausted: no raise is affordable, so this straggler's
        // remaining repetitions ride at the prices already planned — the
        // floor of what the budget allows. The job still finishes; the
        // report carries the partial-quality flag.
        state.floored = true;
        report.degraded = true;
        report.floor_repetitions += static_cast<int>(slots);
      }
    }
  }

  if (market.OpenTaskCount() > 0) {
    HTUNE_RETURN_IF_ERROR(market.RunToCompletion());
  }

  report.answers.reserve(tasks.size());
  double last_completion = start;
  for (const TaskState& state : tasks) {
    HTUNE_ASSIGN_OR_RETURN(const TaskOutcome outcome,
                           market.GetOutcome(state.id));
    std::vector<int> answers;
    answers.reserve(outcome.repetitions.size());
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      answers.push_back(rep.answer);
    }
    report.answers.push_back(std::move(answers));
    report.abandoned_attempts += outcome.abandoned_attempts;
    report.expired_posts += outcome.expired_posts;
    last_completion = std::max(last_completion, outcome.completed_time);
  }
  report.latency = last_completion - start;
  report.spent = market.TotalSpent() - spent_before;
  return report;
}

}  // namespace htune
