#include "control/fault_tolerant_executor.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "control/market_metrics.h"
#include "durability/ledger.h"
#include "model/latency_cache.h"
#include "obs/obs.h"
#include "durability/serialize.h"
#include "durability/snapshot.h"
#include "tuning/allocation.h"

namespace htune {

namespace {

Status CheckFinitePositive(double value, std::string_view name) {
  if (std::isnan(value)) {
    return InvalidArgumentError("FaultTolerantConfig: " + std::string(name) +
                                " is NaN");
  }
  if (!std::isfinite(value) || value <= 0.0) {
    return InvalidArgumentError("FaultTolerantConfig: " + std::string(name) +
                                " must be positive and finite, got " +
                                std::to_string(value));
  }
  return OkStatus();
}

}  // namespace

Status ValidateFaultTolerantConfig(const FaultTolerantConfig& config) {
  HTUNE_RETURN_IF_ERROR(
      CheckFinitePositive(config.review_interval, "review_interval"));
  if (config.max_reviews < 0) {
    return InvalidArgumentError(
        "FaultTolerantConfig: max_reviews must be >= 0, got " +
        std::to_string(config.max_reviews));
  }
  if (std::isnan(config.straggler_quantile) ||
      config.straggler_quantile <= 0.0 || config.straggler_quantile >= 1.0) {
    return InvalidArgumentError(
        "FaultTolerantConfig: straggler_quantile must lie strictly inside "
        "(0, 1), got " +
        std::to_string(config.straggler_quantile));
  }
  if (config.max_reposts < 0) {
    return InvalidArgumentError(
        "FaultTolerantConfig: max_reposts must be >= 0, got " +
        std::to_string(config.max_reposts));
  }
  if (std::isnan(config.price_escalation)) {
    return InvalidArgumentError(
        "FaultTolerantConfig: price_escalation is NaN");
  }
  if (!std::isfinite(config.price_escalation) ||
      config.price_escalation <= 1.0) {
    return InvalidArgumentError(
        "FaultTolerantConfig: price_escalation must be finite and > 1, got " +
        std::to_string(config.price_escalation));
  }
  if (config.budget < 0) {
    return InvalidArgumentError(
        "FaultTolerantConfig: budget (spend ceiling) must be >= 0, got " +
        std::to_string(config.budget));
  }
  if (std::isnan(config.acceptance_timeout) ||
      !std::isfinite(config.acceptance_timeout) ||
      config.acceptance_timeout < 0.0) {
    return InvalidArgumentError(
        "FaultTolerantConfig: acceptance_timeout must be >= 0 and finite, "
        "got " +
        std::to_string(config.acceptance_timeout));
  }
  if (std::isnan(config.abandonment.prob) || config.abandonment.prob < 0.0 ||
      config.abandonment.prob >= 1.0) {
    return InvalidArgumentError(
        "FaultTolerantConfig: abandonment.prob must lie in [0, 1) — at "
        "prob == 1 every acceptance is abandoned, so the expected hold "
        "chain never ends and no finite effective rate exists; got " +
        std::to_string(config.abandonment.prob));
  }
  if (config.abandonment.prob > 0.0 &&
      !(config.abandonment.hold_rate > 0.0 &&
        std::isfinite(config.abandonment.hold_rate))) {
    return InvalidArgumentError(
        "FaultTolerantConfig: abandonment.hold_rate must be positive and "
        "finite when abandonment.prob > 0, got " +
        std::to_string(config.abandonment.hold_rate));
  }
  HTUNE_RETURN_IF_ERROR(ValidateRetryPolicy(config.market_retry));
  HTUNE_RETURN_IF_ERROR(ValidateCircuitBreakerConfig(config.breaker));
  if (std::isnan(config.time_deadline) ||
      !std::isfinite(config.time_deadline) || config.time_deadline < 0.0) {
    return InvalidArgumentError(
        "FaultTolerantConfig: time_deadline must be >= 0 and finite, got " +
        std::to_string(config.time_deadline));
  }
  return OkStatus();
}

FaultTolerantExecutor::FaultTolerantExecutor(const BudgetAllocator* allocator,
                                             FaultTolerantConfig config)
    : allocator_(allocator), config_(config) {
  HTUNE_CHECK(allocator != nullptr);
}

namespace {

/// Executor-side view of one posted task.
struct TaskState {
  TaskId id = 0;
  size_t group = 0;
  /// Planned payment of every repetition slot; escalations and floor
  /// demotions rewrite the not-yet-accepted suffix.
  std::vector<int> planned;
  /// Escalations applied to the slot that was current when
  /// `counter_completed` repetitions had completed (bounded retries).
  int counter_completed = 0;
  int escalations_this_slot = 0;
  bool floored = false;
  bool done = false;
};

/// Loop-carried executor state. Everything a resumed run needs beyond the
/// market snapshot lives here (and in the BudgetLedger serialized alongside
/// it); `deadline` is stored rather than recomputed because repeated `+=`
/// accumulation is not bitwise equal to `start + n * interval`, and recovery
/// promises bitwise identity.
struct ExecState {
  std::vector<TaskState> tasks;
  long budget = 0;
  double start = 0.0;
  long spent_before = 0;
  double deadline = 0.0;
  int next_review = 0;
  // Report counters accumulated across crash/recover cycles.
  int reviews = 0;
  int stragglers = 0;
  int escalations = 0;
  int floor_repetitions = 0;
  bool degraded = false;
  /// False until the initial allocation has been posted (not serialized:
  /// restoring a snapshot implies it).
  bool initialized = false;  // HTUNE_TRANSIENT: implied true by decode
};

std::string EncodeExecutorState(const ExecState& state,
                                const BudgetLedger& ledger) {
  Encoder encoder;
  encoder.PutI64(state.budget);
  encoder.PutDouble(state.start);
  encoder.PutI64(state.spent_before);
  encoder.PutDouble(state.deadline);
  encoder.PutI32(state.next_review);
  encoder.PutI32(state.reviews);
  encoder.PutI32(state.stragglers);
  encoder.PutI32(state.escalations);
  encoder.PutI32(state.floor_repetitions);
  encoder.PutBool(state.degraded);
  encoder.PutU64(state.tasks.size());
  for (const TaskState& task : state.tasks) {
    encoder.PutU64(task.id);
    encoder.PutU64(task.group);
    encoder.PutI32Vector(task.planned);
    encoder.PutI32(task.counter_completed);
    encoder.PutI32(task.escalations_this_slot);
    encoder.PutBool(task.floored);
    encoder.PutBool(task.done);
  }
  encoder.PutString(ledger.Encode());
  return std::move(encoder).Release();
}

Status DecodeExecutorState(std::string_view bytes, ExecState& state,
                           BudgetLedger& ledger) {
  Decoder decoder(bytes);
  int64_t budget = 0;
  int64_t spent_before = 0;
  HTUNE_RETURN_IF_ERROR(decoder.GetI64(&budget));
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&state.start));
  HTUNE_RETURN_IF_ERROR(decoder.GetI64(&spent_before));
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&state.deadline));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&state.next_review));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&state.reviews));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&state.stragglers));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&state.escalations));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&state.floor_repetitions));
  HTUNE_RETURN_IF_ERROR(decoder.GetBool(&state.degraded));
  state.budget = static_cast<long>(budget);
  state.spent_before = static_cast<long>(spent_before);
  uint64_t task_count = 0;
  HTUNE_RETURN_IF_ERROR(decoder.GetU64(&task_count));
  if (task_count > decoder.remaining()) {
    return InvalidArgumentError(
        "executor snapshot: task count exceeds input size");
  }
  state.tasks.clear();
  state.tasks.reserve(static_cast<size_t>(task_count));
  for (uint64_t i = 0; i < task_count; ++i) {
    TaskState task;
    uint64_t group = 0;
    HTUNE_RETURN_IF_ERROR(decoder.GetU64(&task.id));
    HTUNE_RETURN_IF_ERROR(decoder.GetU64(&group));
    HTUNE_RETURN_IF_ERROR(decoder.GetI32Vector(&task.planned));
    HTUNE_RETURN_IF_ERROR(decoder.GetI32(&task.counter_completed));
    HTUNE_RETURN_IF_ERROR(decoder.GetI32(&task.escalations_this_slot));
    HTUNE_RETURN_IF_ERROR(decoder.GetBool(&task.floored));
    HTUNE_RETURN_IF_ERROR(decoder.GetBool(&task.done));
    task.group = static_cast<size_t>(group);
    state.tasks.push_back(std::move(task));
  }
  std::string ledger_bytes;
  HTUNE_RETURN_IF_ERROR(decoder.GetString(&ledger_bytes));
  HTUNE_RETURN_IF_ERROR(decoder.ExpectDone());
  HTUNE_ASSIGN_OR_RETURN(ledger, BudgetLedger::Decode(ledger_bytes));
  state.initialized = true;
  return OkStatus();
}

int CompletedRepetitions(const TaskOutcome& progress) {
  int completed = 0;
  for (const RepetitionOutcome& rep : progress.repetitions) {
    if (rep.completed_time > 0.0) ++completed;
  }
  return completed;
}

/// Cost of the not-yet-accepted slots ([accepted, end) of the plan).
long FutureCost(const TaskState& state, size_t accepted) {
  long cost = 0;
  for (size_t j = accepted; j < state.planned.size(); ++j) {
    cost += state.planned[j];
  }
  return cost;
}

/// Reprices `state`'s open task to `target`, clamping down while the market
/// refuses a rate above its arrival capacity (as AdaptiveRetuner). On
/// success the achieved price is written into the plan's unaccepted suffix
/// and, when `ctx` journals the run, a kReprice record is emitted.
StatusOr<int> RepriceTo(MarketSimulator& market, const PriceRateCurve& curve,
                        TaskState& state, size_t accepted, int target,
                        DurableContext* ctx) {
  HTUNE_OBS_COUNTER_ADD("executor.reprices", 1);
  int attempt = target;
  Status status =
      market.Reprice(state.id, attempt,
                     curve.Rate(static_cast<double>(attempt)));
  while (!status.ok() && status.code() == StatusCode::kFailedPrecondition &&
         attempt > 1) {
    --attempt;
    status = market.Reprice(state.id, attempt,
                            curve.Rate(static_cast<double>(attempt)));
  }
  HTUNE_RETURN_IF_ERROR(status);
  for (size_t j = accepted; j < state.planned.size(); ++j) {
    state.planned[j] = attempt;
  }
  if (ctx != nullptr) {
    Encoder record;
    record.PutU64(state.id);
    record.PutI32(attempt);
    record.PutI64(static_cast<int64_t>(state.planned.size()) -
                  static_cast<int64_t>(accepted));
    HTUNE_RETURN_IF_ERROR(
        ctx->Emit(JournalRecordType::kReprice, record.bytes()));
  }
  return attempt;
}

/// Journals and ledgers the payments for every completed-but-unpaid slot of
/// one task (slots are paid in order; the ledger knows the next unpaid one).
Status SettlePayments(DurableContext& ctx, BudgetLedger& ledger,
                      const TaskState& state, const TaskOutcome& progress,
                      int completed) {
  for (int slot = ledger.PaymentsFor(state.id); slot < completed; ++slot) {
    const int price = progress.repetitions[static_cast<size_t>(slot)].price;
    Encoder record;
    record.PutU64(state.id);
    record.PutI32(slot);
    record.PutI32(price);
    HTUNE_RETURN_IF_ERROR(
        ctx.Emit(JournalRecordType::kPayment, record.bytes()));
    HTUNE_ASSIGN_OR_RETURN(const bool fresh,
                           ledger.RecordPayment(state.id, slot, price));
    (void)fresh;
  }
  return OkStatus();
}

Status EmitCompletion(DurableContext& ctx, const TaskOutcome& outcome) {
  Encoder record;
  record.PutU64(outcome.id);
  record.PutDouble(outcome.completed_time);
  return ctx.Emit(JournalRecordType::kCompletion, record.bytes());
}

/// Per-run resilience state for the market transport: the circuit breaker
/// and the deterministic jitter stream behind `Clear`. With no fault gate
/// installed every call is a free pass and none of this machinery runs, so
/// production configs pay nothing.
class MarketResilience {
 public:
  explicit MarketResilience(const FaultTolerantConfig& config)
      : config_(&config),
        jitter_(config.resilience_seed),
        breaker_(config.breaker) {}

  /// Clears the market transport for operation `op` at simulated time
  /// `now`. Outcomes:
  ///   OK, *admitted = true   — transport is up (possibly after retries);
  ///                            run the real market call;
  ///   OK, *admitted = false  — breaker is open: short-circuited without
  ///                            touching the fault schedule; the caller
  ///                            decides whether the op is skippable;
  ///   kUnavailable           — a transient fault outlasted the whole retry
  ///                            budget (the caller parks or skips);
  ///   other error            — the gate failed permanently.
  Status Clear(double now, std::string_view op, bool* admitted) {
    *admitted = true;
    if (!config_->market_fault_gate) {
      return OkStatus();
    }
    bool open = false;
    const Status status = RetryTransient(
        config_->market_retry, jitter_, [&]() -> Status {
          if (!breaker_.AllowRequest(now)) {
            open = true;
            return OkStatus();  // short-circuit: ends the retry loop
          }
          const Status gated = config_->market_fault_gate(op);
          if (gated.ok()) {
            breaker_.RecordSuccess(now);
          } else if (IsTransient(gated)) {
            breaker_.RecordFailure(now);
          }
          return gated;
        });
    if (open) {
      *admitted = false;
      return OkStatus();
    }
    if (IsTransient(status)) {
      HTUNE_OBS_COUNTER_ADD("resilience.market_retries_exhausted", 1);
    }
    return status;
  }

 private:
  const FaultTolerantConfig* config_;
  SplitMix64 jitter_;
  CircuitBreaker breaker_;
};

/// The closed loop shared by Run and RunDurable. When `ctx` is null the run
/// is not journaled (`ledger` is then unused and may be null); `state` is
/// either fresh (tasks get allocated and posted here) or restored from a
/// snapshot (posting is skipped and the loop resumes mid-run).
StatusOr<FaultTolerantReport> RunJob(
    const BudgetAllocator& allocator, const FaultTolerantConfig& config,
    MarketSimulator& market, const TuningProblem& problem,
    const std::vector<QuestionSpec>& questions, DurableContext* ctx,
    BudgetLedger* ledger, ExecState& state) {
  HTUNE_RETURN_IF_ERROR(ValidateProblem(problem));
  if (questions.size() != static_cast<size_t>(problem.TotalTasks())) {
    return InvalidArgumentError(
        "FaultTolerantExecutor: need one question per atomic task");
  }

  // Allocate against the abandonment-corrected problem so the initial prices
  // already account for wasted attempts.
  const TuningProblem adjusted =
      ProblemWithAbandonment(problem, config.abandonment);

  MarketResilience resilience(config);

  if (!state.initialized) {
    state.budget = config.budget > 0 ? config.budget : problem.budget;
    HTUNE_OBS_SPAN("executor.allocate");
    HTUNE_ASSIGN_OR_RETURN(const Allocation initial,
                           allocator.Allocate(adjusted));
    long initial_cost = 0;
    for (const GroupAllocation& g : initial.groups) {
      for (const std::vector<int>& prices : g.prices) {
        for (int price : prices) initial_cost += price;
      }
    }
    if (initial_cost > state.budget) {
      return InvalidArgumentError(
          "FaultTolerantExecutor: initial allocation costs " +
          std::to_string(initial_cost) + " but the budget is " +
          std::to_string(state.budget));
    }

    state.start = market.now();
    state.spent_before = market.TotalSpent();
    state.deadline = state.start;
    if (ctx != nullptr) {
      Encoder record;
      record.PutI64(state.budget);
      record.PutU64(questions.size());
      HTUNE_RETURN_IF_ERROR(
          ctx->Emit(JournalRecordType::kRunStart, record.bytes()));
    }

    // Post everything under the initial allocation. Rates sent to the market
    // are the requester's belief about the raw (pre-abandonment) curve; the
    // market applies abandonment itself.
    state.tasks.reserve(questions.size());
    size_t question_index = 0;
    for (size_t g = 0; g < problem.groups.size(); ++g) {
      const TaskGroup& group = problem.groups[g];
      for (int t = 0; t < group.num_tasks; ++t, ++question_index) {
        const std::vector<int>& prices = initial.groups[g].prices[t];
        TaskSpec spec;
        spec.repetitions = group.repetitions;
        spec.processing_rate = group.processing_rate;
        spec.per_repetition_prices = prices;
        spec.per_repetition_rates.reserve(prices.size());
        for (int price : prices) {
          spec.per_repetition_rates.push_back(
              group.curve->Rate(static_cast<double>(price)));
        }
        spec.acceptance_timeout = config.acceptance_timeout;
        spec.true_answer = questions[question_index].true_answer;
        spec.num_options = questions[question_index].num_options;
        // Posting is mandatory: a breaker-open short-circuit here is a
        // transport outage the job cannot degrade around, so it parks.
        bool admitted = true;
        HTUNE_RETURN_IF_ERROR(
            resilience.Clear(market.now(), "post", &admitted));
        if (!admitted) {
          return UnavailableError(
              "market transport unavailable (circuit open) while posting "
              "the initial allocation");
        }
        HTUNE_ASSIGN_OR_RETURN(const TaskId id, market.PostTask(spec));
        TaskState task;
        task.id = id;
        task.group = g;
        task.planned = prices;
        if (ctx != nullptr) {
          Encoder record;
          record.PutU64(id);
          record.PutU64(g);
          record.PutI32Vector(prices);
          HTUNE_RETURN_IF_ERROR(
              ctx->Emit(JournalRecordType::kPost, record.bytes()));
        }
        state.tasks.push_back(std::move(task));
      }
    }
    state.initialized = true;
  } else if (state.tasks.size() != questions.size()) {
    return InvalidArgumentError(
        "FaultTolerantExecutor: recovered state has " +
        std::to_string(state.tasks.size()) + " tasks but the problem has " +
        std::to_string(questions.size()));
  }

  const long budget = state.budget;
  const double quantile_factor = -std::log(1.0 - config.straggler_quantile);
  // The completion deadline is recomputed from config + run start rather
  // than serialized: the check sits at the loop top, before any state
  // mutation, and market.now() at iteration entry is identical for the
  // original and any resumed run, so recovery reproduces the same cut.
  const Deadline deadline = config.time_deadline > 0.0
                                ? Deadline::At(state.start +
                                               config.time_deadline)
                                : Deadline::Infinite();
  bool deadline_expired = false;
  for (int review = state.next_review; review < config.max_reviews;
       ++review) {
    if (!deadline.Check(market.now(), "FaultTolerantExecutor review loop")
             .ok()) {
      // Past the deadline: stop escalating (no new spend) and ride the
      // open tasks to completion below at the terms they already have.
      deadline_expired = true;
      break;
    }
    state.next_review = review + 1;
    state.deadline += config.review_interval;
    {
      HTUNE_OBS_SPAN("market.run_until");
      if (market.RunUntil(state.deadline) == 0) {
        break;
      }
    }
    ++state.reviews;
    HTUNE_OBS_SPAN("executor.review");
    HTUNE_OBS_COUNTER_ADD("executor.reviews", 1);
    const double now = market.now();
    const long spent = market.TotalSpent() - state.spent_before;

    // Accounting pass: what the job is already committed to pay (spent plus
    // in-flight promises) and what the current plan would add. Durable runs
    // settle newly completed repetitions into the ledger here, before the
    // done-check, so a task is never marked done with unpaid slots.
    long committed = spent;
    long future = 0;
    std::vector<size_t> accepted_of(state.tasks.size(), 0);
    // Time the currently exposed slot first became available (the previous
    // answer's completion, or the post); < 0 when the task is processing.
    // Abandon/expiry reposts do NOT reset this clock — unlike OnHoldSince —
    // so churn accumulates into a detectable straggler wait.
    std::vector<double> slot_open_since(state.tasks.size(), -1.0);
    for (size_t i = 0; i < state.tasks.size(); ++i) {
      TaskState& task = state.tasks[i];
      if (task.done) continue;
      HTUNE_ASSIGN_OR_RETURN(const TaskOutcome* progress_view,
                             market.GetProgressView(task.id));
      const TaskOutcome& progress = *progress_view;
      const int completed = CompletedRepetitions(progress);
      if (ctx != nullptr) {
        HTUNE_RETURN_IF_ERROR(
            SettlePayments(*ctx, *ledger, task, progress, completed));
      }
      if (progress.completed_time > 0.0) {
        if (ctx != nullptr) {
          HTUNE_RETURN_IF_ERROR(EmitCompletion(*ctx, progress));
        }
        task.done = true;
        continue;
      }
      if (completed != task.counter_completed) {
        task.counter_completed = completed;
        task.escalations_this_slot = 0;
      }
      const size_t accepted = progress.repetitions.size();
      accepted_of[i] = accepted;
      if (static_cast<int>(accepted) > completed) {
        committed += progress.repetitions.back().price;  // in flight
      } else {
        slot_open_since[i] = progress.repetitions.empty()
                                 ? progress.posted_time
                                 : progress.repetitions.back().completed_time;
      }
      future += FutureCost(task, accepted);
    }
    long planned_total = committed + future;

    // Budget-exhaustion pass: the plan can exceed the ceiling when the
    // configured budget is below the initial allocation's assumption (e.g. a
    // mid-course budget cut between runs) — demote the costliest plans to
    // floor price until the job fits again, and flag partial quality.
    while (planned_total > budget) {
      size_t worst = state.tasks.size();
      long worst_future = 0;
      for (size_t i = 0; i < state.tasks.size(); ++i) {
        if (state.tasks[i].done || state.tasks[i].floored) continue;
        const long task_future = FutureCost(state.tasks[i], accepted_of[i]);
        if (task_future > worst_future) {
          worst_future = task_future;
          worst = i;
        }
      }
      if (worst == state.tasks.size()) break;  // only in-flight promises
      TaskState& task = state.tasks[worst];
      const long slots = static_cast<long>(task.planned.size()) -
                         static_cast<long>(accepted_of[worst]);
      // Demotions protect the spend ceiling, so they are mandatory: a
      // transport outage here parks the run rather than risking overspend.
      bool demote_admitted = true;
      HTUNE_RETURN_IF_ERROR(
          resilience.Clear(now, "reprice.demote", &demote_admitted));
      if (!demote_admitted) {
        return UnavailableError(
            "market transport unavailable (circuit open) during a "
            "mandatory budget demotion");
      }
      HTUNE_ASSIGN_OR_RETURN(
          const int achieved,
          RepriceTo(market, *problem.groups[task.group].curve, task,
                    accepted_of[worst], 1, ctx));
      planned_total += static_cast<long>(achieved) * slots - worst_future;
      task.floored = true;
      state.degraded = true;
      state.floor_repetitions += static_cast<int>(slots);
      HTUNE_OBS_COUNTER_ADD("executor.floor_demotions", 1);
    }

    // Straggler pass.
    for (size_t i = 0; i < state.tasks.size(); ++i) {
      TaskState& task = state.tasks[i];
      if (task.done || task.floored) continue;
      if (slot_open_since[i] < 0.0) continue;  // processing: no wait
      HTUNE_ASSIGN_OR_RETURN(const int price, market.CurrentPrice(task.id));
      const double effective_rate = adjusted.groups[task.group].curve->Rate(
          static_cast<double>(price));
      if (now - slot_open_since[i] <= quantile_factor / effective_rate) {
        continue;
      }
      ++state.stragglers;
      HTUNE_OBS_COUNTER_ADD("executor.stragglers", 1);
      if (task.escalations_this_slot >= config.max_reposts) {
        HTUNE_OBS_COUNTER_ADD("executor.retries_exhausted", 1);
        continue;  // retries exhausted for this slot; let it ride
      }
      const size_t accepted = accepted_of[i];
      const long slots =
          static_cast<long>(task.planned.size()) - static_cast<long>(accepted);
      if (slots <= 0) continue;
      const long task_future = FutureCost(task, accepted);
      const int proposed = std::max(
          price + 1,
          static_cast<int>(
              std::ceil(config.price_escalation * static_cast<double>(price))));
      // Raising every remaining slot of this task to q keeps the job within
      // budget iff planned_total - task_future + slots * q <= budget.
      const long cap = (budget - planned_total + task_future) / slots;
      const int target =
          static_cast<int>(std::min<long>(proposed, cap));
      const PriceRateCurve& believed = *problem.groups[task.group].curve;
      if (target > price) {
        // Escalations are optional spend: when the breaker is open or the
        // transport stays down through the whole retry budget, skip the
        // raise — the slot rides at its current price (floor-price mode)
        // and is reconsidered at the next review.
        bool escalate_admitted = true;
        const Status cleared =
            resilience.Clear(now, "reprice.escalate", &escalate_admitted);
        if (!cleared.ok() && !IsTransient(cleared)) {
          return cleared;
        }
        if (!cleared.ok() || !escalate_admitted) {
          HTUNE_OBS_COUNTER_ADD("resilience.skipped_escalations", 1);
          continue;
        }
        HTUNE_ASSIGN_OR_RETURN(
            const int achieved,
            RepriceTo(market, believed, task, accepted, target, ctx));
        planned_total += static_cast<long>(achieved) * slots - task_future;
        ++state.escalations;
        ++task.escalations_this_slot;
        HTUNE_OBS_COUNTER_ADD("executor.escalations", 1);
      } else {
        // Budget exhausted: no raise is affordable, so this straggler's
        // remaining repetitions ride at the prices already planned — the
        // floor of what the budget allows. The job still finishes; the
        // report carries the partial-quality flag.
        task.floored = true;
        state.degraded = true;
        state.floor_repetitions += static_cast<int>(slots);
      }
    }

    if (ctx != nullptr) {
      Encoder record;
      record.PutI32(review);
      record.PutDouble(now);
      record.PutI64(market.TotalSpent() - state.spent_before);
      HTUNE_RETURN_IF_ERROR(
          ctx->Emit(JournalRecordType::kReviewEnd, record.bytes()));
      if (ctx->ShouldSnapshot(state.reviews) && !ctx->replaying()) {
        HTUNE_ASSIGN_OR_RETURN(const MarketState market_state,
                               market.CaptureState({}));
        HTUNE_RETURN_IF_ERROR(
            ctx->EmitSnapshot(EncodeMarketState(market_state),
                              EncodeExecutorState(state, *ledger)));
      }
    }
  }

  if (market.OpenTaskCount() > 0) {
    HTUNE_RETURN_IF_ERROR(market.RunToCompletion());
  }

  FaultTolerantReport report;
  report.answers.reserve(state.tasks.size());
  double last_completion = state.start;
  for (TaskState& task : state.tasks) {
    HTUNE_ASSIGN_OR_RETURN(const TaskOutcome* outcome_view,
                           market.GetOutcomeView(task.id));
    const TaskOutcome& outcome = *outcome_view;
    if (ctx != nullptr) {
      // Final settlement: repetitions that finished after the last review
      // (or after the loop broke) are paid and completed here, exactly once.
      HTUNE_RETURN_IF_ERROR(SettlePayments(
          *ctx, *ledger, task, outcome,
          static_cast<int>(outcome.repetitions.size())));
      if (!task.done) {
        HTUNE_RETURN_IF_ERROR(EmitCompletion(*ctx, outcome));
        task.done = true;
      }
    }
    std::vector<int> answers;
    answers.reserve(outcome.repetitions.size());
    for (const RepetitionOutcome& rep : outcome.repetitions) {
      answers.push_back(rep.answer);
    }
    report.answers.push_back(std::move(answers));
    report.abandoned_attempts += outcome.abandoned_attempts;
    report.expired_posts += outcome.expired_posts;
    last_completion = std::max(last_completion, outcome.completed_time);
  }
  report.latency = last_completion - state.start;
  report.spent = market.TotalSpent() - state.spent_before;
  HTUNE_OBS_GAUGE_SET("executor.spent", static_cast<double>(report.spent));
  HTUNE_OBS_GAUGE_SET("executor.latency", report.latency);
  PublishMarketMetrics(market);
  GlobalLatencyCache().PublishToMetrics();
  report.reviews = state.reviews;
  report.stragglers = state.stragglers;
  report.escalations = state.escalations;
  report.floor_repetitions = state.floor_repetitions;
  report.degraded = state.degraded;
  report.deadline_expired = deadline_expired;

  if (ctx != nullptr) {
    Encoder record;
    record.PutI64(report.spent);
    record.PutDouble(report.latency);
    HTUNE_RETURN_IF_ERROR(
        ctx->Emit(JournalRecordType::kRunEnd, record.bytes()));
    if (ledger->TotalPaid() != report.spent) {
      return InternalError(
          "FaultTolerantExecutor: ledger total " +
          std::to_string(ledger->TotalPaid()) +
          " != market spend " + std::to_string(report.spent) +
          " -- a payment was lost or double-counted");
    }
    HTUNE_RETURN_IF_ERROR(ctx->Flush());
  }
  return report;
}

}  // namespace

StatusOr<FaultTolerantReport> FaultTolerantExecutor::Run(
    MarketSimulator& market, const TuningProblem& problem,
    const std::vector<QuestionSpec>& questions) const {
  HTUNE_RETURN_IF_ERROR(ValidateFaultTolerantConfig(config_));
  ExecState state;
  return RunJob(*allocator_, config_, market, problem, questions,
                /*ctx=*/nullptr, /*ledger=*/nullptr, state);
}

StatusOr<FaultTolerantReport> FaultTolerantExecutor::RunDurable(
    const MarketConfig& market_config, const TuningProblem& problem,
    const std::vector<QuestionSpec>& questions,
    const DurabilityConfig& durability,
    std::vector<TraceEvent>* final_trace) const {
  HTUNE_RETURN_IF_ERROR(ValidateFaultTolerantConfig(config_));
  HTUNE_ASSIGN_OR_RETURN(DurableContext ctx, DurableContext::Open(durability));
  MarketSimulator market(market_config);
  ExecState state;
  BudgetLedger ledger;
  if (ctx.has_snapshot()) {
    HTUNE_ASSIGN_OR_RETURN(const MarketState market_state,
                           DecodeMarketState(ctx.market_snapshot()));
    HTUNE_RETURN_IF_ERROR(market.RestoreState(market_state, {}));
    HTUNE_RETURN_IF_ERROR(
        DecodeExecutorState(ctx.executor_snapshot(), state, ledger));
  }
  StatusOr<FaultTolerantReport> result = RunJob(
      *allocator_, config_, market, problem, questions, &ctx, &ledger, state);
  if (!result.ok() && IsTransient(result.status())) {
    // Checkpoint-and-park: a transient fault outlasted its retry budget.
    // Every decision up to the fault is journaled, so this is not a crash —
    // the caller reruns RunDurable with the same storage once the fault
    // clears and the run resumes exactly like crash recovery.
    HTUNE_OBS_COUNTER_ADD("resilience.parks", 1);
    // Best-effort flush so the parked journal is durable; a failure here
    // leaves recovery no worse off (appends already reached storage).
    (void)ctx.Flush();
    return Status(StatusCode::kUnavailable,
                  "parked: " + result.status().message() +
                      " -- the journal holds every decision up to the "
                      "fault; rerun RunDurable with the same storage to "
                      "resume");
  }
  HTUNE_RETURN_IF_ERROR(result.status());
  if (final_trace != nullptr) {
    *final_trace = market.trace();
  }
  return std::move(result).value();
}

}  // namespace htune
