#ifndef HTUNE_CONTROL_FAULT_TOLERANT_EXECUTOR_H_
#define HTUNE_CONTROL_FAULT_TOLERANT_EXECUTOR_H_

#include <vector>

#include "common/statusor.h"
#include "crowddb/types.h"
#include "durability/recovery.h"
#include "market/events.h"
#include "market/simulator.h"
#include "model/latency_model.h"
#include "resilience/circuit_breaker.h"
#include "resilience/policy.h"
#include "tuning/allocator.h"
#include "tuning/problem.h"

namespace htune {

/// Knobs for the fault-tolerant execution loop.
struct FaultTolerantConfig {
  /// Simulated time between straggler reviews.
  double review_interval = 0.25;
  /// Hard cap on review rounds; the job is run to completion afterwards.
  int max_reviews = 100000;
  /// A repetition is a straggler when its current on-hold wait exceeds this
  /// quantile of the modeled (abandonment-corrected) acceptance
  /// distribution: threshold = -ln(1 - q) / lambda_eff.
  double straggler_quantile = 0.95;
  /// Bounded retries: escalations applied to any one repetition slot.
  int max_reposts = 4;
  /// Multiplicative price raise per repost (reverse backoff); each repost
  /// pays max(p + 1, ceil(p * price_escalation)), capped by the remaining
  /// budget.
  double price_escalation = 1.5;
  /// Total spend ceiling covering the initial allocation plus every
  /// escalation. 0 means the problem's own budget — which leaves no
  /// escalation headroom, since allocators spend the full problem budget;
  /// callers normally allocate against a reduced problem budget and put the
  /// real ceiling here.
  long budget = 0;
  /// Acceptance window stamped on every posted repetition (TaskSpec::
  /// acceptance_timeout); 0 leaves expiry to the market default (never).
  double acceptance_timeout = 0.0;
  /// The executor's belief about worker abandonment. Applied internally: the
  /// initial allocation is solved against ProblemWithAbandonment(problem,
  /// abandonment) and straggler thresholds use the corrected rates, so
  /// callers pass the raw (uncorrected) problem.
  AbandonmentModel abandonment;
  /// Retry policy for market-side operations (posting, repricing) when a
  /// fault gate is installed: transient (kUnavailable) gate failures are
  /// retried with jittered exponential backoff before the operation is
  /// given up on. Unused when `market_fault_gate` is empty — the simulated
  /// market itself never fails transiently.
  RetryPolicy market_retry;
  /// Circuit breaker over the market transport. Consecutive transient
  /// failures past the threshold open the breaker; while open, *optional*
  /// operations (straggler escalations) are skipped — the job rides at
  /// current terms, the floor-price degradation mode — and *mandatory*
  /// operations (initial posting, budget demotions) fail with kUnavailable,
  /// which RunDurable turns into checkpoint-and-park. Only consulted when a
  /// fault gate is installed.
  CircuitBreakerConfig breaker;
  /// Completion deadline in simulated seconds from the run's start; once the
  /// market clock passes it the review loop stops escalating (no new spend)
  /// and the job runs to completion at current terms, with
  /// `FaultTolerantReport::deadline_expired` set. 0 disables.
  double time_deadline = 0.0;
  /// Seeds the deterministic backoff jitter stream for market retries.
  uint64_t resilience_seed = 0x6d61726b6574ULL;  // "market"
  /// Chaos-test seam: consulted before every market post/reprice (see
  /// resilience/policy.h). Leave empty in production — with no gate the
  /// retry/breaker machinery is bypassed entirely and behavior is bitwise
  /// identical to a config without resilience fields.
  ///
  /// Durable runs require a *bounded* gate (FaultInjectorConfig::
  /// max_consecutive_faults < market_retry.max_attempts): faults then heal
  /// inside the retry loop and never alter journaled decisions, so recovery
  /// replays bitwise even though the gate's draw stream realigns. An
  /// unbounded gate can skip escalations, which is fine for Run but makes a
  /// mid-run snapshot resume diverge from the original decision sequence.
  FaultGate market_fault_gate;
};

/// Validates every FaultTolerantConfig knob, returning InvalidArgument with
/// a descriptive message on the first violation: non-positive, NaN, or
/// infinite review intervals and escalation factors, quantiles outside
/// (0, 1), negative retry caps, spend ceilings, or timeouts, plus the
/// embedded retry policy (ValidateRetryPolicy), breaker config
/// (ValidateCircuitBreakerConfig), and time_deadline (>= 0, finite). Run
/// and RunDurable call it before touching the market; callers constructing
/// configs from untrusted job specs can call it directly.
Status ValidateFaultTolerantConfig(const FaultTolerantConfig& config);

/// Outcome of one fault-tolerant job execution.
struct FaultTolerantReport {
  /// Wall-clock latency of the whole job.
  double latency = 0.0;
  /// Payment units spent (never exceeds the configured budget).
  long spent = 0;
  /// Review rounds held.
  int reviews = 0;
  /// Straggler detections (a slot may be detected repeatedly).
  int stragglers = 0;
  /// Price escalations actually applied.
  int escalations = 0;
  /// Accepted attempts that workers abandoned, summed over tasks.
  int abandoned_attempts = 0;
  /// Acceptance-window expiries, summed over tasks.
  int expired_posts = 0;
  /// True when the budget ran out: some repetitions finished at the floor
  /// of what the budget allowed instead of being escalated — the
  /// partial-quality signal.
  bool degraded = false;
  /// Repetitions that rode out budget exhaustion at floor terms: stragglers
  /// no raise was affordable for, plus any plans demoted to floor price
  /// because the ceiling was below the initial allocation's assumption.
  int floor_repetitions = 0;
  /// True when the configured time_deadline passed before the review loop
  /// finished: escalation stopped early and the job rode to completion at
  /// the terms it already had.
  bool deadline_expired = false;
  /// answers[q] holds the repetitions' answers for question q, flattened
  /// group-major like ExecuteJob.
  std::vector<std::vector<int>> answers;
};

/// Closed-loop executor that finishes a tuned job on a faulty market.
///
/// The static pipeline posts once and waits; a single straggling repetition
/// — a worker who abandoned the HIT, an outage window with no arrivals —
/// then dominates the job's latency (the E[max] in Lemma 3 is driven by the
/// slowest task). FaultTolerantExecutor posts the initial allocation, then
/// periodically:
///  1. detects stragglers: an exposed repetition whose current wait exceeds
///     the straggler_quantile of its modeled acceptance distribution
///     (abandonment-corrected via EffectiveOnHoldRate);
///  2. reposts them at escalated terms — Reprice acts as cancel + repost by
///     memorylessness — raising the price multiplicatively with bounded
///     retries per slot, spending only headroom the budget still has;
///  3. degrades gracefully: when no raise is affordable, the straggler
///     rides out the job at the prices the budget already covers, and when
///     the ceiling sits below what the plan assumed, the costliest plans
///     are demoted to floor price until the job fits — either way the
///     report is flagged `degraded` instead of the job failing.
class FaultTolerantExecutor {
 public:
  /// `allocator` is borrowed and must outlive the executor.
  FaultTolerantExecutor(const BudgetAllocator* allocator,
                        FaultTolerantConfig config);

  /// Runs `problem` on `market` with one question per atomic task
  /// (group-major order, as ExecuteJob). Returns InvalidArgument on shape
  /// errors or when the initial allocation already exceeds the configured
  /// budget, and propagates market/allocator failures.
  StatusOr<FaultTolerantReport> Run(
      MarketSimulator& market, const TuningProblem& problem,
      const std::vector<QuestionSpec>& questions) const;

  /// Durable variant: the same closed loop, journaled through
  /// `durability.storage` so a killed run can resume. Unlike `Run` it owns
  /// the market — a fresh `MarketSimulator(market_config)` when the journal
  /// is empty, or one restored from the newest intact snapshot — because
  /// recovery must rebuild the market the crashed process lost. Every
  /// controller decision and observed market event is journaled; snapshots
  /// every `durability.snapshot_interval` reviews bound replay time.
  ///
  /// Calling RunDurable again with the same storage, config, problem, and
  /// market_config after a crash resumes the run: the journal tail past the
  /// snapshot is verified bitwise against re-execution (Internal on
  /// divergence), payments are settled exactly once across any number of
  /// crash/recover cycles, and the final report is bitwise identical to an
  /// uninterrupted run's. Storage failures (including injected crashes)
  /// propagate out as the simulated kill.
  ///
  /// A *transient* failure that survives its whole retry budget does not
  /// crash the run either: RunDurable returns kUnavailable with a
  /// "parked: ..." message. The journal is intact and flushed up to the
  /// last good record, so the run resumes — exactly like crash recovery —
  /// by calling RunDurable again with the same storage once the fault
  /// clears (checkpoint-and-park, the last rung of the degradation ladder).
  ///
  /// `final_trace`, when non-null, receives the market's event trace for
  /// post-run comparison.
  StatusOr<FaultTolerantReport> RunDurable(
      const MarketConfig& market_config, const TuningProblem& problem,
      const std::vector<QuestionSpec>& questions,
      const DurabilityConfig& durability,
      std::vector<TraceEvent>* final_trace = nullptr) const;

 private:
  const BudgetAllocator* allocator_;
  FaultTolerantConfig config_;
};

}  // namespace htune

#endif  // HTUNE_CONTROL_FAULT_TOLERANT_EXECUTOR_H_
