#ifndef HTUNE_CONTROL_ADAPTIVE_RETUNER_H_
#define HTUNE_CONTROL_ADAPTIVE_RETUNER_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "crowddb/types.h"
#include "durability/recovery.h"
#include "market/events.h"
#include "model/price_rate_curve.h"
#include "market/simulator.h"
#include "tuning/allocator.h"
#include "tuning/problem.h"

namespace htune {

/// Knobs for the online re-tuning loop.
struct RetunerConfig {
  /// Simulated time between reviews.
  double review_interval = 1.0;
  /// Hard cap on review rounds; the job is run to completion afterwards.
  int max_reviews = 10000;
  /// Acceptance events a group must accumulate before its rate estimate is
  /// trusted.
  int min_observations = 5;
  /// Exponential blending weight of the fresh scale estimate against the
  /// running one (1.0 = always jump to the new estimate).
  double smoothing = 0.5;
  /// Relative scale drift below which no repricing is triggered.
  double retune_threshold = 0.10;
  /// Simulation-only hook: the market's real price-responsiveness per
  /// problem group. When non-empty (one entry per group, entries may be
  /// null to fall back to the market default), each posted task carries its
  /// group's true curve so different task types can drift differently from
  /// the requester's belief.
  std::vector<std::shared_ptr<const PriceRateCurve>> market_truth_per_group;
};

/// Outcome of an adaptively tuned job execution.
struct RetunerReport {
  /// Wall-clock latency of the whole job.
  double latency = 0.0;
  /// Payment units spent.
  long spent = 0;
  /// Review rounds that actually retuned prices.
  int retunes = 0;
  /// Review rounds held.
  int reviews = 0;
  /// Final multiplicative correction applied to each group's assumed curve
  /// (1.0 = the prior calibration was already right).
  std::vector<double> final_scale;
  /// Final per-repetition price per group.
  std::vector<int> final_prices;
};

/// Closed-loop execution of a tuned job (§3.3's "real-time technique to
/// infer parameters for tuning strategies", turned into a controller).
///
/// The static pipeline trusts the calibrated price-rate curve once; if the
/// market has drifted (daily cycles, demographic shifts), the allocation is
/// built on wrong rates. AdaptiveRetuner posts the initial allocation and
/// then periodically:
///  1. re-estimates each group's true on-hold rates from the acceptance
///     events observed so far — a censored maximum-likelihood estimate of
///     the multiplicative scale s between the real market and the assumed
///     curve (events / accumulated assumed-rate exposure);
///  2. re-solves the remaining problem (open repetitions, remaining
///     budget) against the rescaled curve with the wrapped allocator;
///  3. reprices the open tasks in place.
///
/// The market must own a `true_curve` (it defines what the requester's
/// price buys); the problem's curves encode the requester's — possibly
/// stale — belief.
class AdaptiveRetuner {
 public:
  /// `allocator` is borrowed and must outlive the retuner.
  AdaptiveRetuner(const BudgetAllocator* allocator, RetunerConfig config);

  /// Runs `problem` on `market` with one question per atomic task
  /// (group-major order, as ExecuteJob). Returns InvalidArgument on shape
  /// errors and propagates market/allocator failures.
  StatusOr<RetunerReport> Run(MarketSimulator& market,
                              const TuningProblem& problem,
                              const std::vector<QuestionSpec>& questions) const;

  /// Durable variant: the same loop journaled through `durability.storage`,
  /// owning the market (fresh from `market_config`, or restored from the
  /// newest intact snapshot) so a killed run resumes where it crashed. See
  /// FaultTolerantExecutor::RunDurable for the recovery contract — bitwise
  /// replay verification, exactly-once payments, identical final report.
  /// Snapshots serialize curve references as indices into
  /// `market_truth_per_group`, so recovery must be configured with the same
  /// curves.
  StatusOr<RetunerReport> RunDurable(
      const MarketConfig& market_config, const TuningProblem& problem,
      const std::vector<QuestionSpec>& questions,
      const DurabilityConfig& durability,
      std::vector<TraceEvent>* final_trace = nullptr) const;

 private:
  const BudgetAllocator* allocator_;
  RetunerConfig config_;
};

}  // namespace htune

#endif  // HTUNE_CONTROL_ADAPTIVE_RETUNER_H_
