#ifndef HTUNE_CONTROL_MARKET_METRICS_H_
#define HTUNE_CONTROL_MARKET_METRICS_H_

#include "market/simulator.h"

namespace htune {

/// Mirrors `market`'s cumulative dispatch counts into the obs gauges
/// "market.*". The market layer itself stays free of any observability
/// dependency (it keeps plain counters; see MarketEventCounts), so
/// controllers and the CLI call this at phase boundaries — end of a run,
/// before a metrics export. Gauges, not counters: the counts are already
/// cumulative per simulator, so re-publishing must overwrite, not add.
void PublishMarketMetrics(const MarketSimulator& market);

}  // namespace htune

#endif  // HTUNE_CONTROL_MARKET_METRICS_H_
