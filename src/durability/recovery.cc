#include "durability/recovery.h"

#include <string>
#include <utility>

#include "common/status.h"
#include "durability/serialize.h"
#include "obs/obs.h"

namespace htune {

StatusOr<DurableContext> DurableContext::Open(const DurabilityConfig& config) {
  if (config.storage == nullptr) {
    return InvalidArgumentError("DurableContext: storage must be non-null");
  }
  if (config.snapshot_interval < 0) {
    return InvalidArgumentError(
        "DurableContext: snapshot_interval must be >= 0");
  }
  HTUNE_RETURN_IF_ERROR(ValidateRetryPolicy(config.journal_retry));
  HTUNE_OBS_SPAN("journal.recovery_open");
  HTUNE_ASSIGN_OR_RETURN(JournalContents contents,
                         OpenJournal(*config.storage));
  DurableContext context(config.storage, contents.valid_bytes,
                         config.snapshot_interval);
  if (config.journal_retry.max_attempts > 1) {
    context.writer_.EnableRetry(config.journal_retry, config.retry_seed);
  }
  // Newest intact snapshot wins; everything after it is the verify tail.
  size_t tail_begin = 0;
  for (size_t i = contents.records.size(); i > 0; --i) {
    if (contents.records[i - 1].type == JournalRecordType::kSnapshot) {
      HTUNE_RETURN_IF_ERROR(DecodeSnapshotPayload(
          contents.records[i - 1].payload, &context.market_snapshot_,
          &context.executor_snapshot_));
      context.has_snapshot_ = true;
      tail_begin = i;
      break;
    }
  }
  context.tail_.assign(
      std::make_move_iterator(contents.records.begin() + tail_begin),
      std::make_move_iterator(contents.records.end()));
  HTUNE_OBS_COUNTER_ADD("journal.recovered_tail_records",
                        context.tail_.size());
  HTUNE_OBS_COUNTER_ADD("journal.recovered_snapshots",
                        context.has_snapshot_ ? 1 : 0);
  return context;
}

Status DurableContext::Emit(JournalRecordType type, std::string_view payload) {
  if (replaying()) {
    const JournalRecord& expected = tail_[replay_cursor_];
    if (expected.type != type || expected.payload != payload) {
      return InternalError(
          "journal divergence during replay at tail record " +
          std::to_string(replay_cursor_) + ": journaled " +
          std::string(JournalRecordTypeToString(expected.type)) + " (" +
          std::to_string(expected.payload.size()) +
          " bytes), re-execution produced " +
          std::string(JournalRecordTypeToString(type)) + " (" +
          std::to_string(payload.size()) +
          " bytes) -- recovery did not reproduce the original run");
    }
    ++replay_cursor_;
    HTUNE_OBS_COUNTER_ADD("journal.replayed_records", 1);
    return OkStatus();
  }
  return writer_.Append(type, payload);
}

Status DurableContext::EmitSnapshot(std::string_view market_state,
                                    std::string_view executor_state) {
  HTUNE_OBS_SPAN("journal.snapshot");
  HTUNE_OBS_COUNTER_ADD("journal.snapshots_emitted", 1);
  Encoder encoder;
  encoder.PutString(market_state);
  encoder.PutString(executor_state);
  return Emit(JournalRecordType::kSnapshot, std::move(encoder).Release());
}

Status DurableContext::DecodeSnapshotPayload(std::string_view payload,
                                             std::string* market_state,
                                             std::string* executor_state) {
  Decoder decoder(payload);
  HTUNE_RETURN_IF_ERROR(decoder.GetString(market_state));
  HTUNE_RETURN_IF_ERROR(decoder.GetString(executor_state));
  return decoder.ExpectDone();
}

}  // namespace htune
