#ifndef HTUNE_DURABILITY_MANIFEST_H_
#define HTUNE_DURABILITY_MANIFEST_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "durability/journal.h"
#include "resilience/policy.h"

namespace htune {

/// Fleet manifest: the durable record of every job a FleetSupervisor owns.
///
/// The manifest is itself a CRC-framed append-only log with the same frame
/// layout as the per-job journals (u32 LE length | u8 type | payload |
/// u32 LE CRC-32C over length+type+payload) under its own magic/version so
/// the two file kinds can never be confused:
///
///   header:  "HTFM" magic (4 bytes) + u32 LE format version
///   kJob:    one record per submitted job, written exactly once, before
///            the job's journal is created — losing the tail of the
///            manifest therefore implies the lost jobs have no journal,
///            and an orphan journal (present on disk, absent from the
///            manifest) is proof of a truncated manifest tail.
///   kState:  lifecycle transitions, append-only; the newest record for a
///            job id wins. Each carries the restart count and the job's
///            durable journal high-water mark, which is how recovery
///            detects a journal that regressed (bit flip, truncation below
///            what was known durable) and quarantines instead of silently
///            replaying a self-healed prefix.
///
/// Reading tolerates a torn tail exactly like the journal scanner: the
/// valid prefix wins, the tail is truncated. State records naming an
/// unknown job id are reported (not fatal): they can only arise from a
/// manifest that lost its kJob record to corruption ahead of the tail.
inline constexpr std::string_view kManifestMagic = "HTFM";
inline constexpr uint32_t kManifestVersion = 1;

/// Manifest record types. On-disk values (tools/journal_inspect.py mirrors
/// them); append only, never renumber.
enum class ManifestRecordType : uint8_t {
  /// Job admitted: full spec, written once at Submit.
  kJob = 1,
  /// Lifecycle transition: {job id, state, restarts, journal mark, detail}.
  kState = 2,
};

/// Lifecycle states a fleet job moves through. On-disk values; append only.
enum class FleetJobState : uint8_t {
  /// Admitted, waiting for a worker lane.
  kPending = 0,
  /// A worker lane is (or was, if the process died) executing the job.
  kRunning = 1,
  /// Stopped without a result but resumable: watchdog-declared hang,
  /// restart budget exhausted, fleet breaker open, or a checkpoint-park
  /// from the controller itself.
  kParked = 2,
  /// Poisoned: divergent replay, failed CRC validation, or a journal that
  /// regressed below its durable mark. Never restarted automatically.
  kQuarantined = 3,
  /// Completed with a bitwise-verified report.
  kDone = 4,
  /// Shed by admission control before ever running.
  kShed = 5,
};

std::string_view FleetJobStateToString(FleetJobState state);

/// Which durable controller drives a job.
enum class FleetController : uint8_t {
  kFaultTolerant = 0,
  kAdaptiveRetuner = 1,
};

/// Everything needed to (re)build a job's configs from the manifest alone:
/// recovery must not depend on any in-memory state from the run that died.
struct FleetJobSpec {
  /// Human-readable job name (unique-ness not required; ids are identity).
  std::string name;
  /// Higher runs first; ties broken by job id (submission order).
  int priority = 0;
  /// Verbatim job-spec text (src/spec parser input), embedded so a fleet
  /// directory is self-contained and recovery cannot read a newer edited
  /// spec file than the one the journal was written under.
  std::string spec_text;
  /// Budget ceiling override; <0 keeps the spec's own budget.
  int64_t ceiling = -1;
  /// Seed override; <0 keeps the spec's seed.
  int64_t seed_override = -1;
  /// Snapshot cadence for the job's DurabilityConfig.
  int32_t snapshot_interval = 8;
  FleetController controller = FleetController::kFaultTolerant;
};

/// Current view of one job after folding all manifest records.
struct ManifestJobEntry {
  uint64_t job_id = 0;
  FleetJobSpec spec;
  FleetJobState state = FleetJobState::kPending;
  /// Completed restart attempts (0 on the first run).
  int32_t restarts = 0;
  /// Durable journal high-water mark in bytes at the last transition.
  uint64_t journal_bytes = 0;
  /// Free-form diagnostic from the last transition (quarantine reason,
  /// park reason, completion digest).
  std::string detail;
};

std::string EncodeManifestJobPayload(uint64_t job_id, const FleetJobSpec& spec);
std::string EncodeManifestStatePayload(uint64_t job_id, FleetJobState state,
                                       int32_t restarts, uint64_t journal_bytes,
                                       std::string_view detail);
Status DecodeManifestJobPayload(std::string_view payload, uint64_t* job_id,
                                FleetJobSpec* spec);
Status DecodeManifestStatePayload(std::string_view payload, uint64_t* job_id,
                                  FleetJobState* state, int32_t* restarts,
                                  uint64_t* journal_bytes, std::string* detail);

/// Result of scanning manifest bytes.
struct ManifestContents {
  uint32_t version = kManifestVersion;
  /// Folded per-job view, keyed by job id (ordered: iteration order is the
  /// recovery order, which must be deterministic).
  std::map<uint64_t, ManifestJobEntry> jobs;
  /// State records whose job id had no preceding kJob record; evidence of
  /// corruption ahead of the valid tail. Recorded, never fatal.
  std::vector<uint64_t> unknown_state_ids;
  uint64_t valid_bytes = 0;
  bool truncated_tail = false;
};

/// Scans raw manifest bytes. Same torn-tail contract as ScanJournal: a
/// corrupt or torn record ends the valid prefix; only a wrong magic or
/// unsupported version is an error.
StatusOr<ManifestContents> ScanManifest(std::string_view bytes);

/// Append-side handle over a manifest storage. All writes go through the
/// journal frame codec with retry-and-repair on transient failures,
/// mirroring JournalWriter.
class FleetManifest {
 public:
  /// Loads and scans `storage`, truncating any torn tail so appends resume
  /// at a record boundary. `storage` is borrowed and must outlive the
  /// manifest.
  static StatusOr<FleetManifest> Open(JournalStorage* storage);

  /// Turns on retry-on-transient for appends. Call before the first write.
  void EnableRetry(const RetryPolicy& policy, uint64_t jitter_seed);

  /// Durably records a new job. Flushes before returning so a journal is
  /// never created for a job the manifest does not know.
  Status AppendJob(uint64_t job_id, const FleetJobSpec& spec);
  /// Durably records a lifecycle transition.
  Status AppendState(uint64_t job_id, FleetJobState state, int32_t restarts,
                     uint64_t journal_bytes, std::string_view detail);
  Status Flush();

  const std::map<uint64_t, ManifestJobEntry>& jobs() const { return jobs_; }
  const std::vector<uint64_t>& unknown_state_ids() const {
    return unknown_state_ids_;
  }
  /// Smallest id strictly greater than every recorded job's.
  uint64_t next_job_id() const { return next_job_id_; }
  /// Bytes known to be durably framed (header + whole records).
  uint64_t valid_bytes() const { return valid_bytes_; }

  /// Re-encodes the folded state as a fresh manifest byte stream: one kJob
  /// plus one kState record per job, in id order. Rotation writes this via
  /// AtomicReplaceFile to bound manifest growth.
  std::string EncodeCompacted() const;

 private:
  explicit FleetManifest(JournalStorage* storage) : storage_(storage) {}

  /// Appends one framed record, writing the manifest header first on a
  /// fresh stream, with retry-and-repair (truncate back to valid_bytes_)
  /// on transient storage failures.
  Status AppendRecord(ManifestRecordType type, std::string_view payload);
  Status AppendBytes(std::string_view bytes);

  JournalStorage* storage_;
  uint64_t valid_bytes_ = 0;
  bool header_written_ = false;
  bool retry_enabled_ = false;
  RetryPolicy retry_policy_;
  SplitMix64 jitter_{0};
  std::map<uint64_t, ManifestJobEntry> jobs_;
  std::vector<uint64_t> unknown_state_ids_;
  uint64_t next_job_id_ = 1;
};

/// Canonical file layout of a fleet directory: the manifest at its root and
/// one journal per job under jobs/.
std::string FleetManifestFileName();
std::string FleetJobJournalPath(uint64_t job_id);

/// Compacts a file-backed manifest in place: scan, re-encode folded state,
/// and replace the file via the write-temp -> fsync -> rename -> fsync-dir
/// sequence (AtomicReplaceFile). A crash at any step leaves either the old
/// or the new manifest fully intact.
Status RotateManifestFile(const std::string& path);

}  // namespace htune

#endif  // HTUNE_DURABILITY_MANIFEST_H_
