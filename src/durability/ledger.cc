#include "durability/ledger.h"

#include "durability/serialize.h"

namespace htune {

StatusOr<bool> BudgetLedger::RecordPayment(TaskId task, int slot, int price) {
  if (slot < 0 || price < 1) {
    return InvalidArgumentError("ledger: slot must be >= 0 and price >= 1");
  }
  std::vector<int>& slots = payments_[task];
  const size_t index = static_cast<size_t>(slot);
  if (index < slots.size()) {
    if (slots[index] != price) {
      return InternalError(
          "ledger: double payment with conflicting terms for task " +
          std::to_string(task) + " slot " + std::to_string(slot) + ": " +
          std::to_string(slots[index]) + " vs " + std::to_string(price));
    }
    return false;  // idempotent replay
  }
  if (index != slots.size()) {
    return InternalError("ledger: payment for task " + std::to_string(task) +
                         " skips from slot " + std::to_string(slots.size()) +
                         " to " + std::to_string(slot));
  }
  slots.push_back(price);
  return true;
}

int BudgetLedger::PaymentsFor(TaskId task) const {
  const auto it = payments_.find(task);
  return it == payments_.end() ? 0 : static_cast<int>(it->second.size());
}

long BudgetLedger::TotalPaid() const {
  long total = 0;
  for (const auto& [task, slots] : payments_) {
    for (const int price : slots) total += price;
  }
  return total;
}

size_t BudgetLedger::Entries() const {
  size_t entries = 0;
  for (const auto& [task, slots] : payments_) {
    entries += slots.size();
  }
  return entries;
}

std::string BudgetLedger::Encode() const {
  Encoder enc;
  enc.PutU64(payments_.size());
  for (const auto& [task, slots] : payments_) {
    enc.PutU64(task);
    enc.PutI32Vector(slots);
  }
  return enc.Release();
}

StatusOr<BudgetLedger> BudgetLedger::Decode(std::string_view bytes) {
  Decoder dec(bytes);
  uint64_t tasks = 0;
  HTUNE_RETURN_IF_ERROR(dec.GetU64(&tasks));
  if (tasks > dec.remaining() / 8) {
    return InvalidArgumentError("ledger: task count exceeds input");
  }
  BudgetLedger ledger;
  TaskId previous = 0;
  for (uint64_t i = 0; i < tasks; ++i) {
    TaskId task = 0;
    std::vector<int> slots;
    HTUNE_RETURN_IF_ERROR(dec.GetU64(&task));
    HTUNE_RETURN_IF_ERROR(dec.GetI32Vector(&slots));
    if (i > 0 && task <= previous) {
      return InvalidArgumentError("ledger: task ids out of order");
    }
    previous = task;
    for (const int price : slots) {
      if (price < 1) {
        return InvalidArgumentError("ledger: non-positive price");
      }
    }
    ledger.payments_.emplace(task, std::move(slots));
  }
  HTUNE_RETURN_IF_ERROR(dec.ExpectDone());
  return ledger;
}

}  // namespace htune
