#ifndef HTUNE_DURABILITY_RECOVERY_H_
#define HTUNE_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "durability/journal.h"

namespace htune {

/// Turns a controller run durable. `storage` is borrowed and must outlive
/// the run. When null, durability is off and the controller behaves exactly
/// as before (no journal, no snapshots).
struct DurabilityConfig {
  JournalStorage* storage = nullptr;
  /// Snapshot every N completed reviews (0 disables snapshots; recovery
  /// then always replays from the start). Snapshots bound replay time;
  /// between them the journal alone carries the run forward.
  int snapshot_interval = 8;
  /// Retry-on-transient for journal appends/flushes (see JournalWriter::
  /// EnableRetry): kUnavailable storage blips are retried with jittered
  /// exponential backoff and torn-tail repair. The default policy is inert
  /// for permanent errors, so crash injection and real I/O failures still
  /// kill the run. max_attempts = 1 disables retry outright.
  RetryPolicy journal_retry;
  /// Seeds the deterministic backoff jitter stream.
  uint64_t retry_seed = 0x6a6f75726e616cULL;  // "journal"
};

/// Recovery and journaling context for one durable controller run.
///
/// The recovery model is replay-by-re-execution: the controller and market
/// are deterministic given their state, so recovery restores the last
/// snapshot (or the initial state when there is none) and simply re-runs.
/// The journal tail past the snapshot is not applied — it is *verified*:
/// while `replaying()` is true, `Emit` compares each re-emitted record
/// bitwise against the journaled one and fails with Internal on any
/// divergence, which turns "recovery produced a different run" from a
/// silent wrong answer into a hard error. Once the tail is exhausted the
/// context switches to append mode and new records extend the journal.
///
/// A torn or corrupted tail was already truncated by `Open` (CRC framing,
/// see journal.h), so the tail verified here is exactly the prefix of
/// history that provably survived the crash.
class DurableContext {
 public:
  /// Opens (or creates) the journal in `config.storage`, truncating any torn
  /// tail, recovering the last intact snapshot, and queueing the records
  /// after it for replay verification. `config.storage` must be non-null.
  static StatusOr<DurableContext> Open(const DurabilityConfig& config);

  /// True when a snapshot was recovered; the accessors below then hold its
  /// two blobs (EncodeMarketState bytes and the controller's own state).
  bool has_snapshot() const { return has_snapshot_; }
  const std::string& market_snapshot() const { return market_snapshot_; }
  const std::string& executor_snapshot() const { return executor_snapshot_; }

  /// True while journaled records remain to be verified against.
  bool replaying() const { return replay_cursor_ < tail_.size(); }

  /// Journals one controller decision or market event. In replay mode this
  /// verifies instead of writing (see class comment); in append mode it
  /// appends the framed record to storage. Propagates storage failures —
  /// for CrashInjectingStorage that status is the simulated kill, and the
  /// controller must abort the run with it.
  Status Emit(JournalRecordType type, std::string_view payload);

  /// Journals a checkpoint: the pair of state blobs framed as one kSnapshot
  /// record. Later `Open`s recover from the newest intact one.
  Status EmitSnapshot(std::string_view market_state,
                      std::string_view executor_state);

  /// Whether the controller should snapshot after completing review number
  /// `review` (1-based count of completed reviews).
  bool ShouldSnapshot(int review) const {
    return snapshot_interval_ > 0 && review > 0 &&
           review % snapshot_interval_ == 0;
  }

  Status Flush() { return writer_.Flush(); }

  /// Decodes a kSnapshot payload into its two blobs.
  static Status DecodeSnapshotPayload(std::string_view payload,
                                      std::string* market_state,
                                      std::string* executor_state);

 private:
  DurableContext(JournalStorage* storage, uint64_t valid_bytes,
                 int snapshot_interval)
      : writer_(storage, valid_bytes), snapshot_interval_(snapshot_interval) {}

  JournalWriter writer_;
  int snapshot_interval_;
  bool has_snapshot_ = false;
  std::string market_snapshot_;
  std::string executor_snapshot_;
  /// Records after the recovered snapshot (the whole journal when no
  /// snapshot), pending bitwise verification.
  std::vector<JournalRecord> tail_;
  size_t replay_cursor_ = 0;
};

}  // namespace htune

#endif  // HTUNE_DURABILITY_RECOVERY_H_
