#ifndef HTUNE_DURABILITY_LEDGER_H_
#define HTUNE_DURABILITY_LEDGER_H_

#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "market/events.h"

namespace htune {

/// Exactly-once payment accounting for a controller run. Each entry is one
/// paid repetition attempt, keyed (task, slot): abandoned attempts are
/// never paid (the market drops them), so the paid attempts of a task are
/// exactly slots 0..n-1 in completion order. The ledger is the arbiter the
/// crash harness checks — across any number of crash/recover cycles, every
/// attempt must be recorded exactly once and the total must equal the
/// market's spend delta.
class BudgetLedger {
 public:
  /// Records the payment of `price` for repetition slot `slot` of `task`.
  /// Returns true when the entry is new, false when the identical entry is
  /// already present (an idempotent re-record during replay). A conflicting
  /// price for an existing slot, or a slot that skips ahead of the
  /// sequential order, is an Internal error: it means an attempt would be
  /// paid twice under different terms or an attempt went missing.
  StatusOr<bool> RecordPayment(TaskId task, int slot, int price);

  /// Number of payments recorded for `task` (== the next unpaid slot).
  int PaymentsFor(TaskId task) const;

  /// Sum of every recorded payment.
  long TotalPaid() const;

  /// Total number of recorded payment entries.
  size_t Entries() const;

  /// Stable binary form for snapshots.
  std::string Encode() const;
  static StatusOr<BudgetLedger> Decode(std::string_view bytes);

 private:
  /// Per task, the price paid at each slot, in slot order.
  std::map<TaskId, std::vector<int>> payments_;
};

}  // namespace htune

#endif  // HTUNE_DURABILITY_LEDGER_H_
