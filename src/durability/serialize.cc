#include "durability/serialize.h"

#include <cstring>

namespace htune {

namespace {

// Serialize integers explicitly byte-by-byte so the on-disk format is
// little-endian regardless of host endianness.
template <typename T>
void AppendLe(std::string& out, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

template <typename T>
T ReadLe(const char* p) {
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void Encoder::PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
void Encoder::PutU32(uint32_t v) { AppendLe(bytes_, v); }
void Encoder::PutU64(uint64_t v) { AppendLe(bytes_, v); }

void Encoder::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(std::string_view v) {
  PutU64(v.size());
  bytes_.append(v.data(), v.size());
}

void Encoder::PutI32Vector(const std::vector<int>& v) {
  PutU64(v.size());
  for (const int x : v) PutI32(static_cast<int32_t>(x));
}

void Encoder::PutDoubleVector(const std::vector<double>& v) {
  PutU64(v.size());
  for (const double x : v) PutDouble(x);
}

Status Decoder::Take(size_t n, const char** out) {
  if (remaining() < n) {
    return InvalidArgumentError("decode: truncated input (need " +
                                std::to_string(n) + " bytes, have " +
                                std::to_string(remaining()) + ")");
  }
  *out = bytes_.data() + cursor_;
  cursor_ += n;
  return OkStatus();
}

Status Decoder::GetU8(uint8_t* v) {
  const char* p;
  HTUNE_RETURN_IF_ERROR(Take(1, &p));
  *v = static_cast<uint8_t>(*p);
  return OkStatus();
}

Status Decoder::GetU32(uint32_t* v) {
  const char* p;
  HTUNE_RETURN_IF_ERROR(Take(4, &p));
  *v = ReadLe<uint32_t>(p);
  return OkStatus();
}

Status Decoder::GetU64(uint64_t* v) {
  const char* p;
  HTUNE_RETURN_IF_ERROR(Take(8, &p));
  *v = ReadLe<uint64_t>(p);
  return OkStatus();
}

Status Decoder::GetI32(int32_t* v) {
  uint32_t u;
  HTUNE_RETURN_IF_ERROR(GetU32(&u));
  *v = static_cast<int32_t>(u);
  return OkStatus();
}

Status Decoder::GetI64(int64_t* v) {
  uint64_t u;
  HTUNE_RETURN_IF_ERROR(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return OkStatus();
}

Status Decoder::GetBool(bool* v) {
  uint8_t u;
  HTUNE_RETURN_IF_ERROR(GetU8(&u));
  if (u > 1) {
    return InvalidArgumentError("decode: bool byte out of range");
  }
  *v = u != 0;
  return OkStatus();
}

Status Decoder::GetDouble(double* v) {
  uint64_t bits;
  HTUNE_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return OkStatus();
}

Status Decoder::GetString(std::string* v) {
  uint64_t size;
  HTUNE_RETURN_IF_ERROR(GetU64(&size));
  if (size > remaining()) {
    return InvalidArgumentError("decode: string length exceeds input");
  }
  const char* p;
  HTUNE_RETURN_IF_ERROR(Take(static_cast<size_t>(size), &p));
  v->assign(p, static_cast<size_t>(size));
  return OkStatus();
}

Status Decoder::GetI32Vector(std::vector<int>* v) {
  uint64_t count;
  HTUNE_RETURN_IF_ERROR(GetU64(&count));
  if (count > remaining() / 4) {
    return InvalidArgumentError("decode: i32 vector count exceeds input");
  }
  v->clear();
  v->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    int32_t x;
    HTUNE_RETURN_IF_ERROR(GetI32(&x));
    v->push_back(static_cast<int>(x));
  }
  return OkStatus();
}

Status Decoder::GetDoubleVector(std::vector<double>* v) {
  uint64_t count;
  HTUNE_RETURN_IF_ERROR(GetU64(&count));
  if (count > remaining() / 8) {
    return InvalidArgumentError("decode: double vector count exceeds input");
  }
  v->clear();
  v->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    double x;
    HTUNE_RETURN_IF_ERROR(GetDouble(&x));
    v->push_back(x);
  }
  return OkStatus();
}

Status Decoder::ExpectDone() const {
  if (!Done()) {
    return InvalidArgumentError("decode: " + std::to_string(remaining()) +
                                " trailing bytes");
  }
  return OkStatus();
}

}  // namespace htune
