#ifndef HTUNE_DURABILITY_SNAPSHOT_H_
#define HTUNE_DURABILITY_SNAPSHOT_H_

#include <string>

#include "common/statusor.h"
#include "durability/serialize.h"
#include "market/simulator.h"

namespace htune {

/// Binary codec for MarketState (see market/simulator.h). The encoding is
/// deterministic — encoding equal states yields equal bytes — so snapshot
/// records can be compared bitwise during replay verification. Doubles are
/// stored as IEEE-754 bit patterns, making a decode(encode(s)) round trip
/// exact.
std::string EncodeMarketState(const MarketState& state);

/// Inverse of EncodeMarketState. Returns InvalidArgument on truncated or
/// structurally corrupt input (never crashes on hostile bytes); semantic
/// validation beyond shape (heap order, curve indices) happens in
/// MarketSimulator::RestoreState.
StatusOr<MarketState> DecodeMarketState(std::string_view bytes);

/// Sub-codecs shared with executor-state serialization.
void EncodeTraceEvents(const std::vector<TraceEvent>& events,
                       Encoder& encoder);
Status DecodeTraceEvents(Decoder& decoder, std::vector<TraceEvent>& events);
void EncodeTaskOutcome(const TaskOutcome& outcome, Encoder& encoder);
Status DecodeTaskOutcome(Decoder& decoder, TaskOutcome& outcome);

}  // namespace htune

#endif  // HTUNE_DURABILITY_SNAPSHOT_H_
