#ifndef HTUNE_DURABILITY_SNAPSHOT_H_
#define HTUNE_DURABILITY_SNAPSHOT_H_

#include <string>

#include "common/statusor.h"
#include "durability/serialize.h"
#include "market/simulator.h"

namespace htune {

/// Binary codec for MarketState (see market/simulator.h). The encoding is
/// deterministic — encoding equal states yields equal bytes — so snapshot
/// records can be compared bitwise during replay verification. Doubles are
/// stored as IEEE-754 bit patterns, making a decode(encode(s)) round trip
/// exact.
///
/// Writes format v2: an 8-byte magic (a NaN bit pattern no valid v1
/// snapshot can start with), a u32 version, then the state fields with the
/// pending events in canonical (time, sequence) order. Version 1 — the
/// original headerless format whose event section stored the binary heap's
/// backing array verbatim — is still decoded transparently.
std::string EncodeMarketState(const MarketState& state);

/// Encodes in the historical v1 format (no header, events in whatever
/// order `state.events` holds). Kept for compatibility tests that need to
/// fabricate pre-v2 journals; new snapshots always use v2.
std::string EncodeMarketStateLegacyV1(const MarketState& state);

/// Inverse of EncodeMarketState; accepts v1 and v2 bytes (sniffed via the
/// v2 magic). Returns InvalidArgument on truncated or structurally corrupt
/// input (never crashes on hostile bytes); semantic validation beyond shape
/// (id-space consistency, curve indices) happens in
/// MarketSimulator::RestoreState.
StatusOr<MarketState> DecodeMarketState(std::string_view bytes);

/// Sub-codecs shared with executor-state serialization.
void EncodeTraceEvents(const std::vector<TraceEvent>& events,
                       Encoder& encoder);
Status DecodeTraceEvents(Decoder& decoder, std::vector<TraceEvent>& events);
void EncodeTaskOutcome(const TaskOutcome& outcome, Encoder& encoder);
Status DecodeTaskOutcome(Decoder& decoder, TaskOutcome& outcome);

}  // namespace htune

#endif  // HTUNE_DURABILITY_SNAPSHOT_H_
