#include "durability/manifest.h"

#include <algorithm>
#include <utility>

#include "durability/crc32c.h"
#include "durability/serialize.h"
#include "obs/obs.h"

namespace htune {

namespace {

constexpr size_t kHeaderSize = 8;             // magic + version
constexpr size_t kFrameOverhead = 4 + 1 + 4;  // length + type + crc
// Same frame-walk guard as the journal scanner: a corrupted length field
// must not redirect the walk past the buffer or trigger a huge allocation.
constexpr uint32_t kMaxPayload = 1u << 30;

std::string EncodeManifestHeader() {
  std::string header(kManifestMagic);
  Encoder version;
  version.PutU32(kManifestVersion);
  header += version.bytes();
  return header;
}

// The manifest reuses the journal's frame codec byte-for-byte (u32 length |
// u8 type | payload | u32 crc over all three); only the record-type
// namespace differs, and the framing layer never interprets the type byte.
std::string EncodeManifestFrame(ManifestRecordType type,
                                std::string_view payload) {
  return EncodeJournalRecord(static_cast<JournalRecordType>(type), payload);
}

}  // namespace

std::string_view FleetJobStateToString(FleetJobState state) {
  switch (state) {
    case FleetJobState::kPending:
      return "PENDING";
    case FleetJobState::kRunning:
      return "RUNNING";
    case FleetJobState::kParked:
      return "PARKED";
    case FleetJobState::kQuarantined:
      return "QUARANTINED";
    case FleetJobState::kDone:
      return "DONE";
    case FleetJobState::kShed:
      return "SHED";
  }
  return "UNKNOWN";
}

std::string EncodeManifestJobPayload(uint64_t job_id,
                                     const FleetJobSpec& spec) {
  Encoder e;
  e.PutU64(job_id);
  e.PutString(spec.name);
  e.PutI32(spec.priority);
  e.PutString(spec.spec_text);
  e.PutI64(spec.ceiling);
  e.PutI64(spec.seed_override);
  e.PutI32(spec.snapshot_interval);
  e.PutU8(static_cast<uint8_t>(spec.controller));
  return e.Release();
}

std::string EncodeManifestStatePayload(uint64_t job_id, FleetJobState state,
                                       int32_t restarts,
                                       uint64_t journal_bytes,
                                       std::string_view detail) {
  Encoder e;
  e.PutU64(job_id);
  e.PutU8(static_cast<uint8_t>(state));
  e.PutI32(restarts);
  e.PutU64(journal_bytes);
  e.PutString(detail);
  return e.Release();
}

Status DecodeManifestJobPayload(std::string_view payload, uint64_t* job_id,
                                FleetJobSpec* spec) {
  Decoder d(payload);
  HTUNE_RETURN_IF_ERROR(d.GetU64(job_id));
  HTUNE_RETURN_IF_ERROR(d.GetString(&spec->name));
  HTUNE_RETURN_IF_ERROR(d.GetI32(&spec->priority));
  HTUNE_RETURN_IF_ERROR(d.GetString(&spec->spec_text));
  HTUNE_RETURN_IF_ERROR(d.GetI64(&spec->ceiling));
  HTUNE_RETURN_IF_ERROR(d.GetI64(&spec->seed_override));
  HTUNE_RETURN_IF_ERROR(d.GetI32(&spec->snapshot_interval));
  uint8_t controller = 0;
  HTUNE_RETURN_IF_ERROR(d.GetU8(&controller));
  if (controller > static_cast<uint8_t>(FleetController::kAdaptiveRetuner)) {
    return InvalidArgumentError("manifest: unknown controller kind " +
                                std::to_string(controller));
  }
  spec->controller = static_cast<FleetController>(controller);
  return d.ExpectDone();
}

Status DecodeManifestStatePayload(std::string_view payload, uint64_t* job_id,
                                  FleetJobState* state, int32_t* restarts,
                                  uint64_t* journal_bytes,
                                  std::string* detail) {
  Decoder d(payload);
  HTUNE_RETURN_IF_ERROR(d.GetU64(job_id));
  uint8_t raw_state = 0;
  HTUNE_RETURN_IF_ERROR(d.GetU8(&raw_state));
  if (raw_state > static_cast<uint8_t>(FleetJobState::kShed)) {
    return InvalidArgumentError("manifest: unknown lifecycle state " +
                                std::to_string(raw_state));
  }
  *state = static_cast<FleetJobState>(raw_state);
  HTUNE_RETURN_IF_ERROR(d.GetI32(restarts));
  HTUNE_RETURN_IF_ERROR(d.GetU64(journal_bytes));
  HTUNE_RETURN_IF_ERROR(d.GetString(detail));
  return d.ExpectDone();
}

StatusOr<ManifestContents> ScanManifest(std::string_view bytes) {
  ManifestContents contents;
  if (bytes.empty()) {
    return contents;  // fresh manifest
  }
  if (bytes.size() < kHeaderSize) {
    const size_t n = std::min(bytes.size(), kManifestMagic.size());
    if (bytes.substr(0, n) != kManifestMagic.substr(0, n)) {
      return InvalidArgumentError("manifest: not a manifest file (bad magic)");
    }
    contents.truncated_tail = true;
    return contents;
  }
  if (bytes.substr(0, kManifestMagic.size()) != kManifestMagic) {
    return InvalidArgumentError("manifest: not a manifest file (bad magic)");
  }
  {
    Decoder header(bytes.substr(kManifestMagic.size(), 4));
    uint32_t version = 0;
    HTUNE_RETURN_IF_ERROR(header.GetU32(&version));
    if (version != kManifestVersion) {
      return InvalidArgumentError("manifest: unsupported format version " +
                                  std::to_string(version));
    }
    contents.version = version;
  }
  contents.valid_bytes = kHeaderSize;

  size_t offset = kHeaderSize;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kFrameOverhead) {
      break;  // torn frame
    }
    Decoder prefix(bytes.substr(offset, 5));
    uint32_t length = 0;
    uint8_t type = 0;
    HTUNE_RETURN_IF_ERROR(prefix.GetU32(&length));
    HTUNE_RETURN_IF_ERROR(prefix.GetU8(&type));
    if (length > kMaxPayload || bytes.size() - offset - kFrameOverhead <
                                    static_cast<size_t>(length)) {
      break;  // corrupt length or torn payload
    }
    const std::string_view framed = bytes.substr(offset, 5 + length);
    Decoder footer(bytes.substr(offset + 5 + length, 4));
    uint32_t stored_crc = 0;
    HTUNE_RETURN_IF_ERROR(footer.GetU32(&stored_crc));
    if (Crc32c(framed) != stored_crc) {
      break;  // bit-flipped record
    }
    const std::string_view payload = framed.substr(5);
    if (type == static_cast<uint8_t>(ManifestRecordType::kJob)) {
      uint64_t job_id = 0;
      FleetJobSpec spec;
      if (!DecodeManifestJobPayload(payload, &job_id, &spec).ok()) {
        break;  // CRC-valid but undecodable: treat as end of trust
      }
      ManifestJobEntry& entry = contents.jobs[job_id];
      entry.job_id = job_id;
      entry.spec = std::move(spec);
    } else if (type == static_cast<uint8_t>(ManifestRecordType::kState)) {
      uint64_t job_id = 0;
      FleetJobState state = FleetJobState::kPending;
      int32_t restarts = 0;
      uint64_t journal_bytes = 0;
      std::string detail;
      if (!DecodeManifestStatePayload(payload, &job_id, &state, &restarts,
                                      &journal_bytes, &detail)
               .ok()) {
        break;
      }
      auto it = contents.jobs.find(job_id);
      if (it == contents.jobs.end()) {
        // A transition for a job the manifest never admitted: the kJob
        // record was lost to corruption ahead of this point. Recoverable
        // evidence, not a scan error — the caller decides what to do.
        contents.unknown_state_ids.push_back(job_id);
      } else {
        it->second.state = state;
        it->second.restarts = restarts;
        it->second.journal_bytes = journal_bytes;
        it->second.detail = std::move(detail);
      }
    } else {
      break;  // unknown record type: cannot trust anything after it
    }
    offset += 5 + length + 4;
    contents.valid_bytes = offset;
  }
  contents.truncated_tail = contents.valid_bytes < bytes.size();
  return contents;
}

StatusOr<FleetManifest> FleetManifest::Open(JournalStorage* storage) {
  HTUNE_ASSIGN_OR_RETURN(const std::string bytes, storage->Load());
  HTUNE_ASSIGN_OR_RETURN(ManifestContents contents, ScanManifest(bytes));
  if (contents.truncated_tail) {
    HTUNE_RETURN_IF_ERROR(storage->Truncate(contents.valid_bytes));
  }
  FleetManifest manifest(storage);
  manifest.valid_bytes_ = contents.valid_bytes;
  manifest.header_written_ = contents.valid_bytes > 0;
  manifest.jobs_ = std::move(contents.jobs);
  manifest.unknown_state_ids_ = std::move(contents.unknown_state_ids);
  if (!manifest.jobs_.empty()) {
    manifest.next_job_id_ = manifest.jobs_.rbegin()->first + 1;
  }
  return manifest;
}

void FleetManifest::EnableRetry(const RetryPolicy& policy,
                                uint64_t jitter_seed) {
  retry_enabled_ = true;
  retry_policy_ = policy;
  jitter_ = SplitMix64(jitter_seed);
}

Status FleetManifest::AppendBytes(std::string_view bytes) {
  if (!retry_enabled_) {
    HTUNE_RETURN_IF_ERROR(storage_->Append(bytes));
    valid_bytes_ += bytes.size();
    return OkStatus();
  }
  const Status status = RetryTransient(
      retry_policy_, jitter_,
      [&]() -> Status { return storage_->Append(bytes); },
      // Same repair as JournalWriter: a failed append may have persisted a
      // torn prefix, so drop back to the last known-good boundary first.
      [&]() -> Status {
        HTUNE_OBS_COUNTER_ADD("manifest.repairs", 1);
        return storage_->Truncate(valid_bytes_);
      });
  HTUNE_RETURN_IF_ERROR(status);
  valid_bytes_ += bytes.size();
  return OkStatus();
}

Status FleetManifest::AppendRecord(ManifestRecordType type,
                                   std::string_view payload) {
  if (!header_written_) {
    HTUNE_RETURN_IF_ERROR(AppendBytes(EncodeManifestHeader()));
    header_written_ = true;
  }
  HTUNE_OBS_COUNTER_ADD("manifest.appends", 1);
  return AppendBytes(EncodeManifestFrame(type, payload));
}

Status FleetManifest::AppendJob(uint64_t job_id, const FleetJobSpec& spec) {
  HTUNE_RETURN_IF_ERROR(AppendRecord(ManifestRecordType::kJob,
                                     EncodeManifestJobPayload(job_id, spec)));
  // Flush before the caller creates the job's journal: the invariant "a
  // journal exists only for jobs the manifest knows" is what lets recovery
  // classify an orphan journal as a truncated-manifest symptom.
  HTUNE_RETURN_IF_ERROR(Flush());
  ManifestJobEntry& entry = jobs_[job_id];
  entry.job_id = job_id;
  entry.spec = spec;
  next_job_id_ = std::max(next_job_id_, job_id + 1);
  return OkStatus();
}

Status FleetManifest::AppendState(uint64_t job_id, FleetJobState state,
                                  int32_t restarts, uint64_t journal_bytes,
                                  std::string_view detail) {
  HTUNE_RETURN_IF_ERROR(AppendRecord(
      ManifestRecordType::kState,
      EncodeManifestStatePayload(job_id, state, restarts, journal_bytes,
                                 detail)));
  auto it = jobs_.find(job_id);
  if (it != jobs_.end()) {
    it->second.state = state;
    it->second.restarts = restarts;
    it->second.journal_bytes = journal_bytes;
    it->second.detail = std::string(detail);
  }
  return OkStatus();
}

Status FleetManifest::Flush() {
  if (!retry_enabled_) {
    return storage_->Flush();
  }
  return RetryTransient(retry_policy_, jitter_,
                        [&]() -> Status { return storage_->Flush(); });
}

std::string FleetManifest::EncodeCompacted() const {
  std::string bytes = EncodeManifestHeader();
  for (const auto& [job_id, entry] : jobs_) {
    bytes += EncodeManifestFrame(ManifestRecordType::kJob,
                                 EncodeManifestJobPayload(job_id, entry.spec));
    bytes += EncodeManifestFrame(
        ManifestRecordType::kState,
        EncodeManifestStatePayload(job_id, entry.state, entry.restarts,
                                   entry.journal_bytes, entry.detail));
  }
  return bytes;
}

std::string FleetManifestFileName() { return "MANIFEST"; }

std::string FleetJobJournalPath(uint64_t job_id) {
  return "jobs/" + std::to_string(job_id) + ".journal";
}

Status RotateManifestFile(const std::string& path) {
  FileJournalStorage storage(path);
  HTUNE_ASSIGN_OR_RETURN(FleetManifest manifest, FleetManifest::Open(&storage));
  return AtomicReplaceFile(path, manifest.EncodeCompacted());
}

}  // namespace htune
