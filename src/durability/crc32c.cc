#include "durability/crc32c.h"

#include <array>

namespace htune {

namespace {

/// Reflected CRC-32C table for byte-at-a-time processing, built once at
/// first use (constant thereafter; thread-safe per C++11 static init).
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    constexpr uint32_t kPolyReflected = 0x82F63B78u;
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPolyReflected : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, std::string_view bytes) {
  const std::array<uint32_t, 256>& table = Crc32cTable();
  // Un-finalize, process, re-finalize: the running state is ~crc.
  uint32_t state = ~crc;
  for (const char c : bytes) {
    state = (state >> 8) ^ table[(state ^ static_cast<uint8_t>(c)) & 0xFFu];
  }
  return ~state;
}

uint32_t Crc32c(std::string_view bytes) { return ExtendCrc32c(0, bytes); }

}  // namespace htune
