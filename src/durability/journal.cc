#include "durability/journal.h"

#include <algorithm>
#include <cstdio>

#include <sys/stat.h>
#include <unistd.h>

#include "durability/crc32c.h"
#include "durability/serialize.h"
#include "obs/obs.h"

namespace htune {

namespace {

constexpr size_t kHeaderSize = 8;          // magic + version
constexpr size_t kFrameOverhead = 4 + 1 + 4;  // length + type + crc
// Guards the frame walk against a corrupted length field pointing far past
// the buffer; no legitimate record (even a snapshot of a large job) comes
// near this.
constexpr uint32_t kMaxPayload = 1u << 30;

std::string EncodeHeader() {
  std::string header(kJournalMagic);
  Encoder version;
  version.PutU32(kJournalVersion);
  header += version.bytes();
  return header;
}

}  // namespace

std::string_view JournalRecordTypeToString(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kRunStart:
      return "RUN_START";
    case JournalRecordType::kPost:
      return "POST";
    case JournalRecordType::kReprice:
      return "REPRICE";
    case JournalRecordType::kPayment:
      return "PAYMENT";
    case JournalRecordType::kCompletion:
      return "COMPLETION";
    case JournalRecordType::kReviewEnd:
      return "REVIEW_END";
    case JournalRecordType::kSnapshot:
      return "SNAPSHOT";
    case JournalRecordType::kRunEnd:
      return "RUN_END";
  }
  return "UNKNOWN";
}

Status InMemoryJournalStorage::Append(std::string_view bytes) {
  bytes_.append(bytes.data(), bytes.size());
  return OkStatus();
}

Status InMemoryJournalStorage::Truncate(uint64_t size) {
  if (size < bytes_.size()) {
    bytes_.resize(static_cast<size_t>(size));
  }
  return OkStatus();
}

StatusOr<std::string> FileJournalStorage::Load() {
  std::FILE* file = std::fopen(path_.c_str(), "rb");
  if (file == nullptr) {
    // A journal that does not exist yet is simply fresh.
    return std::string();
  }
  std::string bytes;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return InternalError("journal: read error on " + path_);
  }
  return bytes;
}

Status FileJournalStorage::Append(std::string_view bytes) {
  std::FILE* file = std::fopen(path_.c_str(), "ab");
  if (file == nullptr) {
    return InternalError("journal: cannot open " + path_ + " for append");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const int flushed = std::fflush(file);
  const int closed = std::fclose(file);
  if (written != bytes.size() || flushed != 0 || closed != 0) {
    return InternalError("journal: short append to " + path_);
  }
  return OkStatus();
}

Status FileJournalStorage::Truncate(uint64_t size) {
  struct stat st;
  if (::stat(path_.c_str(), &st) != 0) {
    // Nothing on disk: truncating a fresh journal to 0 is a no-op.
    return size == 0 ? OkStatus()
                     : InternalError("journal: cannot stat " + path_);
  }
  if (static_cast<uint64_t>(st.st_size) <= size) {
    return OkStatus();
  }
  if (::truncate(path_.c_str(), static_cast<off_t>(size)) != 0) {
    return InternalError("journal: cannot truncate " + path_);
  }
  return OkStatus();
}

Status FileJournalStorage::Flush() { return OkStatus(); }

Status CrashInjectingStorage::CrashStatus() {
  return ResourceExhaustedError(
      "injected crash: journal storage failed mid-write");
}

Status CrashInjectingStorage::Append(std::string_view bytes) {
  if (crashed_) {
    return CrashStatus();
  }
  if (bytes.size() <= budget_) {
    budget_ -= bytes.size();
    return inner_->Append(bytes);
  }
  // Torn write: the prefix that fit reaches the disk, then the process
  // dies. The inner append's own status is irrelevant — the crash wins.
  (void)inner_->Append(bytes.substr(0, static_cast<size_t>(budget_)));
  budget_ = 0;
  crashed_ = true;
  return CrashStatus();
}

std::string EncodeJournalRecord(JournalRecordType type,
                                std::string_view payload) {
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU8(static_cast<uint8_t>(type));
  std::string bytes = frame.Release();
  bytes.append(payload.data(), payload.size());
  Encoder crc;
  crc.PutU32(Crc32c(bytes));
  bytes += crc.bytes();
  return bytes;
}

StatusOr<JournalContents> ScanJournal(std::string_view bytes) {
  JournalContents contents;
  if (bytes.empty()) {
    return contents;  // fresh journal
  }
  if (bytes.size() < kHeaderSize) {
    // A torn header write: nothing trustworthy, recover to empty — unless
    // the bytes do not even start like our magic, in which case this is not
    // our file and truncating it would destroy someone's data.
    const size_t n = std::min(bytes.size(), kJournalMagic.size());
    if (bytes.substr(0, n) != kJournalMagic.substr(0, n)) {
      return InvalidArgumentError("journal: not a journal file (bad magic)");
    }
    contents.truncated_tail = true;
    return contents;
  }
  if (bytes.substr(0, kJournalMagic.size()) != kJournalMagic) {
    return InvalidArgumentError("journal: not a journal file (bad magic)");
  }
  {
    Decoder header(bytes.substr(kJournalMagic.size(), 4));
    uint32_t version = 0;
    HTUNE_RETURN_IF_ERROR(header.GetU32(&version));
    if (version != kJournalVersion) {
      return InvalidArgumentError("journal: unsupported format version " +
                                  std::to_string(version));
    }
    contents.version = version;
  }
  contents.valid_bytes = kHeaderSize;

  size_t offset = kHeaderSize;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kFrameOverhead) {
      break;  // torn frame header/footer
    }
    Decoder prefix(bytes.substr(offset, 5));
    uint32_t length = 0;
    uint8_t type = 0;
    HTUNE_RETURN_IF_ERROR(prefix.GetU32(&length));
    HTUNE_RETURN_IF_ERROR(prefix.GetU8(&type));
    if (length > kMaxPayload || bytes.size() - offset - kFrameOverhead <
                                    static_cast<size_t>(length)) {
      break;  // corrupt length or torn payload
    }
    const std::string_view framed = bytes.substr(offset, 5 + length);
    Decoder footer(bytes.substr(offset + 5 + length, 4));
    uint32_t stored_crc = 0;
    HTUNE_RETURN_IF_ERROR(footer.GetU32(&stored_crc));
    if (Crc32c(framed) != stored_crc) {
      break;  // bit-flipped record
    }
    if (type < static_cast<uint8_t>(JournalRecordType::kRunStart) ||
        type > static_cast<uint8_t>(JournalRecordType::kRunEnd)) {
      break;  // unknown record type: cannot trust anything after it
    }
    JournalRecord record;
    record.type = static_cast<JournalRecordType>(type);
    record.payload = std::string(framed.substr(5));
    offset += 5 + length + 4;
    record.end_offset = offset;
    contents.records.push_back(std::move(record));
    contents.valid_bytes = offset;
  }
  contents.truncated_tail = contents.valid_bytes < bytes.size();
  return contents;
}

StatusOr<JournalContents> OpenJournal(JournalStorage& storage) {
  HTUNE_ASSIGN_OR_RETURN(const std::string bytes, storage.Load());
  HTUNE_ASSIGN_OR_RETURN(JournalContents contents, ScanJournal(bytes));
  if (contents.truncated_tail) {
    HTUNE_RETURN_IF_ERROR(storage.Truncate(contents.valid_bytes));
  }
  return contents;
}

JournalWriter::JournalWriter(JournalStorage* storage, uint64_t existing_bytes)
    : storage_(storage), header_written_(existing_bytes > 0) {}

Status JournalWriter::Append(JournalRecordType type,
                             std::string_view payload) {
  HTUNE_OBS_SPAN("journal.append");
  if (!header_written_) {
    HTUNE_RETURN_IF_ERROR(storage_->Append(EncodeHeader()));
    header_written_ = true;
  }
  const std::string record = EncodeJournalRecord(type, payload);
  HTUNE_OBS_COUNTER_ADD("journal.appends", 1);
  HTUNE_OBS_COUNTER_ADD("journal.appended_bytes", record.size());
  return storage_->Append(record);
}

}  // namespace htune
