#include "durability/journal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "durability/crc32c.h"
#include "durability/serialize.h"
#include "obs/obs.h"

namespace htune {

namespace {

constexpr size_t kHeaderSize = 8;          // magic + version
constexpr size_t kFrameOverhead = 4 + 1 + 4;  // length + type + crc
// Guards the frame walk against a corrupted length field pointing far past
// the buffer; no legitimate record (even a snapshot of a large job) comes
// near this.
constexpr uint32_t kMaxPayload = 1u << 30;

std::string EncodeHeader() {
  std::string header(kJournalMagic);
  Encoder version;
  version.PutU32(kJournalVersion);
  header += version.bytes();
  return header;
}

std::string ParentDirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

/// fsyncs the directory containing `path` so a just-created or just-renamed
/// entry survives power loss. Durability of file *contents* (fsync on the
/// file) and durability of the file's *existence* (fsync on the directory)
/// are separate guarantees on POSIX filesystems.
Status SyncParentDir(const std::string& path) {
  const std::string dir = ParentDirOf(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return InternalError("journal: cannot open directory " + dir +
                         " for fsync: " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return InternalError("journal: fsync of directory " + dir +
                         " failed: " + detail);
  }
  ::close(fd);
  return OkStatus();
}

}  // namespace

std::string_view JournalRecordTypeToString(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kRunStart:
      return "RUN_START";
    case JournalRecordType::kPost:
      return "POST";
    case JournalRecordType::kReprice:
      return "REPRICE";
    case JournalRecordType::kPayment:
      return "PAYMENT";
    case JournalRecordType::kCompletion:
      return "COMPLETION";
    case JournalRecordType::kReviewEnd:
      return "REVIEW_END";
    case JournalRecordType::kSnapshot:
      return "SNAPSHOT";
    case JournalRecordType::kRunEnd:
      return "RUN_END";
  }
  return "UNKNOWN";
}

Status InMemoryJournalStorage::Append(std::string_view bytes) {
  bytes_.append(bytes.data(), bytes.size());
  return OkStatus();
}

Status InMemoryJournalStorage::Truncate(uint64_t size) {
  if (size < bytes_.size()) {
    bytes_.resize(static_cast<size_t>(size));
  }
  return OkStatus();
}

StatusOr<std::string> FileJournalStorage::Load() {
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      // A journal that does not exist yet is simply fresh.
      return std::string();
    }
    return InternalError("journal: cannot open " + path_ +
                         " for read: " + std::strerror(errno));
  }
  std::string bytes;
  char buffer[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got > 0) {
      bytes.append(buffer, static_cast<size_t>(got));
      continue;
    }
    if (got == 0) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return InternalError("journal: read error on " + path_ + ": " + detail);
  }
  ::close(fd);
  return bytes;
}

Status FileJournalStorage::Append(std::string_view bytes) {
  const int fd = ::open(path_.c_str(),
                        O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return InternalError("journal: cannot open " + path_ +
                         " for append: " + std::strerror(errno));
  }
  // Write loop: EINTR restarts, a partial write resumes from the persisted
  // prefix, and any other failure is an explicit short-write status — the
  // old fwrite path could fold a partial write and a flush error into one
  // ambiguous result.
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    const std::string detail =
        n < 0 ? std::strerror(errno) : "write returned 0";
    ::close(fd);
    return InternalError("journal: short append to " + path_ + ": " +
                         std::to_string(written) + " of " +
                         std::to_string(bytes.size()) +
                         " bytes persisted: " + detail);
  }
  if (::close(fd) != 0) {
    return InternalError("journal: close after append to " + path_ +
                         " failed: " + std::strerror(errno));
  }
  return OkStatus();
}

Status FileJournalStorage::Truncate(uint64_t size) {
  struct stat st;
  if (::stat(path_.c_str(), &st) != 0) {
    // Nothing on disk: truncating a fresh journal to 0 is a no-op.
    return size == 0 ? OkStatus()
                     : InternalError("journal: cannot stat " + path_);
  }
  if (static_cast<uint64_t>(st.st_size) <= size) {
    return OkStatus();
  }
  if (::truncate(path_.c_str(), static_cast<off_t>(size)) != 0) {
    return InternalError("journal: cannot truncate " + path_);
  }
  return OkStatus();
}

Status FileJournalStorage::Flush() {
  const int fd = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return OkStatus();  // nothing appended yet: nothing to sync
    }
    return InternalError("journal: cannot open " + path_ +
                         " for fsync: " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return InternalError("journal: fsync of " + path_ + " failed: " + detail);
  }
  ::close(fd);
  if (!dir_synced_) {
    // First flush since this handle created the file: make the directory
    // entry itself durable, once. Subsequent flushes only need the data.
    HTUNE_RETURN_IF_ERROR(SyncParentDir(path_));
    dir_synced_ = true;
  }
  return OkStatus();
}

Status AtomicReplaceFile(const std::string& path, std::string_view bytes,
                         const ReplaceFileHook& hook) {
  const std::string temp = path + ".tmp";
  {
    const int fd = ::open(temp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return InternalError("journal: cannot create " + temp + ": " +
                           std::strerror(errno));
    }
    size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n =
          ::write(fd, bytes.data() + written, bytes.size() - written);
      if (n > 0) {
        written += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      const std::string detail =
          n < 0 ? std::strerror(errno) : "write returned 0";
      ::close(fd);
      return InternalError("journal: short write to " + temp + ": " + detail);
    }
    if (::fsync(fd) != 0) {
      const std::string detail = std::strerror(errno);
      ::close(fd);
      return InternalError("journal: fsync of " + temp + " failed: " + detail);
    }
    if (::close(fd) != 0) {
      return InternalError("journal: close of " + temp +
                           " failed: " + std::strerror(errno));
    }
  }
  if (hook) {
    HTUNE_RETURN_IF_ERROR(hook("temp_written"));
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    return InternalError("journal: rename " + temp + " -> " + path +
                         " failed: " + std::strerror(errno));
  }
  if (hook) {
    HTUNE_RETURN_IF_ERROR(hook("renamed"));
  }
  HTUNE_RETURN_IF_ERROR(SyncParentDir(path));
  if (hook) {
    HTUNE_RETURN_IF_ERROR(hook("dir_synced"));
  }
  return OkStatus();
}

Status CrashInjectingStorage::CrashStatus() {
  return ResourceExhaustedError(
      "injected crash: journal storage failed mid-write");
}

Status CrashInjectingStorage::Append(std::string_view bytes) {
  if (crashed_) {
    return CrashStatus();
  }
  if (bytes.size() <= budget_) {
    budget_ -= bytes.size();
    return inner_->Append(bytes);
  }
  // Torn write: the prefix that fit reaches the disk, then the process
  // dies. The inner append's own status is irrelevant — the crash wins.
  (void)inner_->Append(bytes.substr(0, static_cast<size_t>(budget_)));
  budget_ = 0;
  crashed_ = true;
  return CrashStatus();
}

std::string EncodeJournalRecord(JournalRecordType type,
                                std::string_view payload) {
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU8(static_cast<uint8_t>(type));
  std::string bytes = frame.Release();
  bytes.append(payload.data(), payload.size());
  Encoder crc;
  crc.PutU32(Crc32c(bytes));
  bytes += crc.bytes();
  return bytes;
}

StatusOr<JournalContents> ScanJournal(std::string_view bytes) {
  JournalContents contents;
  if (bytes.empty()) {
    return contents;  // fresh journal
  }
  if (bytes.size() < kHeaderSize) {
    // A torn header write: nothing trustworthy, recover to empty — unless
    // the bytes do not even start like our magic, in which case this is not
    // our file and truncating it would destroy someone's data.
    const size_t n = std::min(bytes.size(), kJournalMagic.size());
    if (bytes.substr(0, n) != kJournalMagic.substr(0, n)) {
      return InvalidArgumentError("journal: not a journal file (bad magic)");
    }
    contents.truncated_tail = true;
    return contents;
  }
  if (bytes.substr(0, kJournalMagic.size()) != kJournalMagic) {
    return InvalidArgumentError("journal: not a journal file (bad magic)");
  }
  {
    Decoder header(bytes.substr(kJournalMagic.size(), 4));
    uint32_t version = 0;
    HTUNE_RETURN_IF_ERROR(header.GetU32(&version));
    if (version != kJournalVersion) {
      return InvalidArgumentError("journal: unsupported format version " +
                                  std::to_string(version));
    }
    contents.version = version;
  }
  contents.valid_bytes = kHeaderSize;

  size_t offset = kHeaderSize;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kFrameOverhead) {
      break;  // torn frame header/footer
    }
    Decoder prefix(bytes.substr(offset, 5));
    uint32_t length = 0;
    uint8_t type = 0;
    HTUNE_RETURN_IF_ERROR(prefix.GetU32(&length));
    HTUNE_RETURN_IF_ERROR(prefix.GetU8(&type));
    if (length > kMaxPayload || bytes.size() - offset - kFrameOverhead <
                                    static_cast<size_t>(length)) {
      break;  // corrupt length or torn payload
    }
    const std::string_view framed = bytes.substr(offset, 5 + length);
    Decoder footer(bytes.substr(offset + 5 + length, 4));
    uint32_t stored_crc = 0;
    HTUNE_RETURN_IF_ERROR(footer.GetU32(&stored_crc));
    if (Crc32c(framed) != stored_crc) {
      break;  // bit-flipped record
    }
    if (type < static_cast<uint8_t>(JournalRecordType::kRunStart) ||
        type > static_cast<uint8_t>(JournalRecordType::kRunEnd)) {
      break;  // unknown record type: cannot trust anything after it
    }
    JournalRecord record;
    record.type = static_cast<JournalRecordType>(type);
    record.payload = std::string(framed.substr(5));
    offset += 5 + length + 4;
    record.end_offset = offset;
    contents.records.push_back(std::move(record));
    contents.valid_bytes = offset;
  }
  contents.truncated_tail = contents.valid_bytes < bytes.size();
  return contents;
}

StatusOr<JournalContents> OpenJournal(JournalStorage& storage) {
  HTUNE_ASSIGN_OR_RETURN(const std::string bytes, storage.Load());
  HTUNE_ASSIGN_OR_RETURN(JournalContents contents, ScanJournal(bytes));
  if (contents.truncated_tail) {
    HTUNE_RETURN_IF_ERROR(storage.Truncate(contents.valid_bytes));
  }
  return contents;
}

JournalWriter::JournalWriter(JournalStorage* storage, uint64_t existing_bytes)
    : storage_(storage),
      header_written_(existing_bytes > 0),
      valid_bytes_(existing_bytes) {}

void JournalWriter::EnableRetry(const RetryPolicy& policy,
                                uint64_t jitter_seed) {
  retry_enabled_ = true;
  retry_policy_ = policy;
  jitter_ = SplitMix64(jitter_seed);
}

Status JournalWriter::AppendWithRetry(std::string_view bytes) {
  if (!retry_enabled_) {
    HTUNE_RETURN_IF_ERROR(storage_->Append(bytes));
    valid_bytes_ += bytes.size();
    return OkStatus();
  }
  const Status status = RetryTransient(
      retry_policy_, jitter_,
      [&]() -> Status { return storage_->Append(bytes); },
      // Repair between attempts: a failed append may have persisted any
      // prefix (the torn-write model), so drop back to the last known-good
      // boundary before writing the record again.
      [&]() -> Status {
        HTUNE_OBS_COUNTER_ADD("resilience.journal_repairs", 1);
        return storage_->Truncate(valid_bytes_);
      });
  HTUNE_RETURN_IF_ERROR(status);
  valid_bytes_ += bytes.size();
  return OkStatus();
}

Status JournalWriter::Append(JournalRecordType type,
                             std::string_view payload) {
  HTUNE_OBS_SPAN("journal.append");
  if (!header_written_) {
    HTUNE_RETURN_IF_ERROR(AppendWithRetry(EncodeHeader()));
    header_written_ = true;
  }
  const std::string record = EncodeJournalRecord(type, payload);
  HTUNE_OBS_COUNTER_ADD("journal.appends", 1);
  HTUNE_OBS_COUNTER_ADD("journal.appended_bytes", record.size());
  return AppendWithRetry(record);
}

Status JournalWriter::Flush() {
  if (!retry_enabled_) {
    return storage_->Flush();
  }
  return RetryTransient(retry_policy_, jitter_,
                        [&]() -> Status { return storage_->Flush(); });
}

}  // namespace htune
