#ifndef HTUNE_DURABILITY_CRC32C_H_
#define HTUNE_DURABILITY_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace htune {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum used
/// by the write-ahead journal to detect torn and bit-flipped records. Every
/// single-bit error and every burst error up to 32 bits is detected, which is
/// what the recovery path relies on when deciding where a journal's valid
/// prefix ends. Software table implementation: journals here are small and
/// durability is not a hot path.
uint32_t Crc32c(std::string_view bytes);

/// Incremental form: feeds `bytes` into a running checksum previously
/// returned by Crc32c/ExtendCrc32c. `Crc32c(ab) == ExtendCrc32c(Crc32c(a), b)`.
uint32_t ExtendCrc32c(uint32_t crc, std::string_view bytes);

}  // namespace htune

#endif  // HTUNE_DURABILITY_CRC32C_H_
