#ifndef HTUNE_DURABILITY_JOURNAL_H_
#define HTUNE_DURABILITY_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "resilience/policy.h"

namespace htune {

/// Byte-oriented backing store for a write-ahead journal. Implementations
/// are append-mostly: `Truncate` exists only so recovery can physically drop
/// a torn tail before appending resumes. The controller owns exactly one
/// storage per job; pluggability is what lets tests run the full crash
/// matrix in memory while the CLI and bench persist to disk.
class JournalStorage {
 public:
  virtual ~JournalStorage() = default;

  /// Reads the journal's current full contents.
  virtual StatusOr<std::string> Load() = 0;
  /// Appends `bytes` at the end. A failed append may have persisted any
  /// prefix of `bytes` (the torn-write model); recovery handles it.
  virtual Status Append(std::string_view bytes) = 0;
  /// Discards everything past the first `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;
  /// Forces appended bytes to stable storage (no-op for memory).
  virtual Status Flush() = 0;
};

/// In-memory storage for tests and ephemeral runs.
class InMemoryJournalStorage : public JournalStorage {
 public:
  InMemoryJournalStorage() = default;
  explicit InMemoryJournalStorage(std::string initial)
      : bytes_(std::move(initial)) {}

  StatusOr<std::string> Load() override { return bytes_; }
  Status Append(std::string_view bytes) override;
  Status Truncate(uint64_t size) override;
  Status Flush() override { return OkStatus(); }

  /// Direct access for corruption tests.
  std::string& bytes() { return bytes_; }

 private:
  std::string bytes_;
};

/// File-backed storage for the CLI and benches. The file is opened per
/// operation; journals are small and controller decisions are rare relative
/// to simulated market events, so simplicity wins over a cached descriptor.
///
/// Append uses raw POSIX writes in a loop: EINTR restarts the write, a
/// partial write continues from the persisted prefix, and any other errno
/// fails with an explicit Status naming how many of the requested bytes
/// reached the file — a short write is never reported as success. Flush
/// fsyncs the file, and the first Flush after the file comes into existence
/// also fsyncs the parent directory: fsyncing only the file makes its
/// *contents* durable, but until the directory entry is synced a power cut
/// can forget the file ever existed (the durability-audit hole this class
/// originally had).
class FileJournalStorage : public JournalStorage {
 public:
  explicit FileJournalStorage(std::string path) : path_(std::move(path)) {}

  StatusOr<std::string> Load() override;
  Status Append(std::string_view bytes) override;
  Status Truncate(uint64_t size) override;
  Status Flush() override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  bool dir_synced_ = false;
};

/// Deterministic crash injection: behaves as the wrapped storage until
/// `fail_after_bytes` total bytes have been appended, then persists exactly
/// the prefix of the crossing append that fits and fails every append from
/// then on — modeling a process killed mid-write with a torn final record.
/// Load/Truncate keep working so the subsequent recovery run can reuse the
/// same underlying storage.
class CrashInjectingStorage : public JournalStorage {
 public:
  /// `inner` is borrowed and must outlive this wrapper.
  CrashInjectingStorage(JournalStorage* inner, uint64_t fail_after_bytes)
      : inner_(inner), budget_(fail_after_bytes) {}

  StatusOr<std::string> Load() override { return inner_->Load(); }
  Status Append(std::string_view bytes) override;
  Status Truncate(uint64_t size) override { return inner_->Truncate(size); }
  Status Flush() override {
    return crashed_ ? CrashStatus() : inner_->Flush();
  }

  bool crashed() const { return crashed_; }

  /// The status every post-crash operation returns; controllers propagate
  /// it out of the run, which is the simulated kill.
  static Status CrashStatus();

 private:
  JournalStorage* inner_;
  uint64_t budget_;
  bool crashed_ = false;
};

/// Test seam for AtomicReplaceFile: called after each durability step with
/// the step's name — "temp_written" (temp file written and fsynced),
/// "renamed" (temp renamed over the target), "dir_synced" (parent
/// directory fsynced). Returning non-OK aborts the sequence at that point,
/// modeling a process killed between steps; the on-disk state is whatever
/// the completed steps left behind.
using ReplaceFileHook = std::function<Status(std::string_view step)>;

/// Atomically replaces `path` with `bytes` using the full durability
/// sequence: write `path`.tmp -> fsync temp -> rename over `path` -> fsync
/// the parent directory. A crash at any step leaves either the old file or
/// the new file fully intact — never a mix, and never a file whose
/// directory entry could vanish on power loss (the parent-directory fsync
/// is what makes the rename itself durable; see the crash regression in
/// tests/manifest_test.cc that kills between rename and directory fsync).
Status AtomicReplaceFile(const std::string& path, std::string_view bytes,
                         const ReplaceFileHook& hook = nullptr);

/// Journal file layout:
///   header:  "HTWJ" magic (4 bytes) + u32 LE format version
///   record:  u32 LE payload length | u8 type | payload | u32 LE CRC-32C
/// The CRC covers the length, type, and payload bytes, so a corrupted
/// length field cannot redirect the frame walk to a byte range that
/// happens to checksum correctly against a different payload.
inline constexpr std::string_view kJournalMagic = "HTWJ";
inline constexpr uint32_t kJournalVersion = 1;

/// Controller-level record types. Values are part of the on-disk format
/// (tools/journal_inspect.py mirrors them); append only, never renumber.
enum class JournalRecordType : uint8_t {
  /// Job began: {budget, task count}.
  kRunStart = 1,
  /// One task posted: {task id, group, planned per-repetition prices}.
  kPost = 2,
  /// A task repriced (escalation, floor demotion, or retune):
  /// {task id, new price, remaining slots}.
  kReprice = 3,
  /// One repetition's answer was paid for: {task id, slot, price}. The
  /// exactly-once unit of the budget ledger.
  kPayment = 4,
  /// All repetitions of a task finished: {task id, completion time}.
  kCompletion = 5,
  /// A review round ended: {review index, simulated time, spent so far}.
  kReviewEnd = 6,
  /// Checkpoint: {market state blob, executor state blob}.
  kSnapshot = 7,
  /// Job finished: {total spent, job latency}.
  kRunEnd = 8,
};

std::string_view JournalRecordTypeToString(JournalRecordType type);

/// One validated record read back from a journal.
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kRunStart;
  std::string payload;
  /// Byte offset one past this record's frame — i.e. the journal size if
  /// the run had been killed exactly at this record boundary. The crash
  /// harness enumerates these.
  uint64_t end_offset = 0;
};

/// Result of scanning a journal's bytes.
struct JournalContents {
  uint32_t version = kJournalVersion;
  std::vector<JournalRecord> records;
  /// Length of the valid prefix (header + intact records). Everything past
  /// it is a torn or corrupted tail that recovery truncates.
  uint64_t valid_bytes = 0;
  /// True when trailing bytes past `valid_bytes` were present and dropped.
  bool truncated_tail = false;
};

/// Encodes one framed record (length | type | payload | crc).
std::string EncodeJournalRecord(JournalRecordType type,
                                std::string_view payload);

/// Scans raw journal bytes into validated records. An empty input is a
/// fresh journal. A torn or bit-flipped record ends the valid prefix: that
/// record and everything after it are reported as truncated, never an
/// error — this is the WAL recovery contract. Only a present-but-wrong
/// magic or an unsupported version is an error (the bytes are not ours to
/// truncate).
StatusOr<JournalContents> ScanJournal(std::string_view bytes);

/// Loads, scans, and physically truncates the torn tail (if any) so the
/// storage ends at a record boundary and appends go to a clean end.
StatusOr<JournalContents> OpenJournal(JournalStorage& storage);

/// Appends records to a storage, writing the header first on a fresh
/// journal.
///
/// With a retry policy enabled (EnableRetry), transient storage failures
/// (kUnavailable — flaky I/O, injected chaos) are retried with jittered
/// exponential backoff. Before each retry the writer repairs the journal:
/// it truncates the storage back to the last byte it knows is valid, so a
/// short write that persisted a torn prefix can never leave garbage in the
/// middle of the record stream. Permanent errors — including the crash
/// injector's kResourceExhausted kill — are never retried.
class JournalWriter {
 public:
  /// `storage` is borrowed. `existing_bytes` is the valid size already in
  /// the storage (0 for fresh; OpenJournal().valid_bytes after recovery).
  JournalWriter(JournalStorage* storage, uint64_t existing_bytes);

  /// Turns on retry-on-transient under `policy`, with deterministic jitter
  /// seeded by `jitter_seed`. Call before the first Append.
  void EnableRetry(const RetryPolicy& policy, uint64_t jitter_seed);

  Status Append(JournalRecordType type, std::string_view payload);
  Status Flush();

  /// Bytes known to be durably framed (header + whole records appended so
  /// far). The truncation point for torn-write repair.
  uint64_t valid_bytes() const { return valid_bytes_; }

 private:
  /// Appends `bytes` with retry-and-repair when a policy is enabled.
  Status AppendWithRetry(std::string_view bytes);

  JournalStorage* storage_;
  bool header_written_;
  uint64_t valid_bytes_;
  bool retry_enabled_ = false;
  RetryPolicy retry_policy_;
  SplitMix64 jitter_{0};
};

}  // namespace htune

#endif  // HTUNE_DURABILITY_JOURNAL_H_
