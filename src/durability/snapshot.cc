#include "durability/snapshot.h"

#include <cstdint>
#include <utility>

#include "common/status.h"

namespace htune {

namespace {

void EncodeRepetition(const RepetitionOutcome& rep, Encoder& encoder) {
  encoder.PutDouble(rep.posted_time);
  encoder.PutDouble(rep.accepted_time);
  encoder.PutDouble(rep.completed_time);
  encoder.PutU64(rep.worker);
  encoder.PutI32(rep.price);
  encoder.PutI32(rep.answer);
  encoder.PutBool(rep.correct);
}

Status DecodeRepetition(Decoder& decoder, RepetitionOutcome& rep) {
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&rep.posted_time));
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&rep.accepted_time));
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&rep.completed_time));
  HTUNE_RETURN_IF_ERROR(decoder.GetU64(&rep.worker));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&rep.price));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&rep.answer));
  return decoder.GetBool(&rep.correct);
}

void EncodeRngState(const Random::State& rng, Encoder& encoder) {
  for (uint64_t word : rng.engine) encoder.PutU64(word);
  encoder.PutBool(rng.has_cached_normal);
  encoder.PutDouble(rng.cached_normal);
}

Status DecodeRngState(Decoder& decoder, Random::State& rng) {
  for (uint64_t& word : rng.engine) {
    HTUNE_RETURN_IF_ERROR(decoder.GetU64(&word));
  }
  HTUNE_RETURN_IF_ERROR(decoder.GetBool(&rng.has_cached_normal));
  return decoder.GetDouble(&rng.cached_normal);
}

void EncodeEvent(const MarketState::Event& event, Encoder& encoder) {
  encoder.PutDouble(event.time);
  encoder.PutU64(event.sequence);
  encoder.PutU64(event.task);
  encoder.PutU8(event.kind);
  encoder.PutU64(event.generation);
}

Status DecodeEvent(Decoder& decoder, MarketState::Event& event) {
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&event.time));
  HTUNE_RETURN_IF_ERROR(decoder.GetU64(&event.sequence));
  HTUNE_RETURN_IF_ERROR(decoder.GetU64(&event.task));
  HTUNE_RETURN_IF_ERROR(decoder.GetU8(&event.kind));
  return decoder.GetU64(&event.generation);
}

void EncodeTask(const MarketState::Task& task, Encoder& encoder) {
  encoder.PutU64(task.id);
  encoder.PutI32(task.price_per_repetition);
  encoder.PutI32(task.repetitions);
  encoder.PutDouble(task.on_hold_rate);
  encoder.PutI32Vector(task.spec_prices);
  encoder.PutDoubleVector(task.spec_rates);
  encoder.PutI32(task.spec_curve);
  encoder.PutDouble(task.processing_rate);
  encoder.PutDouble(task.acceptance_timeout);
  encoder.PutI32(task.true_answer);
  encoder.PutI32(task.num_options);
  encoder.PutI32Vector(task.rep_prices);
  encoder.PutDoubleVector(task.rep_rates);
  encoder.PutI32(task.effective_curve);
  EncodeTaskOutcome(task.outcome, encoder);
  encoder.PutI32(task.next_repetition);
  encoder.PutBool(task.awaiting_acceptance);
  encoder.PutDouble(task.current_posted_time);
  encoder.PutU64(task.exposure_generation);
  encoder.PutI32(task.reprice_price);
  encoder.PutDouble(task.reprice_rate);
}

Status DecodeTask(Decoder& decoder, MarketState::Task& task) {
  HTUNE_RETURN_IF_ERROR(decoder.GetU64(&task.id));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&task.price_per_repetition));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&task.repetitions));
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&task.on_hold_rate));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32Vector(&task.spec_prices));
  HTUNE_RETURN_IF_ERROR(decoder.GetDoubleVector(&task.spec_rates));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&task.spec_curve));
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&task.processing_rate));
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&task.acceptance_timeout));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&task.true_answer));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&task.num_options));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32Vector(&task.rep_prices));
  HTUNE_RETURN_IF_ERROR(decoder.GetDoubleVector(&task.rep_rates));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&task.effective_curve));
  HTUNE_RETURN_IF_ERROR(DecodeTaskOutcome(decoder, task.outcome));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&task.next_repetition));
  HTUNE_RETURN_IF_ERROR(decoder.GetBool(&task.awaiting_acceptance));
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&task.current_posted_time));
  HTUNE_RETURN_IF_ERROR(decoder.GetU64(&task.exposure_generation));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&task.reprice_price));
  return decoder.GetDouble(&task.reprice_rate);
}

/// Reads `count` elements with `element`, guarding against hostile counts:
/// each element consumes at least `min_element_bytes`, so a count implying
/// more bytes than remain is rejected before any allocation.
template <typename T, typename Fn>
Status DecodeVector(Decoder& decoder, size_t min_element_bytes, Fn element,
                    std::vector<T>& out) {
  uint64_t count = 0;
  HTUNE_RETURN_IF_ERROR(decoder.GetU64(&count));
  if (count * min_element_bytes > decoder.remaining() ||
      (min_element_bytes > 0 && count > decoder.remaining())) {
    return InvalidArgumentError("decode: element count exceeds input size");
  }
  out.clear();
  out.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    T value{};
    HTUNE_RETURN_IF_ERROR(element(decoder, value));
    out.push_back(std::move(value));
  }
  return OkStatus();
}

}  // namespace

void EncodeTaskOutcome(const TaskOutcome& outcome, Encoder& encoder) {
  encoder.PutU64(outcome.id);
  encoder.PutDouble(outcome.posted_time);
  encoder.PutDouble(outcome.completed_time);
  encoder.PutU64(outcome.repetitions.size());
  for (const RepetitionOutcome& rep : outcome.repetitions) {
    EncodeRepetition(rep, encoder);
  }
  encoder.PutI32(outcome.abandoned_attempts);
  encoder.PutI32(outcome.expired_posts);
  encoder.PutI32(outcome.reposted_posts);
}

Status DecodeTaskOutcome(Decoder& decoder, TaskOutcome& outcome) {
  HTUNE_RETURN_IF_ERROR(decoder.GetU64(&outcome.id));
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&outcome.posted_time));
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&outcome.completed_time));
  HTUNE_RETURN_IF_ERROR(DecodeVector<RepetitionOutcome>(
      decoder, 41, DecodeRepetition, outcome.repetitions));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&outcome.abandoned_attempts));
  HTUNE_RETURN_IF_ERROR(decoder.GetI32(&outcome.expired_posts));
  return decoder.GetI32(&outcome.reposted_posts);
}

void EncodeTraceEvents(const std::vector<TraceEvent>& events,
                       Encoder& encoder) {
  encoder.PutU64(events.size());
  for (const TraceEvent& event : events) {
    encoder.PutDouble(event.time);
    encoder.PutU8(static_cast<uint8_t>(event.kind));
    encoder.PutU64(event.worker);
    encoder.PutU64(event.task);
    encoder.PutI32(event.repetition);
  }
}

Status DecodeTraceEvents(Decoder& decoder, std::vector<TraceEvent>& events) {
  return DecodeVector<TraceEvent>(
      decoder, 29,
      [](Decoder& d, TraceEvent& event) -> Status {
        HTUNE_RETURN_IF_ERROR(d.GetDouble(&event.time));
        uint8_t kind = 0;
        HTUNE_RETURN_IF_ERROR(d.GetU8(&kind));
        if (kind > static_cast<uint8_t>(TraceEventKind::kReposted)) {
          return InvalidArgumentError("decode: unknown trace event kind");
        }
        event.kind = static_cast<TraceEventKind>(kind);
        HTUNE_RETURN_IF_ERROR(d.GetU64(&event.worker));
        HTUNE_RETURN_IF_ERROR(d.GetU64(&event.task));
        return d.GetI32(&event.repetition);
      },
      events);
}

namespace {

/// v2 header magic: the IEEE-754 bit pattern of a quiet NaN spelling
/// "HTSV2" in its payload. A v1 snapshot starts with PutDouble(now), and
/// `now` is a finite simulation time, so no valid v1 blob can begin with
/// these 8 bytes — which is what lets the decoder sniff the version.
constexpr uint64_t kSnapshotMagic = 0xFFF7485453563200ULL;
constexpr uint32_t kSnapshotVersion = 2;

void EncodeMarketStateBody(const MarketState& state, Encoder& encoder) {
  encoder.PutDouble(state.now);
  encoder.PutDouble(state.next_arrival_time);
  encoder.PutU64(state.next_worker);
  encoder.PutU64(state.next_task);
  encoder.PutU64(state.event_sequence);
  encoder.PutI64(state.total_spent);
  EncodeRngState(state.rng, encoder);
  encoder.PutU64(state.events.size());
  for (const MarketState::Event& event : state.events) {
    EncodeEvent(event, encoder);
  }
  encoder.PutU64(state.open_tasks.size());
  for (const MarketState::Task& task : state.open_tasks) {
    EncodeTask(task, encoder);
  }
  encoder.PutU64(state.completed.size());
  for (const TaskOutcome& outcome : state.completed) {
    EncodeTaskOutcome(outcome, encoder);
  }
  encoder.PutU64(state.completion_order.size());
  for (TaskId id : state.completion_order) encoder.PutU64(id);
  EncodeTraceEvents(state.trace, encoder);
}

Status DecodeMarketStateBody(Decoder& decoder, MarketState& state) {
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&state.now));
  HTUNE_RETURN_IF_ERROR(decoder.GetDouble(&state.next_arrival_time));
  HTUNE_RETURN_IF_ERROR(decoder.GetU64(&state.next_worker));
  HTUNE_RETURN_IF_ERROR(decoder.GetU64(&state.next_task));
  HTUNE_RETURN_IF_ERROR(decoder.GetU64(&state.event_sequence));
  int64_t total_spent = 0;
  HTUNE_RETURN_IF_ERROR(decoder.GetI64(&total_spent));
  state.total_spent = static_cast<long>(total_spent);
  HTUNE_RETURN_IF_ERROR(DecodeRngState(decoder, state.rng));
  HTUNE_RETURN_IF_ERROR(
      DecodeVector<MarketState::Event>(decoder, 33, DecodeEvent, state.events));
  HTUNE_RETURN_IF_ERROR(
      DecodeVector<MarketState::Task>(decoder, 64, DecodeTask,
                                      state.open_tasks));
  HTUNE_RETURN_IF_ERROR(DecodeVector<TaskOutcome>(
      decoder, 36, DecodeTaskOutcome, state.completed));
  HTUNE_RETURN_IF_ERROR(DecodeVector<TaskId>(
      decoder, 8,
      [](Decoder& d, TaskId& id) -> Status { return d.GetU64(&id); },
      state.completion_order));
  HTUNE_RETURN_IF_ERROR(DecodeTraceEvents(decoder, state.trace));
  return decoder.ExpectDone();
}

}  // namespace

std::string EncodeMarketState(const MarketState& state) {
  Encoder encoder;
  encoder.PutU64(kSnapshotMagic);
  encoder.PutU32(kSnapshotVersion);
  EncodeMarketStateBody(state, encoder);
  return std::move(encoder).Release();
}

std::string EncodeMarketStateLegacyV1(const MarketState& state) {
  Encoder encoder;
  EncodeMarketStateBody(state, encoder);
  return std::move(encoder).Release();
}

StatusOr<MarketState> DecodeMarketState(std::string_view bytes) {
  MarketState state;
  Decoder sniff(bytes);
  uint64_t first_word = 0;
  if (sniff.GetU64(&first_word).ok() && first_word == kSnapshotMagic) {
    uint32_t version = 0;
    HTUNE_RETURN_IF_ERROR(sniff.GetU32(&version));
    if (version != kSnapshotVersion) {
      return InvalidArgumentError("decode: unsupported snapshot version " +
                                  std::to_string(version));
    }
    HTUNE_RETURN_IF_ERROR(DecodeMarketStateBody(sniff, state));
    return state;
  }
  // No magic: a v1 blob, which starts directly with the `now` field.
  Decoder decoder(bytes);
  HTUNE_RETURN_IF_ERROR(DecodeMarketStateBody(decoder, state));
  return state;
}

}  // namespace htune
