#ifndef HTUNE_DURABILITY_SERIALIZE_H_
#define HTUNE_DURABILITY_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace htune {

/// Little-endian fixed-width binary encoder for journal payloads and
/// snapshots. The encoding is deliberately trivial — no varints, no
/// alignment, no schema evolution beyond the journal's version header — so
/// that encoding the same logical state always yields the same bytes
/// (replay verification compares records bitwise) and the Python inspector
/// can parse it with struct.unpack.
class Encoder {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  /// Doubles are stored as their IEEE-754 bit pattern: decode is bitwise
  /// exact, which the crash-recovery identity guarantees depend on.
  void PutDouble(double v);
  /// Length-prefixed bytes (u64 length).
  void PutString(std::string_view v);
  void PutI32Vector(const std::vector<int>& v);
  void PutDoubleVector(const std::vector<double>& v);

  const std::string& bytes() const { return bytes_; }
  std::string Release() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Cursor-based decoder over an Encoder's output. Every accessor checks
/// bounds and returns InvalidArgument on truncated or corrupt input instead
/// of reading past the end — decoding attacker-controlled (bit-flipped,
/// truncated) bytes must fail cleanly, never crash. Element counts are
/// sanity-checked against the remaining byte count before any allocation so
/// a corrupted length cannot trigger a huge allocation.
class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : bytes_(bytes) {}

  Status GetU8(uint8_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI32(int32_t* v);
  Status GetI64(int64_t* v);
  Status GetBool(bool* v);
  Status GetDouble(double* v);
  Status GetString(std::string* v);
  Status GetI32Vector(std::vector<int>* v);
  Status GetDoubleVector(std::vector<double>* v);

  /// Remaining unread bytes.
  size_t remaining() const { return bytes_.size() - cursor_; }
  bool Done() const { return cursor_ == bytes_.size(); }
  /// InvalidArgument when trailing bytes remain (payload longer than the
  /// decoder expected — a framing or version error).
  Status ExpectDone() const;

 private:
  Status Take(size_t n, const char** out);

  std::string_view bytes_;
  size_t cursor_ = 0;
};

}  // namespace htune

#endif  // HTUNE_DURABILITY_SERIALIZE_H_
