# Empty compiler generated dependencies file for htune_cli.
# This may be replaced when dependencies are built.
