file(REMOVE_RECURSE
  "CMakeFiles/htune_cli.dir/htune_cli.cc.o"
  "CMakeFiles/htune_cli.dir/htune_cli.cc.o.d"
  "htune_cli"
  "htune_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
