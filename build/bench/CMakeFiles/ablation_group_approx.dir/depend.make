# Empty dependencies file for ablation_group_approx.
# This may be replaced when dependencies are built.
