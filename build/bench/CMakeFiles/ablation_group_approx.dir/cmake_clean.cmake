file(REMOVE_RECURSE
  "CMakeFiles/ablation_group_approx.dir/ablation_group_approx.cc.o"
  "CMakeFiles/ablation_group_approx.dir/ablation_group_approx.cc.o.d"
  "ablation_group_approx"
  "ablation_group_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_group_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
