# Empty compiler generated dependencies file for ablation_fluctuation.
# This may be replaced when dependencies are built.
