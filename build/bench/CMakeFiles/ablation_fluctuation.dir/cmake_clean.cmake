file(REMOVE_RECURSE
  "CMakeFiles/ablation_fluctuation.dir/ablation_fluctuation.cc.o"
  "CMakeFiles/ablation_fluctuation.dir/ablation_fluctuation.cc.o.d"
  "ablation_fluctuation"
  "ablation_fluctuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
