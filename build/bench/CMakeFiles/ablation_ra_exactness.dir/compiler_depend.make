# Empty compiler generated dependencies file for ablation_ra_exactness.
# This may be replaced when dependencies are built.
