file(REMOVE_RECURSE
  "CMakeFiles/ablation_ra_exactness.dir/ablation_ra_exactness.cc.o"
  "CMakeFiles/ablation_ra_exactness.dir/ablation_ra_exactness.cc.o.d"
  "ablation_ra_exactness"
  "ablation_ra_exactness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ra_exactness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
