# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5c_opt_vs_heuristic.
