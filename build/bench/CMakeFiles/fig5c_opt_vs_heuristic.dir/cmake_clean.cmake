file(REMOVE_RECURSE
  "CMakeFiles/fig5c_opt_vs_heuristic.dir/fig5c_opt_vs_heuristic.cc.o"
  "CMakeFiles/fig5c_opt_vs_heuristic.dir/fig5c_opt_vs_heuristic.cc.o.d"
  "fig5c_opt_vs_heuristic"
  "fig5c_opt_vs_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_opt_vs_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
