# Empty compiler generated dependencies file for fig5c_opt_vs_heuristic.
# This may be replaced when dependencies are built.
