# Empty dependencies file for quality_tradeoff.
# This may be replaced when dependencies are built.
