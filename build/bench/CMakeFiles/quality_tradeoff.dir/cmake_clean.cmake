file(REMOVE_RECURSE
  "CMakeFiles/quality_tradeoff.dir/quality_tradeoff.cc.o"
  "CMakeFiles/quality_tradeoff.dir/quality_tradeoff.cc.o.d"
  "quality_tradeoff"
  "quality_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
