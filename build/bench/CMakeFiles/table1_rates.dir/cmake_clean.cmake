file(REMOVE_RECURSE
  "CMakeFiles/table1_rates.dir/table1_rates.cc.o"
  "CMakeFiles/table1_rates.dir/table1_rates.cc.o.d"
  "table1_rates"
  "table1_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
