file(REMOVE_RECURSE
  "CMakeFiles/fig4_reward.dir/fig4_reward.cc.o"
  "CMakeFiles/fig4_reward.dir/fig4_reward.cc.o.d"
  "fig4_reward"
  "fig4_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
