# Empty dependencies file for fig4_reward.
# This may be replaced when dependencies are built.
