file(REMOVE_RECURSE
  "CMakeFiles/fig3_arrivals.dir/fig3_arrivals.cc.o"
  "CMakeFiles/fig3_arrivals.dir/fig3_arrivals.cc.o.d"
  "fig3_arrivals"
  "fig3_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
