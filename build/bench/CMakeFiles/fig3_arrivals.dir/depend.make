# Empty dependencies file for fig3_arrivals.
# This may be replaced when dependencies are built.
