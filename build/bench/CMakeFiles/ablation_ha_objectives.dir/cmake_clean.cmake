file(REMOVE_RECURSE
  "CMakeFiles/ablation_ha_objectives.dir/ablation_ha_objectives.cc.o"
  "CMakeFiles/ablation_ha_objectives.dir/ablation_ha_objectives.cc.o.d"
  "ablation_ha_objectives"
  "ablation_ha_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ha_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
