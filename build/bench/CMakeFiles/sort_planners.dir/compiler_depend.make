# Empty compiler generated dependencies file for sort_planners.
# This may be replaced when dependencies are built.
