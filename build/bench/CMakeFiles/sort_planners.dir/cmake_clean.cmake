file(REMOVE_RECURSE
  "CMakeFiles/sort_planners.dir/sort_planners.cc.o"
  "CMakeFiles/sort_planners.dir/sort_planners.cc.o.d"
  "sort_planners"
  "sort_planners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_planners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
