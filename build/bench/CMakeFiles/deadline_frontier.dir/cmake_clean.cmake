file(REMOVE_RECURSE
  "CMakeFiles/deadline_frontier.dir/deadline_frontier.cc.o"
  "CMakeFiles/deadline_frontier.dir/deadline_frontier.cc.o.d"
  "deadline_frontier"
  "deadline_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
