# Empty dependencies file for deadline_frontier.
# This may be replaced when dependencies are built.
