# Empty dependencies file for saturation.
# This may be replaced when dependencies are built.
