file(REMOVE_RECURSE
  "CMakeFiles/saturation.dir/saturation.cc.o"
  "CMakeFiles/saturation.dir/saturation.cc.o.d"
  "saturation"
  "saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
