# Empty compiler generated dependencies file for fig5_difficulty.
# This may be replaced when dependencies are built.
