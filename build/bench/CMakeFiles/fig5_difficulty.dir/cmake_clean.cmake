file(REMOVE_RECURSE
  "CMakeFiles/fig5_difficulty.dir/fig5_difficulty.cc.o"
  "CMakeFiles/fig5_difficulty.dir/fig5_difficulty.cc.o.d"
  "fig5_difficulty"
  "fig5_difficulty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_difficulty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
