# Empty dependencies file for fig2_repetition.
# This may be replaced when dependencies are built.
