file(REMOVE_RECURSE
  "CMakeFiles/fig2_repetition.dir/fig2_repetition.cc.o"
  "CMakeFiles/fig2_repetition.dir/fig2_repetition.cc.o.d"
  "fig2_repetition"
  "fig2_repetition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_repetition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
