# Empty dependencies file for fig2_heterogeneous.
# This may be replaced when dependencies are built.
