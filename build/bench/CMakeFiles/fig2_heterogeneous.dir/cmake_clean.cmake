file(REMOVE_RECURSE
  "CMakeFiles/fig2_heterogeneous.dir/fig2_heterogeneous.cc.o"
  "CMakeFiles/fig2_heterogeneous.dir/fig2_heterogeneous.cc.o.d"
  "fig2_heterogeneous"
  "fig2_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
