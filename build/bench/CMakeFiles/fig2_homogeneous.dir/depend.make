# Empty dependencies file for fig2_homogeneous.
# This may be replaced when dependencies are built.
