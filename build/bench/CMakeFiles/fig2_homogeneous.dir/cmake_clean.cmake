file(REMOVE_RECURSE
  "CMakeFiles/fig2_homogeneous.dir/fig2_homogeneous.cc.o"
  "CMakeFiles/fig2_homogeneous.dir/fig2_homogeneous.cc.o.d"
  "fig2_homogeneous"
  "fig2_homogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
