# Empty dependencies file for htune_common.
# This may be replaced when dependencies are built.
