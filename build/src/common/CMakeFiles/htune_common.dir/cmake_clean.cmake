file(REMOVE_RECURSE
  "CMakeFiles/htune_common.dir/status.cc.o"
  "CMakeFiles/htune_common.dir/status.cc.o.d"
  "CMakeFiles/htune_common.dir/strings.cc.o"
  "CMakeFiles/htune_common.dir/strings.cc.o.d"
  "libhtune_common.a"
  "libhtune_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htune_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
