file(REMOVE_RECURSE
  "libhtune_common.a"
)
