file(REMOVE_RECURSE
  "CMakeFiles/htune_control.dir/adaptive_retuner.cc.o"
  "CMakeFiles/htune_control.dir/adaptive_retuner.cc.o.d"
  "libhtune_control.a"
  "libhtune_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htune_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
