file(REMOVE_RECURSE
  "libhtune_control.a"
)
