# Empty dependencies file for htune_control.
# This may be replaced when dependencies are built.
