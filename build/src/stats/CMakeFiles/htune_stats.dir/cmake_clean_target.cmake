file(REMOVE_RECURSE
  "libhtune_stats.a"
)
