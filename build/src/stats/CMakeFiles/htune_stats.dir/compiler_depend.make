# Empty compiler generated dependencies file for htune_stats.
# This may be replaced when dependencies are built.
