file(REMOVE_RECURSE
  "CMakeFiles/htune_stats.dir/bootstrap.cc.o"
  "CMakeFiles/htune_stats.dir/bootstrap.cc.o.d"
  "CMakeFiles/htune_stats.dir/descriptive.cc.o"
  "CMakeFiles/htune_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/htune_stats.dir/histogram.cc.o"
  "CMakeFiles/htune_stats.dir/histogram.cc.o.d"
  "CMakeFiles/htune_stats.dir/kaplan_meier.cc.o"
  "CMakeFiles/htune_stats.dir/kaplan_meier.cc.o.d"
  "CMakeFiles/htune_stats.dir/regression.cc.o"
  "CMakeFiles/htune_stats.dir/regression.cc.o.d"
  "libhtune_stats.a"
  "libhtune_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htune_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
