# Empty dependencies file for htune_market.
# This may be replaced when dependencies are built.
