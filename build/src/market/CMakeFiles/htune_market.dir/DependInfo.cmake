
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/rate_schedule.cc" "src/market/CMakeFiles/htune_market.dir/rate_schedule.cc.o" "gcc" "src/market/CMakeFiles/htune_market.dir/rate_schedule.cc.o.d"
  "/root/repo/src/market/simulator.cc" "src/market/CMakeFiles/htune_market.dir/simulator.cc.o" "gcc" "src/market/CMakeFiles/htune_market.dir/simulator.cc.o.d"
  "/root/repo/src/market/trace_io.cc" "src/market/CMakeFiles/htune_market.dir/trace_io.cc.o" "gcc" "src/market/CMakeFiles/htune_market.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/htune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/htune_model.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/htune_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
