file(REMOVE_RECURSE
  "CMakeFiles/htune_market.dir/rate_schedule.cc.o"
  "CMakeFiles/htune_market.dir/rate_schedule.cc.o.d"
  "CMakeFiles/htune_market.dir/simulator.cc.o"
  "CMakeFiles/htune_market.dir/simulator.cc.o.d"
  "CMakeFiles/htune_market.dir/trace_io.cc.o"
  "CMakeFiles/htune_market.dir/trace_io.cc.o.d"
  "libhtune_market.a"
  "libhtune_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htune_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
