file(REMOVE_RECURSE
  "libhtune_market.a"
)
