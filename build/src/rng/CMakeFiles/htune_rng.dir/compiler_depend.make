# Empty compiler generated dependencies file for htune_rng.
# This may be replaced when dependencies are built.
