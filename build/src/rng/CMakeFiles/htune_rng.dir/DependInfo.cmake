
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rng/random.cc" "src/rng/CMakeFiles/htune_rng.dir/random.cc.o" "gcc" "src/rng/CMakeFiles/htune_rng.dir/random.cc.o.d"
  "/root/repo/src/rng/xoshiro256.cc" "src/rng/CMakeFiles/htune_rng.dir/xoshiro256.cc.o" "gcc" "src/rng/CMakeFiles/htune_rng.dir/xoshiro256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/htune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
