file(REMOVE_RECURSE
  "CMakeFiles/htune_rng.dir/random.cc.o"
  "CMakeFiles/htune_rng.dir/random.cc.o.d"
  "CMakeFiles/htune_rng.dir/xoshiro256.cc.o"
  "CMakeFiles/htune_rng.dir/xoshiro256.cc.o.d"
  "libhtune_rng.a"
  "libhtune_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htune_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
