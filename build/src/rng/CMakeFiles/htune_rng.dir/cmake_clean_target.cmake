file(REMOVE_RECURSE
  "libhtune_rng.a"
)
