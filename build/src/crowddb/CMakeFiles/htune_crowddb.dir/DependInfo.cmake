
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crowddb/categorize.cc" "src/crowddb/CMakeFiles/htune_crowddb.dir/categorize.cc.o" "gcc" "src/crowddb/CMakeFiles/htune_crowddb.dir/categorize.cc.o.d"
  "/root/repo/src/crowddb/executor.cc" "src/crowddb/CMakeFiles/htune_crowddb.dir/executor.cc.o" "gcc" "src/crowddb/CMakeFiles/htune_crowddb.dir/executor.cc.o.d"
  "/root/repo/src/crowddb/filter.cc" "src/crowddb/CMakeFiles/htune_crowddb.dir/filter.cc.o" "gcc" "src/crowddb/CMakeFiles/htune_crowddb.dir/filter.cc.o.d"
  "/root/repo/src/crowddb/max.cc" "src/crowddb/CMakeFiles/htune_crowddb.dir/max.cc.o" "gcc" "src/crowddb/CMakeFiles/htune_crowddb.dir/max.cc.o.d"
  "/root/repo/src/crowddb/merge_sort.cc" "src/crowddb/CMakeFiles/htune_crowddb.dir/merge_sort.cc.o" "gcc" "src/crowddb/CMakeFiles/htune_crowddb.dir/merge_sort.cc.o.d"
  "/root/repo/src/crowddb/metrics.cc" "src/crowddb/CMakeFiles/htune_crowddb.dir/metrics.cc.o" "gcc" "src/crowddb/CMakeFiles/htune_crowddb.dir/metrics.cc.o.d"
  "/root/repo/src/crowddb/query.cc" "src/crowddb/CMakeFiles/htune_crowddb.dir/query.cc.o" "gcc" "src/crowddb/CMakeFiles/htune_crowddb.dir/query.cc.o.d"
  "/root/repo/src/crowddb/sort.cc" "src/crowddb/CMakeFiles/htune_crowddb.dir/sort.cc.o" "gcc" "src/crowddb/CMakeFiles/htune_crowddb.dir/sort.cc.o.d"
  "/root/repo/src/crowddb/top_k.cc" "src/crowddb/CMakeFiles/htune_crowddb.dir/top_k.cc.o" "gcc" "src/crowddb/CMakeFiles/htune_crowddb.dir/top_k.cc.o.d"
  "/root/repo/src/crowddb/types.cc" "src/crowddb/CMakeFiles/htune_crowddb.dir/types.cc.o" "gcc" "src/crowddb/CMakeFiles/htune_crowddb.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/htune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/htune_market.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/htune_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/htune_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/htune_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
