# Empty dependencies file for htune_crowddb.
# This may be replaced when dependencies are built.
