file(REMOVE_RECURSE
  "libhtune_crowddb.a"
)
