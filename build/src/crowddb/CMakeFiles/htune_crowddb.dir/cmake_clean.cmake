file(REMOVE_RECURSE
  "CMakeFiles/htune_crowddb.dir/categorize.cc.o"
  "CMakeFiles/htune_crowddb.dir/categorize.cc.o.d"
  "CMakeFiles/htune_crowddb.dir/executor.cc.o"
  "CMakeFiles/htune_crowddb.dir/executor.cc.o.d"
  "CMakeFiles/htune_crowddb.dir/filter.cc.o"
  "CMakeFiles/htune_crowddb.dir/filter.cc.o.d"
  "CMakeFiles/htune_crowddb.dir/max.cc.o"
  "CMakeFiles/htune_crowddb.dir/max.cc.o.d"
  "CMakeFiles/htune_crowddb.dir/merge_sort.cc.o"
  "CMakeFiles/htune_crowddb.dir/merge_sort.cc.o.d"
  "CMakeFiles/htune_crowddb.dir/metrics.cc.o"
  "CMakeFiles/htune_crowddb.dir/metrics.cc.o.d"
  "CMakeFiles/htune_crowddb.dir/query.cc.o"
  "CMakeFiles/htune_crowddb.dir/query.cc.o.d"
  "CMakeFiles/htune_crowddb.dir/sort.cc.o"
  "CMakeFiles/htune_crowddb.dir/sort.cc.o.d"
  "CMakeFiles/htune_crowddb.dir/top_k.cc.o"
  "CMakeFiles/htune_crowddb.dir/top_k.cc.o.d"
  "CMakeFiles/htune_crowddb.dir/types.cc.o"
  "CMakeFiles/htune_crowddb.dir/types.cc.o.d"
  "libhtune_crowddb.a"
  "libhtune_crowddb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htune_crowddb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
