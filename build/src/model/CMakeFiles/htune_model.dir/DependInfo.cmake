
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/distributions.cc" "src/model/CMakeFiles/htune_model.dir/distributions.cc.o" "gcc" "src/model/CMakeFiles/htune_model.dir/distributions.cc.o.d"
  "/root/repo/src/model/hypoexponential.cc" "src/model/CMakeFiles/htune_model.dir/hypoexponential.cc.o" "gcc" "src/model/CMakeFiles/htune_model.dir/hypoexponential.cc.o.d"
  "/root/repo/src/model/latency_model.cc" "src/model/CMakeFiles/htune_model.dir/latency_model.cc.o" "gcc" "src/model/CMakeFiles/htune_model.dir/latency_model.cc.o.d"
  "/root/repo/src/model/order_statistics.cc" "src/model/CMakeFiles/htune_model.dir/order_statistics.cc.o" "gcc" "src/model/CMakeFiles/htune_model.dir/order_statistics.cc.o.d"
  "/root/repo/src/model/price_rate_curve.cc" "src/model/CMakeFiles/htune_model.dir/price_rate_curve.cc.o" "gcc" "src/model/CMakeFiles/htune_model.dir/price_rate_curve.cc.o.d"
  "/root/repo/src/model/quadrature.cc" "src/model/CMakeFiles/htune_model.dir/quadrature.cc.o" "gcc" "src/model/CMakeFiles/htune_model.dir/quadrature.cc.o.d"
  "/root/repo/src/model/quality.cc" "src/model/CMakeFiles/htune_model.dir/quality.cc.o" "gcc" "src/model/CMakeFiles/htune_model.dir/quality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/htune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/htune_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
