# Empty dependencies file for htune_model.
# This may be replaced when dependencies are built.
