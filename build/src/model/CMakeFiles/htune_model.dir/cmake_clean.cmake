file(REMOVE_RECURSE
  "CMakeFiles/htune_model.dir/distributions.cc.o"
  "CMakeFiles/htune_model.dir/distributions.cc.o.d"
  "CMakeFiles/htune_model.dir/hypoexponential.cc.o"
  "CMakeFiles/htune_model.dir/hypoexponential.cc.o.d"
  "CMakeFiles/htune_model.dir/latency_model.cc.o"
  "CMakeFiles/htune_model.dir/latency_model.cc.o.d"
  "CMakeFiles/htune_model.dir/order_statistics.cc.o"
  "CMakeFiles/htune_model.dir/order_statistics.cc.o.d"
  "CMakeFiles/htune_model.dir/price_rate_curve.cc.o"
  "CMakeFiles/htune_model.dir/price_rate_curve.cc.o.d"
  "CMakeFiles/htune_model.dir/quadrature.cc.o"
  "CMakeFiles/htune_model.dir/quadrature.cc.o.d"
  "CMakeFiles/htune_model.dir/quality.cc.o"
  "CMakeFiles/htune_model.dir/quality.cc.o.d"
  "libhtune_model.a"
  "libhtune_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htune_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
