file(REMOVE_RECURSE
  "libhtune_model.a"
)
