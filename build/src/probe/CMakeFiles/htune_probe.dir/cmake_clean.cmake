file(REMOVE_RECURSE
  "CMakeFiles/htune_probe.dir/calibration.cc.o"
  "CMakeFiles/htune_probe.dir/calibration.cc.o.d"
  "CMakeFiles/htune_probe.dir/probe.cc.o"
  "CMakeFiles/htune_probe.dir/probe.cc.o.d"
  "libhtune_probe.a"
  "libhtune_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htune_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
