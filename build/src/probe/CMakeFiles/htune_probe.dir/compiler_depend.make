# Empty compiler generated dependencies file for htune_probe.
# This may be replaced when dependencies are built.
