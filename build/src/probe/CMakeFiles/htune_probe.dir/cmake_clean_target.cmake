file(REMOVE_RECURSE
  "libhtune_probe.a"
)
