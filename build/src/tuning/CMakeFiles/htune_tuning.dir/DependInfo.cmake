
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuning/allocation.cc" "src/tuning/CMakeFiles/htune_tuning.dir/allocation.cc.o" "gcc" "src/tuning/CMakeFiles/htune_tuning.dir/allocation.cc.o.d"
  "/root/repo/src/tuning/baselines.cc" "src/tuning/CMakeFiles/htune_tuning.dir/baselines.cc.o" "gcc" "src/tuning/CMakeFiles/htune_tuning.dir/baselines.cc.o.d"
  "/root/repo/src/tuning/brute_force.cc" "src/tuning/CMakeFiles/htune_tuning.dir/brute_force.cc.o" "gcc" "src/tuning/CMakeFiles/htune_tuning.dir/brute_force.cc.o.d"
  "/root/repo/src/tuning/deadline_allocator.cc" "src/tuning/CMakeFiles/htune_tuning.dir/deadline_allocator.cc.o" "gcc" "src/tuning/CMakeFiles/htune_tuning.dir/deadline_allocator.cc.o.d"
  "/root/repo/src/tuning/evaluator.cc" "src/tuning/CMakeFiles/htune_tuning.dir/evaluator.cc.o" "gcc" "src/tuning/CMakeFiles/htune_tuning.dir/evaluator.cc.o.d"
  "/root/repo/src/tuning/even_allocator.cc" "src/tuning/CMakeFiles/htune_tuning.dir/even_allocator.cc.o" "gcc" "src/tuning/CMakeFiles/htune_tuning.dir/even_allocator.cc.o.d"
  "/root/repo/src/tuning/group_latency_table.cc" "src/tuning/CMakeFiles/htune_tuning.dir/group_latency_table.cc.o" "gcc" "src/tuning/CMakeFiles/htune_tuning.dir/group_latency_table.cc.o.d"
  "/root/repo/src/tuning/heterogeneous_allocator.cc" "src/tuning/CMakeFiles/htune_tuning.dir/heterogeneous_allocator.cc.o" "gcc" "src/tuning/CMakeFiles/htune_tuning.dir/heterogeneous_allocator.cc.o.d"
  "/root/repo/src/tuning/problem.cc" "src/tuning/CMakeFiles/htune_tuning.dir/problem.cc.o" "gcc" "src/tuning/CMakeFiles/htune_tuning.dir/problem.cc.o.d"
  "/root/repo/src/tuning/quantile.cc" "src/tuning/CMakeFiles/htune_tuning.dir/quantile.cc.o" "gcc" "src/tuning/CMakeFiles/htune_tuning.dir/quantile.cc.o.d"
  "/root/repo/src/tuning/repetition_allocator.cc" "src/tuning/CMakeFiles/htune_tuning.dir/repetition_allocator.cc.o" "gcc" "src/tuning/CMakeFiles/htune_tuning.dir/repetition_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/htune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/htune_model.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/htune_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
