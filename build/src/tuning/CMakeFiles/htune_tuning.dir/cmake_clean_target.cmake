file(REMOVE_RECURSE
  "libhtune_tuning.a"
)
