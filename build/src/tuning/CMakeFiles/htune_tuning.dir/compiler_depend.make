# Empty compiler generated dependencies file for htune_tuning.
# This may be replaced when dependencies are built.
