file(REMOVE_RECURSE
  "CMakeFiles/htune_tuning.dir/allocation.cc.o"
  "CMakeFiles/htune_tuning.dir/allocation.cc.o.d"
  "CMakeFiles/htune_tuning.dir/baselines.cc.o"
  "CMakeFiles/htune_tuning.dir/baselines.cc.o.d"
  "CMakeFiles/htune_tuning.dir/brute_force.cc.o"
  "CMakeFiles/htune_tuning.dir/brute_force.cc.o.d"
  "CMakeFiles/htune_tuning.dir/deadline_allocator.cc.o"
  "CMakeFiles/htune_tuning.dir/deadline_allocator.cc.o.d"
  "CMakeFiles/htune_tuning.dir/evaluator.cc.o"
  "CMakeFiles/htune_tuning.dir/evaluator.cc.o.d"
  "CMakeFiles/htune_tuning.dir/even_allocator.cc.o"
  "CMakeFiles/htune_tuning.dir/even_allocator.cc.o.d"
  "CMakeFiles/htune_tuning.dir/group_latency_table.cc.o"
  "CMakeFiles/htune_tuning.dir/group_latency_table.cc.o.d"
  "CMakeFiles/htune_tuning.dir/heterogeneous_allocator.cc.o"
  "CMakeFiles/htune_tuning.dir/heterogeneous_allocator.cc.o.d"
  "CMakeFiles/htune_tuning.dir/problem.cc.o"
  "CMakeFiles/htune_tuning.dir/problem.cc.o.d"
  "CMakeFiles/htune_tuning.dir/quantile.cc.o"
  "CMakeFiles/htune_tuning.dir/quantile.cc.o.d"
  "CMakeFiles/htune_tuning.dir/repetition_allocator.cc.o"
  "CMakeFiles/htune_tuning.dir/repetition_allocator.cc.o.d"
  "libhtune_tuning.a"
  "libhtune_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htune_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
