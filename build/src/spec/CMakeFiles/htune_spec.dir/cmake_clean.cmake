file(REMOVE_RECURSE
  "CMakeFiles/htune_spec.dir/job_spec.cc.o"
  "CMakeFiles/htune_spec.dir/job_spec.cc.o.d"
  "libhtune_spec.a"
  "libhtune_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htune_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
