# Empty dependencies file for htune_spec.
# This may be replaced when dependencies are built.
