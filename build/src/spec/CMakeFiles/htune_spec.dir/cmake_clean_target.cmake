file(REMOVE_RECURSE
  "libhtune_spec.a"
)
