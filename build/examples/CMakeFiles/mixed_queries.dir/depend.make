# Empty dependencies file for mixed_queries.
# This may be replaced when dependencies are built.
