file(REMOVE_RECURSE
  "CMakeFiles/mixed_queries.dir/mixed_queries.cpp.o"
  "CMakeFiles/mixed_queries.dir/mixed_queries.cpp.o.d"
  "mixed_queries"
  "mixed_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
