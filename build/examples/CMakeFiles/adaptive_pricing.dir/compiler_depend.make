# Empty compiler generated dependencies file for adaptive_pricing.
# This may be replaced when dependencies are built.
