file(REMOVE_RECURSE
  "CMakeFiles/adaptive_pricing.dir/adaptive_pricing.cpp.o"
  "CMakeFiles/adaptive_pricing.dir/adaptive_pricing.cpp.o.d"
  "adaptive_pricing"
  "adaptive_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
