file(REMOVE_RECURSE
  "CMakeFiles/crowd_query.dir/crowd_query.cpp.o"
  "CMakeFiles/crowd_query.dir/crowd_query.cpp.o.d"
  "crowd_query"
  "crowd_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
