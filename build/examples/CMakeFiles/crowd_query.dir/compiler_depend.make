# Empty compiler generated dependencies file for crowd_query.
# This may be replaced when dependencies are built.
