file(REMOVE_RECURSE
  "CMakeFiles/crowd_sort.dir/crowd_sort.cpp.o"
  "CMakeFiles/crowd_sort.dir/crowd_sort.cpp.o.d"
  "crowd_sort"
  "crowd_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
