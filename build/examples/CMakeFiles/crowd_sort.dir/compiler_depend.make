# Empty compiler generated dependencies file for crowd_sort.
# This may be replaced when dependencies are built.
