file(REMOVE_RECURSE
  "CMakeFiles/deadline_planner.dir/deadline_planner.cpp.o"
  "CMakeFiles/deadline_planner.dir/deadline_planner.cpp.o.d"
  "deadline_planner"
  "deadline_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
