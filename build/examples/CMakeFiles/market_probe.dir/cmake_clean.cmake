file(REMOVE_RECURSE
  "CMakeFiles/market_probe.dir/market_probe.cpp.o"
  "CMakeFiles/market_probe.dir/market_probe.cpp.o.d"
  "market_probe"
  "market_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
