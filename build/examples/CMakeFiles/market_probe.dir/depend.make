# Empty dependencies file for market_probe.
# This may be replaced when dependencies are built.
