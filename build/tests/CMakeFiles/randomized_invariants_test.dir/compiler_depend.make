# Empty compiler generated dependencies file for randomized_invariants_test.
# This may be replaced when dependencies are built.
