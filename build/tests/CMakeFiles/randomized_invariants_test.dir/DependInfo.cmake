
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/randomized_invariants_test.cc" "tests/CMakeFiles/randomized_invariants_test.dir/randomized_invariants_test.cc.o" "gcc" "tests/CMakeFiles/randomized_invariants_test.dir/randomized_invariants_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/probe/CMakeFiles/htune_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/htune_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/htune_control.dir/DependInfo.cmake"
  "/root/repo/build/src/crowddb/CMakeFiles/htune_crowddb.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/htune_market.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/htune_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/htune_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/htune_model.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/htune_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/htune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
