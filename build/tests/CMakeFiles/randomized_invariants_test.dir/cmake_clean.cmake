file(REMOVE_RECURSE
  "CMakeFiles/randomized_invariants_test.dir/randomized_invariants_test.cc.o"
  "CMakeFiles/randomized_invariants_test.dir/randomized_invariants_test.cc.o.d"
  "randomized_invariants_test"
  "randomized_invariants_test.pdb"
  "randomized_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
