# Empty compiler generated dependencies file for price_rate_curve_test.
# This may be replaced when dependencies are built.
