file(REMOVE_RECURSE
  "CMakeFiles/price_rate_curve_test.dir/price_rate_curve_test.cc.o"
  "CMakeFiles/price_rate_curve_test.dir/price_rate_curve_test.cc.o.d"
  "price_rate_curve_test"
  "price_rate_curve_test.pdb"
  "price_rate_curve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/price_rate_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
