# Empty dependencies file for crowddb_test.
# This may be replaced when dependencies are built.
