file(REMOVE_RECURSE
  "CMakeFiles/crowddb_test.dir/crowddb_test.cc.o"
  "CMakeFiles/crowddb_test.dir/crowddb_test.cc.o.d"
  "crowddb_test"
  "crowddb_test.pdb"
  "crowddb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowddb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
