file(REMOVE_RECURSE
  "CMakeFiles/cross_properties_test.dir/cross_properties_test.cc.o"
  "CMakeFiles/cross_properties_test.dir/cross_properties_test.cc.o.d"
  "cross_properties_test"
  "cross_properties_test.pdb"
  "cross_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
