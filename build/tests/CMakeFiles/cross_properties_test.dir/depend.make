# Empty dependencies file for cross_properties_test.
# This may be replaced when dependencies are built.
