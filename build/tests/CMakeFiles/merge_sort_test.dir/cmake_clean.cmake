file(REMOVE_RECURSE
  "CMakeFiles/merge_sort_test.dir/merge_sort_test.cc.o"
  "CMakeFiles/merge_sort_test.dir/merge_sort_test.cc.o.d"
  "merge_sort_test"
  "merge_sort_test.pdb"
  "merge_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
