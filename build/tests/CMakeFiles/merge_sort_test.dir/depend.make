# Empty dependencies file for merge_sort_test.
# This may be replaced when dependencies are built.
