# Empty compiler generated dependencies file for even_allocator_test.
# This may be replaced when dependencies are built.
