file(REMOVE_RECURSE
  "CMakeFiles/even_allocator_test.dir/even_allocator_test.cc.o"
  "CMakeFiles/even_allocator_test.dir/even_allocator_test.cc.o.d"
  "even_allocator_test"
  "even_allocator_test.pdb"
  "even_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/even_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
