file(REMOVE_RECURSE
  "CMakeFiles/deadline_allocator_test.dir/deadline_allocator_test.cc.o"
  "CMakeFiles/deadline_allocator_test.dir/deadline_allocator_test.cc.o.d"
  "deadline_allocator_test"
  "deadline_allocator_test.pdb"
  "deadline_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
