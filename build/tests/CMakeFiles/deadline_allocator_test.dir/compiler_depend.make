# Empty compiler generated dependencies file for deadline_allocator_test.
# This may be replaced when dependencies are built.
