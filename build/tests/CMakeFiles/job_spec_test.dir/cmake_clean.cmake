file(REMOVE_RECURSE
  "CMakeFiles/job_spec_test.dir/job_spec_test.cc.o"
  "CMakeFiles/job_spec_test.dir/job_spec_test.cc.o.d"
  "job_spec_test"
  "job_spec_test.pdb"
  "job_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
