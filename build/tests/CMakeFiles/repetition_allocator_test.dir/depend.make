# Empty dependencies file for repetition_allocator_test.
# This may be replaced when dependencies are built.
