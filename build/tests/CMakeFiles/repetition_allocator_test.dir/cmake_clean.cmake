file(REMOVE_RECURSE
  "CMakeFiles/repetition_allocator_test.dir/repetition_allocator_test.cc.o"
  "CMakeFiles/repetition_allocator_test.dir/repetition_allocator_test.cc.o.d"
  "repetition_allocator_test"
  "repetition_allocator_test.pdb"
  "repetition_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repetition_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
