file(REMOVE_RECURSE
  "CMakeFiles/market_extensions_test.dir/market_extensions_test.cc.o"
  "CMakeFiles/market_extensions_test.dir/market_extensions_test.cc.o.d"
  "market_extensions_test"
  "market_extensions_test.pdb"
  "market_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
