# Empty dependencies file for market_extensions_test.
# This may be replaced when dependencies are built.
