# Empty compiler generated dependencies file for adaptive_retuner_test.
# This may be replaced when dependencies are built.
