file(REMOVE_RECURSE
  "CMakeFiles/adaptive_retuner_test.dir/adaptive_retuner_test.cc.o"
  "CMakeFiles/adaptive_retuner_test.dir/adaptive_retuner_test.cc.o.d"
  "adaptive_retuner_test"
  "adaptive_retuner_test.pdb"
  "adaptive_retuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_retuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
