# Empty compiler generated dependencies file for kaplan_meier_test.
# This may be replaced when dependencies are built.
