file(REMOVE_RECURSE
  "CMakeFiles/kaplan_meier_test.dir/kaplan_meier_test.cc.o"
  "CMakeFiles/kaplan_meier_test.dir/kaplan_meier_test.cc.o.d"
  "kaplan_meier_test"
  "kaplan_meier_test.pdb"
  "kaplan_meier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kaplan_meier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
