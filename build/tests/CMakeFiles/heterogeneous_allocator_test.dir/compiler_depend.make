# Empty compiler generated dependencies file for heterogeneous_allocator_test.
# This may be replaced when dependencies are built.
