file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_allocator_test.dir/heterogeneous_allocator_test.cc.o"
  "CMakeFiles/heterogeneous_allocator_test.dir/heterogeneous_allocator_test.cc.o.d"
  "heterogeneous_allocator_test"
  "heterogeneous_allocator_test.pdb"
  "heterogeneous_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
