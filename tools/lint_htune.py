#!/usr/bin/env python3
"""htune invariant linter: repo-specific rules the generic tools can't check.

The tuning stack's evaluation is only reproducible because every run is
bitwise-deterministic; clang-tidy and -Wthread-safety enforce generic
hygiene, but the invariants below are htune-specific, so they get a
dedicated (pure-stdlib) linter. Rules:

  nondeterminism   No wall-clock/random seeds in src/: std::random_device,
                   rand()/srand(), time()/gettimeofday/clock(),
                   std::chrono::system_clock. Simulated time and the
                   seeded xoshiro/SplitMix64 streams are the only sources
                   of "randomness"; steady_clock is allowed (timing
                   spans, never data).
  unordered-iter   No iteration over an unordered container declared in
                   the same file: iteration order is
                   implementation-defined, so a loop feeding serialized
                   or exported output silently breaks the bitwise
                   replay/export contract. Order-independent loops
                   (pure counting/clearing) carry a suppression with a
                   justification.
  market-obs       No observability macros (HTUNE_OBS_*) inside
                   src/market/: the simulator is replayed record-by-
                   record during crash recovery, and instrumentation in
                   the replayed region would observe double counts
                   (metrics publish from control/market_metrics.h
                   instead).
  market-node-map  No node-based ordered containers (std::map, std::set,
                   their multi variants, or their includes) in
                   src/market/: the simulator's hot loop was rewritten
                   onto the flat TaskStore / calendar queue precisely to
                   kill per-node allocation and pointer chasing, and a
                   node map reintroduced anywhere in the engine tends to
                   creep back into a per-event path. Use TaskStore, the
                   on-hold index, sorted vectors, or (for untrusted-id
                   bookkeeping) unordered_map.
  raw-mutex        No raw std synchronization types outside
                   src/common/mutex.h: only the annotated htune wrappers
                   carry Clang capability attributes, so a raw
                   std::mutex is invisible to -Wthread-safety.
  raw-retry        No hand-rolled retry loops or sleeps in src/ outside
                   src/resilience/: ad-hoc `for (attempt...)` loops skip
                   the bounded-attempt/backoff/jitter contract (and its
                   resilience.* counters), and any real sleep blocks the
                   simulated clock. Wrap the operation in
                   htune::RetryTransient (resilience/policy.h) instead;
                   backoff is charged in simulated seconds.
  fleet-lifecycle  No direct fleet-lifecycle mutations in src/ outside
                   src/fleet/ and the manifest codec itself
                   (src/durability/manifest.{h,cc}): a FleetJobState
                   assignment or a raw FleetManifest::AppendState call
                   anywhere else bypasses FleetSupervisor's transition
                   helpers — the single durable mutation path that keeps
                   the in-memory job table, the manifest, and the
                   fleet.jobs_* gauges consistent. Comparisons against
                   FleetJobState values are fine.

Suppressions: append `// htune-lint: allow(<rule>) <reason>` on the
offending line or the line above it. A file-level
`// htune-lint: allow-file(<rule>) <reason>` anywhere in the file
disables the rule for the whole file.

Usage: lint_htune.py [paths...]   (default: src/ and tools/ of the repo)
Exit codes: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CXX_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")

ALLOW_RE = re.compile(r"htune-lint:\s*allow\(([\w-]+)\)")
ALLOW_FILE_RE = re.compile(r"htune-lint:\s*allow-file\(([\w-]+)\)")

NONDETERMINISM_PATTERNS = [
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday"),
    (re.compile(r"\bclock\s*\(\s*\)"), "clock()"),
    (re.compile(r"std::chrono::system_clock"), "std::chrono::system_clock"),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+(\w+)"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*?):([^;]*?)\)")

RAW_SYNC_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b"
)

OBS_MACRO_RE = re.compile(r"\bHTUNE_OBS_\w+")

NODE_MAP_RE = re.compile(
    r"\bstd::(?:map|set|multimap|multiset)\s*<|#\s*include\s*<(?:map|set)>"
)

SLEEP_RE = re.compile(
    r"\b(?:sleep_for|sleep_until|usleep|nanosleep|sleep)\s*\("
)
RETRY_LOOP_RE = re.compile(
    r"\b(?:while|for)\s*\([^)]*\b(?:retry|retries|attempt|attempts|"
    r"backoff)\b"
)

# An `=` directly followed by a FleetJobState value, excluding `==`/`!=`
# (and `<=`/`>=`) comparisons: only assignments mutate lifecycle state.
FLEET_STATE_ASSIGN_RE = re.compile(r"(?<![=!<>])=\s*FleetJobState::")
APPEND_STATE_RE = re.compile(r"\bAppendState\s*\(")

RULES = {
    "nondeterminism": "no wall-clock/ambient-random sources in src/",
    "unordered-iter": "no iteration over unordered containers "
                      "(implementation-defined order)",
    "market-obs": "no HTUNE_OBS_* macros in src/market/ "
                  "(replay double-count hazard)",
    "market-node-map": "no node-based std::map/std::set in src/market/ "
                       "(per-node allocation in the event engine; use "
                       "TaskStore/flat arrays)",
    "raw-mutex": "no raw std synchronization outside common/mutex.h "
                 "(invisible to -Wthread-safety)",
    "raw-retry": "no hand-rolled retry loops or sleeps outside "
                 "src/resilience/ (use htune::RetryTransient)",
    "fleet-lifecycle": "no FleetJobState assignments or raw AppendState "
                       "calls outside src/fleet/ and the manifest codec "
                       "(go through FleetSupervisor's transition helpers)",
    "stale-suppression": "every allow()/allow-file() must name a known "
                         "rule and suppress at least one finding; stale "
                         "entries would silently hide future violations "
                         "(not itself suppressible)",
}


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(lines):
    """Returns lines with comments and string/char literals blanked out
    (same length is not preserved; only match/no-match matters). Keeps a
    crude state machine for /* */ blocks; raw strings are rare in this
    repo and treated as plain strings."""
    stripped = []
    in_block = False
    for line in lines:
        out = []
        i = 0
        in_str = None  # quote char when inside a literal
        while i < len(line):
            ch = line[i]
            nxt = line[i + 1] if i + 1 < len(line) else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    i += 2
                    continue
                i += 1
                continue
            if in_str:
                if ch == "\\":
                    i += 2
                    continue
                if ch == in_str:
                    in_str = None
                i += 1
                continue
            if ch == "/" and nxt == "/":
                break  # rest of line is a comment
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                in_str = ch
                out.append(ch)
                i += 1
                continue
            out.append(ch)
            i += 1
        stripped.append("".join(out))
    return stripped


def _collect_suppressions(lines):
    """All suppression annotations in a file: ({(line_idx, rule), ...}
    for `allow`, {rule: line_idx} for `allow-file`)."""
    line_allows = set()
    file_allows = {}
    for idx, line in enumerate(lines):
        for m in ALLOW_RE.finditer(line):
            line_allows.add((idx, m.group(1)))
        for m in ALLOW_FILE_RE.finditer(line):
            file_allows.setdefault(m.group(1), idx)
    return line_allows, file_allows


def lint_text(text, virtual_path):
    """Lints one file's content under the rules that apply to
    `virtual_path` (a path relative to the repo root, '/'-separated).
    Returns a list of Findings."""
    path = virtual_path.replace(os.sep, "/")
    if not path.endswith(CXX_EXTENSIONS):
        return []
    in_src = path.startswith("src/")
    lines = text.splitlines()
    code = strip_code(lines)
    line_allows, file_allows = _collect_suppressions(lines)
    used_line = set()
    used_file = set()

    findings = []

    def add(idx, rule, message):
        if rule in file_allows:
            used_file.add(rule)
            return
        for probe in (idx, idx - 1):
            if (probe, rule) in line_allows:
                used_line.add((probe, rule))
                return
        findings.append(Finding(path, idx + 1, rule, message))

    if in_src:
        for idx, line in enumerate(code):
            for pattern, what in NONDETERMINISM_PATTERNS:
                if pattern.search(line):
                    add(idx, "nondeterminism",
                        f"{what} is nondeterministic across runs; use the "
                        "seeded rng/ streams or simulated time")

    if in_src and path != "src/common/mutex.h":
        for idx, line in enumerate(code):
            if RAW_SYNC_RE.search(line):
                add(idx, "raw-mutex",
                    "raw std synchronization is invisible to "
                    "-Wthread-safety; use htune::Mutex/SharedMutex/"
                    "MutexLock (common/mutex.h)")

    if in_src and not path.startswith("src/resilience/"):
        for idx, line in enumerate(code):
            if SLEEP_RE.search(line):
                add(idx, "raw-retry",
                    "real sleeps block the simulated clock; charge "
                    "backoff in simulated seconds via "
                    "htune::RetryTransient (resilience/policy.h)")
            elif RETRY_LOOP_RE.search(line):
                add(idx, "raw-retry",
                    "hand-rolled retry loop skips the bounded-attempt/"
                    "backoff/jitter contract; wrap the operation in "
                    "htune::RetryTransient (resilience/policy.h)")

    if in_src and not path.startswith("src/fleet/") and path not in (
            "src/durability/manifest.h", "src/durability/manifest.cc"):
        for idx, line in enumerate(code):
            if APPEND_STATE_RE.search(line):
                add(idx, "fleet-lifecycle",
                    "raw FleetManifest::AppendState bypasses "
                    "FleetSupervisor's transition helpers (the single "
                    "durable lifecycle mutation path); route the state "
                    "change through the supervisor")
            elif FLEET_STATE_ASSIGN_RE.search(line):
                add(idx, "fleet-lifecycle",
                    "direct FleetJobState assignment bypasses "
                    "FleetSupervisor's transition helpers; lifecycle "
                    "state must change through the supervisor so the "
                    "manifest and gauges stay consistent")

    if path.startswith("src/market/"):
        for idx, line in enumerate(code):
            if OBS_MACRO_RE.search(line):
                add(idx, "market-obs",
                    "observability macros in the simulator double-count "
                    "under crash-recovery replay; publish via "
                    "control/market_metrics.h")
            if NODE_MAP_RE.search(line):
                add(idx, "market-node-map",
                    "node-based ordered containers allocate per element "
                    "and chase pointers in the event engine; use "
                    "TaskStore, the on-hold index, a sorted vector, or "
                    "unordered_map for untrusted-id bookkeeping")

    unordered_names = set()
    for line in code:
        for m in UNORDERED_DECL_RE.finditer(line):
            name = m.group(1)
            if name not in ("map", "set"):  # type aliases, not variables
                unordered_names.add(name)
    if unordered_names:
        for idx, line in enumerate(code):
            for m in RANGE_FOR_RE.finditer(line):
                target = m.group(2).strip()
                leaf = re.split(r"[.>]", target)[-1].strip(" &*()")
                if leaf in unordered_names:
                    add(idx, "unordered-iter",
                        f"iterating '{leaf}' (unordered container) has "
                        "implementation-defined order; sort first or "
                        "suppress with a justification if order cannot "
                        "reach serialized/exported output")

    # Suppression hygiene: an annotation that names an unknown rule, or
    # that no finding above consumed, is stale — it would silently hide
    # the next real violation at that site. Not itself suppressible.
    for idx, rule in sorted(line_allows):
        if rule not in RULES or rule == "stale-suppression":
            findings.append(Finding(
                path, idx + 1, "stale-suppression",
                f"allow({rule}) names an unknown rule; see --list-rules"))
        elif (idx, rule) not in used_line:
            findings.append(Finding(
                path, idx + 1, "stale-suppression",
                f"allow({rule}) no longer suppresses any finding; remove "
                f"the stale annotation"))
    for rule, idx in sorted(file_allows.items(), key=lambda kv: kv[1]):
        if rule not in RULES or rule == "stale-suppression":
            findings.append(Finding(
                path, idx + 1, "stale-suppression",
                f"allow-file({rule}) names an unknown rule; see "
                f"--list-rules"))
        elif rule not in used_file:
            findings.append(Finding(
                path, idx + 1, "stale-suppression",
                f"allow-file({rule}) no longer suppresses any finding; "
                f"remove the stale annotation"))

    return findings


def iter_files(paths):
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(CXX_EXTENSIONS):
                        yield os.path.join(dirpath, name)
        else:
            raise FileNotFoundError(path)


def lint_paths(paths, root=REPO_ROOT):
    findings = []
    for filepath in iter_files(paths):
        rel = os.path.relpath(os.path.abspath(filepath), root)
        with open(filepath, encoding="utf-8", errors="replace") as f:
            text = f.read()
        findings.extend(lint_text(text, rel))
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="htune-specific determinism/locking invariant linter")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/ and tools/)")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repo root for rule scoping (default: the "
                             "checkout containing this script)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}: {description}")
        return 0

    paths = args.paths or [os.path.join(args.root, "src"),
                           os.path.join(args.root, "tools")]
    try:
        findings = lint_paths(paths, root=args.root)
    except FileNotFoundError as err:
        print(f"lint_htune: no such path: {err}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_htune: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
