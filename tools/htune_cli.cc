// htune_cli — plan and simulate crowdsourcing budget allocations from a
// job-spec file.
//
//   htune_cli plan <spec> [--allocator=ra|ra-exact|ha|ea|rep-even|task-even]
//   htune_cli deadline <spec> <deadline> [--objective=ph1|most-difficult]
//   htune_cli simulate <spec> [--allocator=...] [--runs=N]
//   htune_cli run-durable <spec> --journal=PATH [--budget=N]
//                                [--snapshot-interval=N]
//   htune_cli run-fleet <fleet-spec> --dir=PATH [--max-running=N]
//   htune_cli resume-fleet --dir=PATH [--max-running=N] [--resume-parked]
//   htune_cli serve <fleet-spec> --dir=PATH --socket=PATH [--max-running=N]
//   htune_cli submit-jobs <fleet-spec> --socket=PATH [--run] [--shutdown]
//   htune_cli scrape --socket=PATH [--out=PATH]
//
// Every command accepts --metrics=PATH: after the command finishes, the
// observability registry (counters/gauges/histograms) and the span ring are
// exported as schema-versioned JSON to PATH, or as a human-readable table to
// stdout when PATH is "-". See DESIGN.md §8.
//
// The spec format is documented in src/spec/job_spec.h (and the paper
// mapping in DESIGN.md).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "control/fault_tolerant_executor.h"
#include "control/market_metrics.h"
#include "crowddb/executor.h"
#include "model/latency_cache.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "durability/journal.h"
#include "market/simulator.h"
#include "market/trace_io.h"
#include "fleet/supervisor.h"
#include "platform/server.h"
#include "platform/service.h"
#include "platform/wire.h"
#include "spec/fleet_spec.h"
#include "spec/job_spec.h"
#include "stats/descriptive.h"
#include "tuning/baselines.h"
#include "tuning/deadline_allocator.h"
#include "tuning/evaluator.h"
#include "tuning/even_allocator.h"
#include "tuning/heterogeneous_allocator.h"
#include "tuning/quantile.h"
#include "tuning/repetition_allocator.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s plan <spec> [--allocator=NAME]\n"
      "  %s deadline <spec> <deadline> [--objective=ph1|most-difficult]\n"
      "                               [--confidence=Q] (probabilistic: min\n"
      "                               cost with P(job done by deadline)>=Q)\n"
      "  %s simulate <spec> [--allocator=NAME] [--runs=N]\n"
      "  %s run-durable <spec> --journal=PATH [--budget=N]\n"
      "                               [--snapshot-interval=N] (fault-\n"
      "                               tolerant run journaled to PATH; re-run\n"
      "                               the same command after a crash to\n"
      "                               resume from the last snapshot)\n"
      "  %s run-fleet <fleet-spec> --dir=PATH [--max-running=N]\n"
      "                               (submit every job of the fleet spec\n"
      "                               and run them to completion; the fleet\n"
      "                               manifest and per-job journals live\n"
      "                               under PATH)\n"
      "  %s resume-fleet --dir=PATH [--max-running=N] [--resume-parked]\n"
      "                               (recover a killed fleet: finished jobs\n"
      "                               are not re-run, interrupted jobs\n"
      "                               resume from their journals)\n"
      "  %s serve <fleet-spec> --dir=PATH --socket=PATH [--max-running=N]\n"
      "                               (shared-market tuning service: jobs\n"
      "                               submitted over the socket compete for\n"
      "                               one worker stream; interrupted work\n"
      "                               resumes on startup)\n"
      "  %s submit-jobs <fleet-spec> --socket=PATH [--run] [--shutdown]\n"
      "  %s scrape --socket=PATH [--out=PATH]\n"
      "allocators: ra (default), ra-exact, ha, ea, rep-even, task-even\n"
      "every command accepts --metrics=PATH (JSON; '-' prints a table)\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0);
}

std::unique_ptr<htune::BudgetAllocator> MakeAllocator(
    const std::string& name) {
  if (name == "ra") return std::make_unique<htune::RepetitionAllocator>();
  if (name == "ra-exact") {
    return std::make_unique<htune::RepetitionAllocator>(
        htune::RepetitionAllocator::Mode::kExactDp);
  }
  if (name == "ha") return std::make_unique<htune::HeterogeneousAllocator>();
  if (name == "ea") return std::make_unique<htune::EvenAllocator>();
  if (name == "rep-even") return std::make_unique<htune::RepEvenAllocator>();
  if (name == "task-even") {
    return std::make_unique<htune::TaskEvenAllocator>();
  }
  return nullptr;
}

std::string FlagValue(int argc, char** argv, const std::string& flag,
                      const std::string& fallback) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

/// The problem the tuners should solve: abandonment-corrected when the spec
/// declares a fault model, the spec's own problem otherwise.
htune::TuningProblem TunedProblem(const htune::JobSpec& spec) {
  return htune::ProblemWithAbandonment(
      spec.problem, {spec.abandon_prob, spec.abandon_hold_rate});
}

int Plan(const htune::JobSpec& spec, const std::string& allocator_name) {
  const auto allocator = MakeAllocator(allocator_name);
  if (allocator == nullptr) {
    std::fprintf(stderr, "unknown allocator '%s'\n", allocator_name.c_str());
    return 2;
  }
  const htune::TuningProblem problem = TunedProblem(spec);
  const auto alloc = allocator->Allocate(problem);
  if (!alloc.ok()) {
    std::fprintf(stderr, "%s\n", alloc.status().ToString().c_str());
    return 1;
  }
  std::printf("allocator : %s\n", allocator->Name().c_str());
  if (spec.abandon_prob > 0.0) {
    std::printf("fault model: abandon_prob %.3f, hold rate %.3f "
                "(rates renewal-corrected)\n",
                spec.abandon_prob, spec.abandon_hold_rate);
  }
  std::printf("allocation: %s\n", alloc->ToString().c_str());
  std::printf("cost      : %ld of %ld budget units\n", alloc->TotalCost(),
              problem.budget);
  std::printf("E[phase-1 latency of the job]: %.4f\n",
              htune::ExpectedPhase1Latency(problem, *alloc));
  const auto per_group =
      htune::ExpectedPhase1GroupLatencies(problem, *alloc);
  for (size_t g = 0; g < problem.groups.size(); ++g) {
    const htune::TaskGroup& group = problem.groups[g];
    std::printf(
        "  %-24s E[phase-1] %.4f + E[phase-2] %.4f per task\n",
        group.name.c_str(), per_group[g],
        group.repetitions / group.processing_rate);
  }
  return 0;
}

int Deadline(const htune::JobSpec& spec, double deadline,
             const std::string& objective_name, double confidence) {
  const htune::TuningProblem problem = TunedProblem(spec);
  htune::StatusOr<htune::DeadlinePlan> plan =
      htune::InvalidArgumentError("unset");
  std::string describes;
  if (confidence > 0.0) {
    plan = htune::SolveQuantileDeadline(problem, deadline, confidence);
    describes = "P(job done)";
  } else if (objective_name == "ph1") {
    plan = htune::SolveDeadline(problem, deadline,
                                htune::DeadlineObjective::kPhase1Sum);
    describes = "E[phase-1 sum]";
  } else if (objective_name == "most-difficult") {
    plan = htune::SolveDeadline(problem, deadline,
                                htune::DeadlineObjective::kMostDifficult);
    describes = "E[most difficult task]";
  } else {
    std::fprintf(stderr, "unknown objective '%s'\n", objective_name.c_str());
    return 2;
  }
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("cheapest plan meeting deadline %.4f:\n", deadline);
  for (size_t g = 0; g < spec.problem.groups.size(); ++g) {
    std::printf("  %-24s %d units per repetition\n",
                spec.problem.groups[g].name.c_str(), plan->prices[g]);
  }
  std::printf("cost %ld units, achieves %s = %.4f\n", plan->cost,
              describes.c_str(), plan->achieved);
  return 0;
}

int Simulate(const htune::JobSpec& spec, const std::string& allocator_name,
             int runs) {
  const auto allocator = MakeAllocator(allocator_name);
  if (allocator == nullptr) {
    std::fprintf(stderr, "unknown allocator '%s'\n", allocator_name.c_str());
    return 2;
  }
  // Tune against the corrected rates, but post with the raw curves: the
  // market applies abandonment itself.
  const auto alloc = allocator->Allocate(TunedProblem(spec));
  if (!alloc.ok()) {
    std::fprintf(stderr, "%s\n", alloc.status().ToString().c_str());
    return 1;
  }
  htune::RunningStats latency;
  for (int r = 0; r < runs; ++r) {
    htune::MarketConfig config;
    config.worker_arrival_rate = spec.arrival_rate;
    config.worker_error_prob = spec.worker_error_prob;
    config.abandon_prob = spec.abandon_prob;
    config.abandon_hold_rate = spec.abandon_hold_rate;
    config.seed = spec.seed + static_cast<uint64_t>(r);
    config.record_trace = false;
    htune::MarketSimulator market(config);
    const std::vector<htune::QuestionSpec> questions(
        static_cast<size_t>(spec.problem.TotalTasks()));
    const auto run =
        htune::ExecuteJob(market, spec.problem, *alloc, questions);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    latency.Add(run->latency);
    htune::PublishMarketMetrics(market);
    if (r == 0) {
      const auto summary =
          htune::SummarizeOutcomes(market.CompletedOutcomes());
      if (summary.ok()) {
        std::printf("first run: %s\n",
                    htune::SummaryToString(*summary).c_str());
      }
    }
  }
  std::printf("%s over %d runs: mean job latency %.4f (+/- %.4f se)\n",
              allocator->Name().c_str(), runs, latency.Mean(),
              latency.StdError());
  return 0;
}

int RunDurable(const htune::JobSpec& spec, const std::string& journal_path,
               long ceiling, int snapshot_interval) {
  if (journal_path.empty()) {
    std::fprintf(stderr, "run-durable requires --journal=PATH\n");
    return 2;
  }
  htune::FileJournalStorage storage(journal_path);
  const auto existing = htune::OpenJournal(storage);
  if (!existing.ok()) {
    std::fprintf(stderr, "%s\n", existing.status().ToString().c_str());
    return 1;
  }
  if (existing->records.empty()) {
    std::printf("journal %s: fresh run\n", journal_path.c_str());
  } else {
    std::printf("journal %s: resuming with %zu intact records%s\n",
                journal_path.c_str(), existing->records.size(),
                existing->truncated_tail ? " (torn tail dropped)" : "");
  }

  const htune::RepetitionAllocator allocator;
  htune::FaultTolerantConfig config;
  config.budget = ceiling;
  config.abandonment = {spec.abandon_prob, spec.abandon_hold_rate};
  const htune::FaultTolerantExecutor executor(&allocator, config);

  htune::MarketConfig market;
  market.worker_arrival_rate = spec.arrival_rate;
  market.worker_error_prob = spec.worker_error_prob;
  market.abandon_prob = spec.abandon_prob;
  market.abandon_hold_rate = spec.abandon_hold_rate;
  market.seed = spec.seed;
  market.record_trace = true;

  htune::DurabilityConfig durability;
  durability.storage = &storage;
  durability.snapshot_interval = snapshot_interval;
  const std::vector<htune::QuestionSpec> questions(
      static_cast<size_t>(spec.problem.TotalTasks()));
  const auto report = executor.RunDurable(market, spec.problem, questions,
                                          durability);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "job latency %.4f, spent %ld units, %d reviews, %d stragglers, "
      "%d escalations%s\n",
      report->latency, report->spent, report->reviews, report->stragglers,
      report->escalations, report->degraded ? " (degraded)" : "");
  const auto final_journal = htune::OpenJournal(storage);
  if (final_journal.ok()) {
    std::printf("journal now holds %zu records (%llu bytes); verify with "
                "tools/journal_inspect.py\n",
                final_journal->records.size(),
                static_cast<unsigned long long>(final_journal->valid_bytes));
  }
  return 0;
}

void PrintFleetOutcome(const htune::FleetSupervisor& fleet,
                       const htune::FleetRunStats& stats) {
  std::printf(
      "fleet: %d dispatched, %d completed, %d restarts, %d quarantined, "
      "%d watchdog parks, %d exhausted parks, %d breaker parks\n",
      stats.dispatched, stats.completed, stats.restarts, stats.quarantined,
      stats.watchdog_parks, stats.exhausted_parks, stats.breaker_parks);
  for (const auto& [job_id, entry] : fleet.jobs()) {
    std::printf("  job %-6llu %-24s %-11s restarts %d  journal %llu B%s%s\n",
                static_cast<unsigned long long>(job_id),
                entry.spec.name.c_str(),
                std::string(htune::FleetJobStateToString(entry.state)).c_str(),
                entry.restarts,
                static_cast<unsigned long long>(entry.journal_bytes),
                entry.detail.empty() ? "" : "  ", entry.detail.c_str());
  }
}

int RunFleet(const std::string& fleet_spec_path, const std::string& dir,
             int max_running_override) {
  if (dir.empty()) {
    std::fprintf(stderr, "run-fleet requires --dir=PATH\n");
    return 2;
  }
  const auto fleet_spec = htune::LoadFleetSpec(fleet_spec_path);
  if (!fleet_spec.ok()) {
    std::fprintf(stderr, "%s\n", fleet_spec.status().ToString().c_str());
    return 1;
  }
  htune::FileFleetStorage provider(dir);
  htune::FleetConfig config;
  config.max_running = max_running_override > 0 ? max_running_override
                                                : fleet_spec->max_running;
  config.max_admitted = fleet_spec->max_admitted;
  const htune::Status valid = htune::ValidateFleetConfig(config);
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 2;
  }
  htune::FleetSupervisor fleet(&provider, config);
  const htune::Status opened = fleet.Open();
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.ToString().c_str());
    return 1;
  }
  for (const htune::FleetJobSpec& job : fleet_spec->jobs) {
    const auto id = fleet.Submit(job);
    if (!id.ok()) {
      std::fprintf(stderr, "submit %s: %s\n", job.name.c_str(),
                   id.status().ToString().c_str());
      if (id.status().code() != htune::StatusCode::kResourceExhausted) {
        return 1;  // admission shedding is expected; anything else is not
      }
    }
  }
  std::printf("fleet %s: %zu jobs submitted, %d lanes\n", dir.c_str(),
              fleet_spec->jobs.size(), config.max_running);
  const auto stats = fleet.RunAll();
  if (!stats.ok()) {
    std::fprintf(stderr, "fleet died: %s\n",
                 stats.status().ToString().c_str());
    std::fprintf(stderr, "resume with: htune_cli resume-fleet --dir=%s\n",
                 dir.c_str());
    return 1;
  }
  PrintFleetOutcome(fleet, *stats);
  return 0;
}

int ResumeFleet(const std::string& dir, int max_running_override,
                bool resume_parked) {
  if (dir.empty()) {
    std::fprintf(stderr, "resume-fleet requires --dir=PATH\n");
    return 2;
  }
  htune::FileFleetStorage provider(dir);
  htune::FleetConfig config;
  if (max_running_override > 0) {
    config.max_running = max_running_override;
  }
  config.resume_parked = resume_parked;
  htune::FleetSupervisor fleet(&provider, config);
  const htune::Status recovered = fleet.Recover();
  if (!recovered.ok()) {
    std::fprintf(stderr, "%s\n", recovered.ToString().c_str());
    return 1;
  }
  if (!fleet.orphans().empty()) {
    std::printf("quarantined %zu orphan journal(s) with no manifest entry\n",
                fleet.orphans().size());
  }
  const auto stats = fleet.RunAll();
  if (!stats.ok()) {
    std::fprintf(stderr, "fleet died again: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  PrintFleetOutcome(fleet, *stats);
  return 0;
}

std::string WireError(const std::string& message) {
  return htune::SerializeWireObject({{"ok", "false"}, {"error", message}});
}

/// htune_serve: a long-running shared-market tuning service. The fleet
/// spec provides the [shared_market] knobs and admission caps; jobs arrive
/// as submit requests over the Unix-domain socket (one flat JSON object
/// per line, see src/platform/wire.h). If the fleet directory already
/// holds interrupted work (a previous serve was killed mid-run), it is
/// resumed to completion before the socket opens, so a restart alone is
/// the whole recovery story.
int Serve(const std::string& fleet_spec_path, const std::string& dir,
          const std::string& socket_path, int max_running_override) {
  if (dir.empty() || socket_path.empty()) {
    std::fprintf(stderr, "serve requires --dir=PATH and --socket=PATH\n");
    return 2;
  }
  const auto fleet_spec = htune::LoadFleetSpec(fleet_spec_path);
  if (!fleet_spec.ok()) {
    std::fprintf(stderr, "%s\n", fleet_spec.status().ToString().c_str());
    return 1;
  }
  htune::FileFleetStorage provider(dir);
  htune::FleetConfig config;
  config.max_running = max_running_override > 0 ? max_running_override
                                                : fleet_spec->max_running;
  config.max_admitted = fleet_spec->max_admitted;
  const htune::Status valid = htune::ValidateFleetConfig(config);
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 2;
  }
  htune::FleetSupervisor fleet(&provider, config);
  const htune::Status recovered = fleet.Recover();
  if (!recovered.ok()) {
    std::fprintf(stderr, "%s\n", recovered.ToString().c_str());
    return 1;
  }
  htune::SharedServiceConfig service_config;
  service_config.market = fleet_spec->shared_market;
  htune::SharedMarketService service(&provider, service_config);
  // Convenience: a serve spec may carry [job] sections; they seed a fresh
  // directory exactly once (a recovered fleet already knows its jobs).
  if (fleet.jobs().empty()) {
    for (const htune::FleetJobSpec& job : fleet_spec->jobs) {
      const auto id = fleet.Submit(job);
      if (!id.ok() &&
          id.status().code() != htune::StatusCode::kResourceExhausted) {
        std::fprintf(stderr, "submit %s: %s\n", job.name.c_str(),
                     id.status().ToString().c_str());
        return 1;
      }
    }
  }
  bool runnable = false;
  for (const auto& [job_id, entry] : fleet.jobs()) {
    (void)job_id;
    if (entry.state == htune::FleetJobState::kPending ||
        entry.state == htune::FleetJobState::kRunning) {
      runnable = true;
    }
  }
  if (runnable) {
    std::printf("serve: running %s's pending/interrupted jobs before "
                "accepting requests\n", dir.c_str());
    const auto stats = fleet.RunAllShared(&service);
    if (!stats.ok()) {
      std::fprintf(stderr, "fleet died during startup run: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    PrintFleetOutcome(fleet, *stats);
  }
  htune::UnixLineServer server(socket_path);
  const htune::Status listening = server.Listen();
  if (!listening.ok()) {
    std::fprintf(stderr, "%s\n", listening.ToString().c_str());
    return 1;
  }
  std::printf("serving fleet %s on %s\n", dir.c_str(), socket_path.c_str());
  std::fflush(stdout);
  bool fleet_died = false;
  const auto handler = [&](const std::string& line,
                           bool* shutdown) -> std::string {
    const auto request = htune::ParseWireObject(line);
    if (!request.ok()) {
      return WireError(request.status().ToString());
    }
    const std::string* cmd = htune::FindWireField(*request, "cmd");
    if (cmd == nullptr) {
      return WireError("missing 'cmd' field");
    }
    if (*cmd == "submit") {
      const std::string* spec_text =
          htune::FindWireField(*request, "spec_text");
      if (spec_text == nullptr) {
        return WireError("submit needs a 'spec_text' field");
      }
      const auto parsed_job = htune::ParseJobSpec(*spec_text);
      if (!parsed_job.ok()) {
        return WireError(parsed_job.status().ToString());
      }
      htune::FleetJobSpec job;
      job.spec_text = *spec_text;
      const auto field = [&](const char* key, const std::string& fallback) {
        const std::string* value = htune::FindWireField(*request, key);
        return value == nullptr ? fallback : *value;
      };
      job.name = field("name", "wire-job");
      job.priority = std::atoi(field("priority", "0").c_str());
      job.ceiling = std::atol(field("ceiling", "-1").c_str());
      job.seed_override = std::atol(field("seed_override", "-1").c_str());
      job.snapshot_interval =
          std::atoi(field("snapshot_interval", "8").c_str());
      const auto id = fleet.Submit(job);
      if (!id.ok()) {
        return WireError(id.status().ToString());
      }
      return htune::SerializeWireObject(
          {{"ok", "true"}, {"job_id", std::to_string(*id)}});
    }
    if (*cmd == "run") {
      if (fleet_died) {
        return WireError("fleet is dead; restart the server to recover");
      }
      const auto stats = fleet.RunAllShared(&service);
      if (!stats.ok()) {
        fleet_died = true;
        return WireError(stats.status().ToString());
      }
      return htune::SerializeWireObject(
          {{"ok", "true"},
           {"dispatched", std::to_string(stats->dispatched)},
           {"completed", std::to_string(stats->completed)},
           {"restarts", std::to_string(stats->restarts)},
           {"quarantined", std::to_string(stats->quarantined)}});
    }
    if (*cmd == "status") {
      htune::WireFields fields{{"ok", "true"}};
      for (const auto& [job_id, entry] : fleet.jobs()) {
        fields.emplace_back(
            "job_" + std::to_string(job_id),
            std::string(htune::FleetJobStateToString(entry.state)) +
                (entry.detail.empty() ? "" : " " + entry.detail));
      }
      return htune::SerializeWireObject(fields);
    }
    if (*cmd == "scrape") {
      const htune::obs::MetricsSnapshot snapshot =
          htune::obs::GlobalMetrics().Snapshot();
      // Spans are not drained: a scrape must not consume state another
      // scrape (or the exit-time --metrics export) still wants.
      const auto json = htune::obs::MetricsToJson(snapshot, {});
      if (!json.ok()) {
        return WireError(json.status().ToString());
      }
      const auto& counts = service.Counts();
      return htune::SerializeWireObject(
          {{"ok", "true"},
           {"gangs", std::to_string(counts.gangs)},
           {"jobs_completed", std::to_string(counts.jobs_completed)},
           {"reviews", std::to_string(counts.reviews)},
           {"snapshots", std::to_string(counts.snapshots)},
           {"resumes", std::to_string(counts.resumes)},
           {"metrics", *json}});
    }
    if (*cmd == "shutdown") {
      *shutdown = true;
      return htune::SerializeWireObject({{"ok", "true"}});
    }
    return WireError("unknown cmd '" + *cmd + "'");
  };
  const htune::Status served = server.Serve(handler);
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.ToString().c_str());
    return 1;
  }
  std::printf("serve: clean shutdown\n");
  return 0;
}

/// Client side of serve: submit every job of a fleet spec over the socket,
/// optionally asking the server to run the fleet and/or shut down after.
int SubmitJobs(const std::string& fleet_spec_path,
               const std::string& socket_path, bool run_after,
               bool shutdown_after) {
  if (socket_path.empty()) {
    std::fprintf(stderr, "submit-jobs requires --socket=PATH\n");
    return 2;
  }
  const auto fleet_spec = htune::LoadFleetSpec(fleet_spec_path);
  if (!fleet_spec.ok()) {
    std::fprintf(stderr, "%s\n", fleet_spec.status().ToString().c_str());
    return 1;
  }
  const auto request = [&](const htune::WireFields& fields) -> int {
    const auto reply =
        htune::SendUnixRequest(socket_path,
                               htune::SerializeWireObject(fields));
    if (!reply.ok()) {
      std::fprintf(stderr, "%s\n", reply.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", reply->c_str());
    const auto parsed = htune::ParseWireObject(*reply);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad reply: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    const std::string* ok = htune::FindWireField(*parsed, "ok");
    return ok != nullptr && *ok == "true" ? 0 : 1;
  };
  for (const htune::FleetJobSpec& job : fleet_spec->jobs) {
    const int rc = request(
        {{"cmd", "submit"},
         {"name", job.name},
         {"priority", std::to_string(job.priority)},
         {"ceiling", std::to_string(job.ceiling)},
         {"seed_override", std::to_string(job.seed_override)},
         {"snapshot_interval", std::to_string(job.snapshot_interval)},
         {"spec_text", job.spec_text}});
    if (rc != 0) {
      return rc;
    }
  }
  if (run_after) {
    const int rc = request({{"cmd", "run"}});
    if (rc != 0) {
      return rc;
    }
  }
  if (shutdown_after) {
    return request({{"cmd", "shutdown"}});
  }
  return 0;
}

/// One scrape round-trip: prints the server's metrics JSON to stdout (or
/// PATH) and the service counters to stderr.
int Scrape(const std::string& socket_path, const std::string& out_path) {
  if (socket_path.empty()) {
    std::fprintf(stderr, "scrape requires --socket=PATH\n");
    return 2;
  }
  const auto reply = htune::SendUnixRequest(
      socket_path, htune::SerializeWireObject({{"cmd", "scrape"}}));
  if (!reply.ok()) {
    std::fprintf(stderr, "%s\n", reply.status().ToString().c_str());
    return 1;
  }
  const auto parsed = htune::ParseWireObject(*reply);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad reply: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const std::string* ok = htune::FindWireField(*parsed, "ok");
  const std::string* metrics = htune::FindWireField(*parsed, "metrics");
  if (ok == nullptr || *ok != "true" || metrics == nullptr) {
    const std::string* error = htune::FindWireField(*parsed, "error");
    std::fprintf(stderr, "scrape failed: %s\n",
                 error != nullptr ? error->c_str() : reply->c_str());
    return 1;
  }
  for (const char* key :
       {"gangs", "jobs_completed", "reviews", "snapshots", "resumes"}) {
    const std::string* value = htune::FindWireField(*parsed, key);
    if (value != nullptr) {
      std::fprintf(stderr, "%s %s\n", key, value->c_str());
    }
  }
  if (out_path.empty() || out_path == "-") {
    std::printf("%s\n", metrics->c_str());
    return 0;
  }
  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(file, "%s\n", metrics->c_str());
  std::fclose(file);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage(argv[0]);
    return 2;
  }
  const std::string command = argv[1];
  const std::string metrics_path = FlagValue(argc, argv, "--metrics", "");
  int exit_code = 2;
  bool known_command = true;
  if (command == "serve" || command == "submit-jobs" ||
      command == "scrape") {
    const std::string socket_path = FlagValue(argc, argv, "--socket", "");
    if (command == "scrape") {
      exit_code = Scrape(socket_path, FlagValue(argc, argv, "--out", ""));
    } else {
      if (argc < 3 || argv[2][0] == '-') {
        std::fprintf(stderr, "%s requires a fleet spec path\n",
                     command.c_str());
        Usage(argv[0]);
        return 2;
      }
      if (command == "serve") {
        const int max_running =
            std::atoi(FlagValue(argc, argv, "--max-running", "0").c_str());
        exit_code = Serve(argv[2], FlagValue(argc, argv, "--dir", ""),
                          socket_path, max_running);
      } else {
        bool run_after = false;
        bool shutdown_after = false;
        for (int i = 2; i < argc; ++i) {
          if (std::strcmp(argv[i], "--run") == 0) run_after = true;
          if (std::strcmp(argv[i], "--shutdown") == 0) shutdown_after = true;
        }
        exit_code =
            SubmitJobs(argv[2], socket_path, run_after, shutdown_after);
      }
    }
    if (!metrics_path.empty()) {
      const htune::Status status =
          htune::obs::WriteGlobalMetrics(metrics_path);
      if (!status.ok()) {
        std::fprintf(stderr, "--metrics: %s\n", status.ToString().c_str());
        if (exit_code == 0) exit_code = 1;
      }
    }
    return exit_code;
  }
  if (command == "run-fleet" || command == "resume-fleet") {
    // Fleet commands take a fleet directory, not a job spec.
    const std::string dir = FlagValue(argc, argv, "--dir", "");
    const int max_running =
        std::atoi(FlagValue(argc, argv, "--max-running", "0").c_str());
    if (command == "run-fleet") {
      if (argc < 3 || argv[2][0] == '-') {
        std::fprintf(stderr, "run-fleet requires a fleet spec path\n");
        Usage(argv[0]);
        return 2;
      }
      exit_code = RunFleet(argv[2], dir, max_running);
    } else {
      bool resume_parked = false;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--resume-parked") == 0) {
          resume_parked = true;
        }
      }
      exit_code = ResumeFleet(dir, max_running, resume_parked);
    }
    if (!metrics_path.empty()) {
      const htune::Status status =
          htune::obs::WriteGlobalMetrics(metrics_path);
      if (!status.ok()) {
        std::fprintf(stderr, "--metrics: %s\n", status.ToString().c_str());
        if (exit_code == 0) exit_code = 1;
      }
    }
    return exit_code;
  }
  if (argc < 3) {
    Usage(argv[0]);
    return 2;
  }
  const auto spec = htune::LoadJobSpec(argv[2]);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  const std::string allocator_name =
      FlagValue(argc, argv, "--allocator", "ra");
  if (command == "plan") {
    exit_code = Plan(*spec, allocator_name);
  } else if (command == "deadline") {
    if (argc < 4) {
      Usage(argv[0]);
      return 2;
    }
    const double deadline = std::atof(argv[3]);
    const double confidence =
        std::atof(FlagValue(argc, argv, "--confidence", "0").c_str());
    exit_code =
        Deadline(*spec, deadline,
                 FlagValue(argc, argv, "--objective", "ph1"), confidence);
  } else if (command == "simulate") {
    const int runs = std::atoi(FlagValue(argc, argv, "--runs", "20").c_str());
    if (runs < 1) {
      std::fprintf(stderr, "--runs must be >= 1\n");
      return 2;
    }
    exit_code = Simulate(*spec, allocator_name, runs);
  } else if (command == "run-durable") {
    const long ceiling =
        std::atol(FlagValue(argc, argv, "--budget", "0").c_str());
    const int snapshot_interval = std::atoi(
        FlagValue(argc, argv, "--snapshot-interval", "8").c_str());
    exit_code = RunDurable(*spec, FlagValue(argc, argv, "--journal", ""),
                           ceiling, snapshot_interval);
  } else {
    known_command = false;
  }
  if (!known_command) {
    Usage(argv[0]);
    return 2;
  }
  if (!metrics_path.empty()) {
    htune::GlobalLatencyCache().PublishToMetrics();
    const htune::Status status = htune::obs::WriteGlobalMetrics(metrics_path);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics: %s\n", status.ToString().c_str());
      if (exit_code == 0) exit_code = 1;
    }
  }
  return exit_code;
}
