#!/usr/bin/env python3
"""Inspect an htune write-ahead journal or fleet manifest.

Usage:
  journal_inspect.py dump <journal>     # print every record, decoded
  journal_inspect.py verify <journal>   # exit 0 iff the journal is a
                                        # complete, uncorrupted run whose
                                        # payment ledger balances
  journal_inspect.py ledger <journal>   # print the per-task payment ledger
  journal_inspect.py manifest <file>    # dump a fleet manifest: every
                                        # record CRC-rechecked, then the
                                        # folded per-job fleet state

The binary format mirrors src/durability/journal.h:
  header:  b"HTWJ" magic + u32 LE format version
  record:  u32 LE payload length | u8 type | payload | u32 LE CRC-32C
The CRC covers length, type, and payload. Integers are little-endian;
doubles are IEEE-754 bit patterns. A fleet manifest (b"HTFM" magic, see
src/durability/manifest.h) shares the frame codec with job/state record
payloads. Snapshot records are decoded for both market-state codec
versions: v2 (8-byte NaN magic + u32 version, src/durability/snapshot.cc)
and the headerless v1. Pure stdlib — no third-party deps.
"""

import struct
import sys

MAGIC = b"HTWJ"
MANIFEST_MAGIC = b"HTFM"
VERSION = 1
HEADER_SIZE = 8
FRAME_OVERHEAD = 9  # u32 len + u8 type + u32 crc

# Market-state snapshot codec (src/durability/snapshot.cc): v2 blobs open
# with this quiet-NaN magic + a u32 version; v1 blobs start directly with
# the `now` double.
SNAPSHOT_MAGIC = 0xFFF7485453563200
SNAPSHOT_VERSION = 2

RECORD_TYPES = {
    1: "run-start",
    2: "post",
    3: "reprice",
    4: "payment",
    5: "completion",
    6: "review-end",
    7: "snapshot",
    8: "run-end",
}

# TraceEventKind (src/market/events.h): the worker-visible trace events
# serialized inside market-state snapshots.
TRACE_EVENT_KINDS = {
    0: "worker-arrival",
    1: "task-accepted",
    2: "repetition-completed",
    3: "task-completed",
    4: "abandoned",
    5: "expired",
    6: "reposted",
}

# MarketEvent::Kind (src/market/event_queue.h): the pending calendar
# events serialized inside market-state snapshots.
EVENT_KINDS = {
    0: "completion",
    1: "abandon",
    2: "expiry",
}

# CRC-32C (Castagnoli), reflected, poly 0x82F63B78 — matches
# src/durability/crc32c.cc.
_CRC_TABLE = []
for _i in range(256):
    _c = _i
    for _ in range(8):
        _c = (_c >> 1) ^ 0x82F63B78 if _c & 1 else _c >> 1
    _CRC_TABLE.append(_c)


def crc32c(data: bytes) -> int:
    crc = 0xFFFFFFFF
    for byte in data:
        crc = _CRC_TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


class Cursor:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ValueError("truncated payload")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self.take(8))[0]

    def i32(self) -> int:
        return struct.unpack("<i", self.take(4))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def string(self) -> bytes:
        return self.take(self.u64())

    def u8(self) -> int:
        return self.take(1)[0]

    def boolean(self) -> bool:
        return self.take(1)[0] != 0

    def i32_vector(self):
        return [self.i32() for _ in range(self.u64())]

    def f64_vector(self):
        return [self.f64() for _ in range(self.u64())]


def _decode_rep(c: Cursor) -> None:
    c.f64()  # posted_time
    c.f64()  # accepted_time
    c.f64()  # completed_time
    c.u64()  # worker
    c.i32()  # price
    c.i32()  # answer
    c.boolean()  # correct


def _decode_task_outcome(c: Cursor) -> None:
    c.u64()  # id
    c.f64()  # posted_time
    c.f64()  # completed_time
    for _ in range(c.u64()):
        _decode_rep(c)
    c.i32()  # abandoned_attempts
    c.i32()  # expired_posts
    c.i32()  # reposted_posts


def _decode_task(c: Cursor) -> None:
    c.u64()  # id
    c.i32()  # price_per_repetition
    c.i32()  # repetitions
    c.f64()  # on_hold_rate
    c.i32_vector()  # spec_prices
    c.f64_vector()  # spec_rates
    c.i32()  # spec_curve
    c.f64()  # processing_rate
    c.f64()  # acceptance_timeout
    c.i32()  # true_answer
    c.i32()  # num_options
    c.i32_vector()  # rep_prices
    c.f64_vector()  # rep_rates
    c.i32()  # effective_curve
    _decode_task_outcome(c)
    c.i32()  # next_repetition
    c.boolean()  # awaiting_acceptance
    c.f64()  # current_posted_time
    c.u64()  # exposure_generation
    c.i32()  # reprice_price
    c.f64()  # reprice_rate


def _kind_summary(kinds, table) -> str:
    counts = {}
    for kind in kinds:
        counts[kind] = counts.get(kind, 0) + 1
    return " ".join(f"{table.get(kind, f'kind-{kind}')}={counts[kind]}"
                    for kind in sorted(counts))


def describe_snapshot(market: bytes) -> str:
    """Version-sniffing summary of a market-state snapshot blob: the v2
    header when present (src/durability/snapshot.cc), else the headerless
    v1 layout. Both share the same body, which is decoded in full —
    pending calendar events and trace events are tallied per kind."""
    c = Cursor(market)
    try:
        version = 1
        if len(market) >= 8 and struct.unpack_from(
                "<Q", market)[0] == SNAPSHOT_MAGIC:
            c.u64()
            version = struct.unpack("<I", c.take(4))[0]
            if version != SNAPSHOT_VERSION:
                return f"v{version}: unsupported snapshot version"
        now = c.f64()
        c.f64()  # next_arrival_time
        c.u64()  # next_worker
        next_task = c.u64()
        event_sequence = c.u64()
        total_spent = c.i64()
        c.take(32)  # rng engine (4 xoshiro words)
        c.boolean()  # has_cached_normal
        c.f64()  # cached_normal
        event_kinds = []
        for _ in range(c.u64()):
            c.f64()  # time
            c.u64()  # sequence
            c.u64()  # task
            event_kinds.append(c.u8())
            c.u64()  # generation
        open_tasks = c.u64()
        for _ in range(open_tasks):
            _decode_task(c)
        completed = c.u64()
        for _ in range(completed):
            _decode_task_outcome(c)
        for _ in range(c.u64()):
            c.u64()  # completion_order entry
        trace_kinds = []
        for _ in range(c.u64()):
            c.f64()  # time
            trace_kinds.append(c.u8())
            c.u64()  # worker
            c.u64()  # task
            c.i32()  # repetition
        text = (f"v{version} now={now:.6f} tasks_created={next_task} "
                f"events_seen={event_sequence} spent={total_spent} "
                f"open={open_tasks} completed={completed} "
                f"queue=[{_kind_summary(event_kinds, EVENT_KINDS)}] "
                f"trace=[{_kind_summary(trace_kinds, TRACE_EVENT_KINDS)}]")
        if c.pos != len(market):
            text += f" <{len(market) - c.pos} trailing bytes>"
        return text
    except ValueError:
        return f"<malformed snapshot, {len(market)} bytes>"


def describe(rtype: int, payload: bytes) -> str:
    """Human rendering of one record payload; never raises on garbage."""
    c = Cursor(payload)
    try:
        if rtype == 1:
            return f"budget={c.i64()} tasks={c.u64()}"
        if rtype == 2:
            return (f"task={c.u64()} group={c.u64()} "
                    f"prices={c.i32_vector()}")
        if rtype == 3:
            return (f"task={c.u64()} new_price={c.i32()} "
                    f"remaining_slots={c.i64()}")
        if rtype == 4:
            return f"task={c.u64()} slot={c.i32()} price={c.i32()}"
        if rtype == 5:
            return f"task={c.u64()} completed_time={c.f64():.6f}"
        if rtype == 6:
            return (f"review={c.i32()} now={c.f64():.6f} "
                    f"spent={c.i64()}")
        if rtype == 7:
            market = c.string()
            executor = c.string()
            return (f"market_blob={len(market)}B "
                    f"({describe_snapshot(market)}) "
                    f"executor_blob={len(executor)}B")
        if rtype == 8:
            return f"spent={c.i64()} latency={c.f64():.6f}"
        return f"{len(payload)} payload bytes"
    except ValueError:
        return f"<malformed payload, {len(payload)} bytes>"


def scan(data: bytes):
    """Yields (offset, type, payload) for the valid prefix; returns via
    StopIteration-free protocol: (records, valid_bytes, torn_reason)."""
    if len(data) == 0:
        return [], 0, None
    if data[:min(len(data), 4)] != MAGIC[:min(len(data), 4)]:
        raise ValueError("bad magic: not an htune journal")
    if len(data) < HEADER_SIZE:
        return [], 0, "torn header"
    version = struct.unpack("<I", data[4:8])[0]
    if version != VERSION:
        raise ValueError(f"unsupported journal version {version}")
    records = []
    pos = HEADER_SIZE
    while pos < len(data):
        if pos + 5 > len(data):
            return records, pos, "torn frame header"
        length, rtype = struct.unpack_from("<IB", data, pos)
        end = pos + FRAME_OVERHEAD + length
        if end > len(data):
            return records, pos, "torn frame body"
        framed = data[pos:pos + 5 + length]
        (crc,) = struct.unpack_from("<I", data, pos + 5 + length)
        if crc32c(framed) != crc:
            return records, pos, "CRC mismatch"
        records.append((pos, rtype, data[pos + 5:pos + 5 + length]))
        pos = end
    return records, pos, None


def build_ledger(records):
    """Returns ({(task, slot): price}, reported_spent_or_None, errors)."""
    ledger = {}
    errors = []
    reported = None
    for offset, rtype, payload in records:
        if rtype == 4:
            c = Cursor(payload)
            task, slot, price = c.u64(), c.i32(), c.i32()
            if (task, slot) in ledger:
                errors.append(
                    f"offset {offset}: task {task} slot {slot} paid twice")
            ledger[(task, slot)] = price
        elif rtype == 8:
            c = Cursor(payload)
            reported = c.i64()
    by_task = {}
    for (task, slot), _ in ledger.items():
        by_task.setdefault(task, []).append(slot)
    for task, slots in sorted(by_task.items()):
        expect = list(range(len(slots)))
        if sorted(slots) != expect:
            errors.append(f"task {task}: non-contiguous paid slots "
                          f"{sorted(slots)}")
    return ledger, reported, errors


def cmd_dump(data: bytes) -> int:
    records, valid, torn = scan(data)
    print(f"{len(records)} records, {valid} valid bytes of {len(data)}")
    for offset, rtype, payload in records:
        name = RECORD_TYPES.get(rtype, f"type-{rtype}")
        print(f"  {offset:8d}  {name:<12} {describe(rtype, payload)}")
    if torn:
        print(f"  TORN TAIL at offset {valid}: {torn} "
              f"({len(data) - valid} bytes dropped on recovery)")
    return 0


def cmd_ledger(data: bytes) -> int:
    records, _, _ = scan(data)
    ledger, reported, errors = build_ledger(records)
    total = sum(ledger.values())
    by_task = {}
    for (task, slot), price in sorted(ledger.items()):
        by_task.setdefault(task, []).append((slot, price))
    for task, slots in sorted(by_task.items()):
        paid = ", ".join(f"slot {s}: {p}" for s, p in slots)
        print(f"task {task}: {paid}")
    print(f"total paid {total} across {len(ledger)} payments")
    if reported is not None:
        print(f"run-end reports spent {reported}: "
              f"{'BALANCED' if reported == total else 'MISMATCH'}")
    for error in errors:
        print(f"ERROR: {error}")
    return 1 if errors else 0


def cmd_verify(data: bytes) -> int:
    records, valid, torn = scan(data)
    problems = []
    if torn:
        problems.append(f"torn tail at offset {valid}: {torn}")
    if not records:
        problems.append("no records")
    else:
        if records[0][1] != 1:
            problems.append("first record is not run-start")
        if records[-1][1] != 8:
            problems.append("last record is not run-end (incomplete run)")
    ledger, reported, errors = build_ledger(records)
    problems.extend(errors)
    total = sum(ledger.values())
    if reported is not None and reported != total:
        problems.append(
            f"ledger total {total} != run-end spent {reported}")
    snapshots = sum(1 for _, rtype, _ in records if rtype == 7)
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    print(f"OK: {len(records)} records, {snapshots} snapshots, "
          f"{len(ledger)} payments totalling {total}, ledger balanced")
    return 0


MANIFEST_RECORD_TYPES = {1: "job", 2: "state"}

FLEET_JOB_STATES = {
    0: "PENDING",
    1: "RUNNING",
    2: "PARKED",
    3: "QUARANTINED",
    4: "DONE",
    5: "SHED",
}

FLEET_CONTROLLERS = {0: "ft", 1: "retune"}


def scan_manifest(data: bytes):
    """Like scan() but for the b"HTFM" fleet-manifest framing. Returns
    (records, valid_bytes, torn_reason); every record's CRC is rechecked."""
    if len(data) == 0:
        return [], 0, None
    if data[:min(len(data), 4)] != MANIFEST_MAGIC[:min(len(data), 4)]:
        raise ValueError("bad magic: not an htune fleet manifest")
    if len(data) < HEADER_SIZE:
        return [], 0, "torn header"
    version = struct.unpack("<I", data[4:8])[0]
    if version != VERSION:
        raise ValueError(f"unsupported manifest version {version}")
    records = []
    pos = HEADER_SIZE
    while pos < len(data):
        if pos + 5 > len(data):
            return records, pos, "torn frame header"
        length, rtype = struct.unpack_from("<IB", data, pos)
        end = pos + FRAME_OVERHEAD + length
        if end > len(data):
            return records, pos, "torn frame body"
        framed = data[pos:pos + 5 + length]
        (crc,) = struct.unpack_from("<I", data, pos + 5 + length)
        if crc32c(framed) != crc:
            return records, pos, "CRC mismatch"
        records.append((pos, rtype, data[pos + 5:pos + 5 + length]))
        pos = end
    return records, pos, None


def describe_manifest(rtype: int, payload: bytes) -> str:
    """Human rendering of one manifest record (src/durability/manifest.cc
    payload layout); never raises on garbage."""
    c = Cursor(payload)
    try:
        if rtype == 1:
            job_id = c.u64()
            name = c.string().decode("utf-8", "replace")
            priority = c.i32()
            spec_text = c.string()
            ceiling = c.i64()
            seed_override = c.i64()
            snapshot_interval = c.i32()
            controller = FLEET_CONTROLLERS.get(
                c.take(1)[0], "controller-?")
            return (f"job {job_id} '{name}' priority={priority} "
                    f"spec={len(spec_text)}B ceiling={ceiling} "
                    f"seed_override={seed_override} "
                    f"snapshot_interval={snapshot_interval} "
                    f"controller={controller}")
        if rtype == 2:
            job_id = c.u64()
            state = FLEET_JOB_STATES.get(c.take(1)[0], "state-?")
            restarts = c.i32()
            journal_bytes = c.u64()
            detail = c.string().decode("utf-8", "replace")
            text = (f"job {job_id} -> {state} restarts={restarts} "
                    f"journal_bytes={journal_bytes}")
            return text + (f" detail='{detail}'" if detail else "")
        return f"{len(payload)} payload bytes"
    except ValueError:
        return f"<malformed payload, {len(payload)} bytes>"


def cmd_manifest(data: bytes) -> int:
    records, valid, torn = scan_manifest(data)
    print(f"{len(records)} records, {valid} valid bytes of {len(data)}")
    for offset, rtype, payload in records:
        name = MANIFEST_RECORD_TYPES.get(rtype, f"type-{rtype}")
        print(f"  {offset:8d}  {name:<6} {describe_manifest(rtype, payload)}")
    if torn:
        print(f"  TORN TAIL at offset {valid}: {torn} "
              f"({len(data) - valid} bytes dropped on recovery)")
    # Fold the record sequence into the fleet state a recovering supervisor
    # would see: last state record per job wins.
    jobs = {}
    unknown = []
    for _, rtype, payload in records:
        c = Cursor(payload)
        try:
            if rtype == 1:
                job_id = c.u64()
                name = c.string().decode("utf-8", "replace")
                jobs[job_id] = {"name": name, "state": "PENDING",
                                "restarts": 0, "journal_bytes": 0,
                                "detail": ""}
            elif rtype == 2:
                job_id = c.u64()
                state = FLEET_JOB_STATES.get(c.take(1)[0], "state-?")
                restarts = c.i32()
                journal_bytes = c.u64()
                detail = c.string().decode("utf-8", "replace")
                if job_id not in jobs:
                    unknown.append(job_id)
                    continue
                jobs[job_id].update(state=state, restarts=restarts,
                                    journal_bytes=journal_bytes,
                                    detail=detail)
        except ValueError:
            pass
    print(f"\nfleet state ({len(jobs)} jobs):")
    counts = {}
    for job_id, job in sorted(jobs.items()):
        counts[job["state"]] = counts.get(job["state"], 0) + 1
        line = (f"  job {job_id:6d}  {job['state']:<12} "
                f"restarts={job['restarts']:<3d} "
                f"journal_bytes={job['journal_bytes']:<10d} {job['name']}")
        if job["detail"]:
            line += f"  [{job['detail']}]"
        print(line)
    summary = " ".join(f"{state}={n}" for state, n in sorted(counts.items()))
    print(f"totals: {summary if summary else 'empty'}")
    for job_id in unknown:
        print(f"WARNING: state record for unknown job {job_id} "
              f"(lost kJob record — quarantined orphan?)")
    return 1 if torn or unknown else 0


def main(argv) -> int:
    if len(argv) != 3 or argv[1] not in ("dump", "verify", "ledger",
                                         "manifest"):
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[2], "rb") as f:
            data = f.read()
    except OSError as e:
        print(f"cannot read {argv[2]}: {e}", file=sys.stderr)
        return 1
    try:
        return {"dump": cmd_dump, "verify": cmd_verify,
                "ledger": cmd_ledger, "manifest": cmd_manifest}[argv[1]](data)
    except ValueError as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
