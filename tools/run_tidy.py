#!/usr/bin/env python3
"""clang-tidy driver for htune.

Builds (or reuses) a compile database, then runs the checked-in
.clang-tidy profile over the C++ sources in parallel. By default the
whole of src/ and tools/ is linted; --changed restricts the run to files
the current branch touches (plus, for a changed header, the .cc files in
the same directory, which are the likeliest translation units to inhale
it) so CI lints only the PR diff. --dir RELDIR (repeatable) forces every
source under a directory into the run regardless of mode; CI uses it to
tidy src/platform and src/fleet unconditionally.

Exit codes: 0 clean, 1 findings, 2 environment error (no clang-tidy,
cmake failure). Pure stdlib.
"""

import argparse
import concurrent.futures
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_DIRS = ("src", "tools")
CXX_SOURCES = (".cc", ".cpp")
CXX_HEADERS = (".h", ".hpp")


def find_clang_tidy():
    explicit = os.environ.get("CLANG_TIDY")
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        if shutil.which(name):
            return name
    return None


def ensure_compile_db(build_dir):
    db = os.path.join(build_dir, "compile_commands.json")
    if os.path.exists(db):
        return db
    cmake = shutil.which("cmake")
    if cmake is None:
        return None
    result = subprocess.run(
        [cmake, "-B", build_dir, "-S", REPO_ROOT,
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    if result.returncode != 0:
        sys.stderr.write(result.stdout)
        return None
    return db if os.path.exists(db) else None


def dir_sources(rel):
    files = []
    for dirpath, dirnames, filenames in os.walk(os.path.join(REPO_ROOT, rel)):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(CXX_SOURCES):
                files.append(os.path.join(dirpath, name))
    return files


def all_sources():
    files = []
    for rel in SOURCE_DIRS:
        files.extend(dir_sources(rel))
    return files


def git_changed_files(base):
    def lines(*cmd):
        result = subprocess.run(cmd, cwd=REPO_ROOT, stdout=subprocess.PIPE,
                                stderr=subprocess.DEVNULL, text=True)
        return result.stdout.splitlines() if result.returncode == 0 else []

    changed = set(lines("git", "diff", "--name-only", "--diff-filter=ACMR",
                        f"{base}...HEAD"))
    # A base with no merge-base (shallow clone, first push) yields nothing;
    # fall back to the last commit's files.
    if not changed:
        changed = set(lines("git", "diff", "--name-only", "--diff-filter=ACMR",
                            "HEAD~1"))
    changed |= set(lines("git", "diff", "--name-only", "--diff-filter=ACMR"))
    changed |= set(lines("git", "diff", "--name-only", "--diff-filter=ACMR",
                         "--cached"))
    return sorted(changed)


def changed_sources(base):
    changed = [f for f in git_changed_files(base)
               if f.startswith(tuple(d + "/" for d in SOURCE_DIRS))]
    files = set()
    for rel in changed:
        path = os.path.join(REPO_ROOT, rel)
        if rel.endswith(CXX_SOURCES) and os.path.exists(path):
            files.add(path)
        elif rel.endswith(CXX_HEADERS) and os.path.exists(path):
            directory = os.path.dirname(path)
            for name in os.listdir(directory):
                if name.endswith(CXX_SOURCES):
                    files.add(os.path.join(directory, name))
    return sorted(files)


def run_one(clang_tidy, db_dir, path):
    result = subprocess.run(
        [clang_tidy, "-p", db_dir, "--quiet", path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return path, result.returncode, result.stdout, result.stderr


def main(argv=None):
    parser = argparse.ArgumentParser(description="run clang-tidy over htune")
    parser.add_argument("files", nargs="*",
                        help="explicit files (default: all of src/ + tools/)")
    parser.add_argument("--changed", action="store_true",
                        help="lint only files changed relative to --base")
    parser.add_argument("--dir", action="append", default=[],
                        metavar="RELDIR", dest="dirs",
                        help="always lint every source under this repo-"
                        "relative directory, even with --changed "
                        "(repeatable)")
    parser.add_argument("--base", default="origin/main",
                        help="git base for --changed (default: origin/main)")
    parser.add_argument("--build-dir",
                        default=os.path.join(REPO_ROOT, "build"),
                        help="build dir holding compile_commands.json")
    parser.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args(argv)

    clang_tidy = find_clang_tidy()
    if clang_tidy is None:
        print("run_tidy: clang-tidy not found on PATH (set CLANG_TIDY to "
              "override); install clang-tidy or run in the static-analysis "
              "CI image", file=sys.stderr)
        return 2

    db = ensure_compile_db(args.build_dir)
    if db is None:
        print(f"run_tidy: no compile_commands.json under {args.build_dir} "
              "and cmake configure failed", file=sys.stderr)
        return 2

    if args.files:
        files = [os.path.abspath(f) for f in args.files]
    elif args.changed:
        files = changed_sources(args.base)
    else:
        files = all_sources()

    # --dir directories are tidied in full regardless of mode: they hold
    # the concurrency-critical code (lock discipline, recovery paths)
    # where a diff-scoped run can miss findings introduced by a header
    # change in another directory.
    for rel in args.dirs:
        if not os.path.isdir(os.path.join(REPO_ROOT, rel)):
            print(f"run_tidy: --dir {rel} is not a directory under the repo",
                  file=sys.stderr)
            return 2
        files = sorted(set(files) | set(dir_sources(rel)))

    if not files:
        print("run_tidy: no changed C++ sources; nothing to lint")
        return 0

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [pool.submit(run_one, clang_tidy, args.build_dir, f)
                   for f in files]
        for future in concurrent.futures.as_completed(futures):
            path, code, out, err = future.result()
            rel = os.path.relpath(path, REPO_ROOT)
            if code != 0:
                failures += 1
                print(f"== {rel}")
                if out.strip():
                    print(out.strip())
                if err.strip():
                    print(err.strip(), file=sys.stderr)
    print(f"run_tidy: {len(files)} file(s) linted, {failures} with findings")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
