"""Shared declaration model the checks run against.

Both frontends (astdump's clang JSON extraction and declparse's tolerant
parser) produce the same shapes, so every check is frontend-agnostic:

  ClassDecl    — one class/struct with its non-static data members, the
                 method names it declares, and per-member HTUNE_TRANSIENT
                 annotations harvested from the raw source.
  EnumDecl     — one enum with (name, value) enumerators in order.
  FunctionDef  — one function *definition*: qualified name, parameter
                 text, and the comment-stripped body text (braces kept,
                 so lock_check can walk scopes).

Qualified names never include namespaces (the tree is one `htune`
namespace; anonymous namespaces are transparent); class nesting is kept:
`MarketState::Event`, `SharedMarket::SharedTask`.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Tuple

_WORD_RE_CACHE: Dict[str, re.Pattern] = {}


def word_re(name: str) -> re.Pattern:
    """Compiled whole-word pattern for an identifier (cached)."""
    pattern = _WORD_RE_CACHE.get(name)
    if pattern is None:
        pattern = re.compile(r"\b" + re.escape(name) + r"\b")
        _WORD_RE_CACHE[name] = pattern
    return pattern


@dataclasses.dataclass
class Member:
    name: str
    line: int
    access: str = "public"  # public | protected | private
    transient_reason: Optional[str] = None  # HTUNE_TRANSIENT: <reason>


@dataclasses.dataclass
class ClassDecl:
    name: str  # qualified by enclosing classes, e.g. "MarketState::Event"
    kind: str  # "struct" | "class"
    file: str
    line: int
    members: List[Member] = dataclasses.field(default_factory=list)
    method_names: List[str] = dataclasses.field(default_factory=list)

    def declares_method(self, name: str) -> bool:
        return name in self.method_names


@dataclasses.dataclass
class EnumDecl:
    name: str  # qualified, e.g. "MarketEvent::Kind"
    file: str
    line: int
    # (enumerator, value); value is None when the initializer was not a
    # plain integer literal (no such enum exists in this tree today).
    enumerators: List[Tuple[str, Optional[int]]] = dataclasses.field(
        default_factory=list)

    def names(self) -> List[str]:
        return [name for name, _ in self.enumerators]

    def values(self) -> List[Optional[int]]:
        return [value for _, value in self.enumerators]


@dataclasses.dataclass
class FunctionDef:
    qname: str  # "SharedMarket::CaptureState", "EncodeTask", ...
    params: str  # raw parameter-list text (comment-stripped)
    body: str  # comment-stripped body text including braces
    file: str
    line: int
    # Lock expressions from HTUNE_REQUIRES(...) on the signature: the
    # function runs with these already held.
    requires: List[str] = dataclasses.field(default_factory=list)
    # Line of the opening brace; newline offsets into `body` are relative
    # to this, so checks can report exact source lines.
    body_start_line: int = 0


class Model:
    """Whole-tree declaration index. Classes and enums are keyed by
    qualified name (first declaration wins, later ones merge members and
    methods — a class parsed from both its header and a clang TU dump
    unions cleanly). Function definitions accumulate: overloads and
    same-named free functions in different files all keep their bodies,
    and checks search the union."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassDecl] = {}
        self.enums: Dict[str, EnumDecl] = {}
        self.functions: Dict[str, List[FunctionDef]] = {}

    def add_class(self, decl: ClassDecl) -> None:
        existing = self.classes.get(decl.name)
        if existing is None:
            self.classes[decl.name] = decl
            return
        known = {member.name for member in existing.members}
        for member in decl.members:
            if member.name in known:
                # Keep the annotation wherever it was written.
                if member.transient_reason:
                    for mine in existing.members:
                        if (mine.name == member.name
                                and not mine.transient_reason):
                            mine.transient_reason = member.transient_reason
                continue
            existing.members.append(member)
            known.add(member.name)
        for method in decl.method_names:
            if method not in existing.method_names:
                existing.method_names.append(method)

    def add_enum(self, decl: EnumDecl) -> None:
        self.enums.setdefault(decl.name, decl)

    def add_function(self, decl: FunctionDef) -> None:
        self.functions.setdefault(decl.qname, []).append(decl)

    def find_enum(self, name: str) -> Optional[EnumDecl]:
        """Lookup by qualified name, falling back to unique last-component
        match ("Kind" → "MarketEvent::Kind" when unambiguous)."""
        decl = self.enums.get(name)
        if decl is not None:
            return decl
        tails = [e for qname, e in self.enums.items()
                 if qname.split("::")[-1] == name]
        return tails[0] if len(tails) == 1 else None

    def function_bodies(self, qname: str) -> List[FunctionDef]:
        """Definitions for a (possibly unqualified) function name."""
        if qname in self.functions:
            return self.functions[qname]
        return [fn for fns in self.functions.values() for fn in fns
                if fns and fns[0].qname.split("::")[-1] == qname.split(
                    "::")[-1] and qname.count("::") == 0]

    def merge(self, other: "Model") -> None:
        for decl in other.classes.values():
            self.add_class(decl)
        for decl in other.enums.values():
            self.add_enum(decl)
        for fns in other.functions.values():
            for fn in fns:
                self.add_function(fn)


@dataclasses.dataclass
class Finding:
    check: str
    file: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: [{self.check}] {self.message}"
