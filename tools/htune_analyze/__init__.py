"""htune_analyze: compile-commands-driven static invariant analysis.

Three whole-tree checks (see DESIGN.md §14):
  snapshot  — every non-static data member of a state-bearing class is
              referenced by both its capture and restore codec paths, or
              carries an explicit HTUNE_TRANSIENT annotation.
  lock      — the nested-lock acquisition graph is acyclic and every
              observed edge is declared in lock_order.toml.
  schema    — every enumerator of the serialized enums is handled on all
              of its encode, decode, and Python-side dispatch surfaces.

Declarations come from `clang -Xclang -ast-dump=json` per translation unit
when a compile database and clang are available (astdump.py, cached by
compiler+file hash), with a tolerant in-repo declaration parser
(declparse.py) as the always-available fallback.
"""
