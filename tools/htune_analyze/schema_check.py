"""Schema-drift check.

The serialized enums (trace event kinds, journal/manifest record types,
fleet job states, wire commands) each have several dispatch surfaces:
C++ encode/decode switches, decode upper bounds, and Python-side dict
tables in tools/journal_inspect.py. Adding an enumerator in one place
and not the others corrupts replay or inspection silently; this check
makes it a build failure.

analyze.toml declares each enum and its surfaces:

  [[schema.enum]]
  name = "TraceEventKind"          # resolved against the parsed model
  ignore = ["kInternal"]           # explicit, reviewed exemptions
    [[schema.enum.surface]]
    kind = "cpp-name"              # every enumerator name appears...
    function = "TraceEventKindToString"   # ...in this function's body,
    file = "src/market/trace_io.cc"       # ...or anywhere in this file
    [[schema.enum.surface]]
    kind = "cpp-max-enumerator"    # the decode bound names the last
    file = "src/durability/snapshot.cc"   # enumerator: pattern has
    pattern = "TraceEventKind::{last}"    # {last} substituted
    [[schema.enum.surface]]
    kind = "py-dict"               # module-level dict literal whose int
    file = "tools/journal_inspect.py"     # keys equal the enumerator
    dict = "TRACE_EVENT_KINDS"            # value set, both directions

String-valued protocols use [[schema.stringset]] with literal `values`
and `cpp-dispatch` surfaces: `pattern` ({value} substituted) must match
for every declared value, and `extract` (a regex whose group 1 captures
dispatched literals) must not find undeclared ones — so adding a wire
command to the server without declaring it here also fails.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, List, Optional

import declparse
from model import EnumDecl, Finding, Model, word_re

_FILE_CACHE: Dict[str, str] = {}


def _read(root: str, rel: str, stripped: bool) -> Optional[str]:
    key = f"{'s' if stripped else 'r'}:{rel}"
    if key not in _FILE_CACHE:
        path = os.path.join(root, rel)
        if not os.path.isfile(path):
            _FILE_CACHE[key] = None
        else:
            with open(path, encoding="utf-8", errors="replace") as handle:
                text = handle.read()
            if stripped:
                text = declparse.strip_comments_and_strings(text)
            _FILE_CACHE[key] = text
    return _FILE_CACHE[key]


def _surface_loc(surface: dict) -> str:
    return surface.get("file", "analyze.toml")


def _cpp_scope(model: Model, root: str, surface: dict) -> Optional[str]:
    """Search text for a cpp surface: a named function's bodies
    (restricted to `file` when given) or a whole stripped file."""
    function = surface.get("function")
    file = surface.get("file")
    if function:
        fns = model.function_bodies(function)
        if file:
            fns = [fn for fn in fns if fn.file == file]
        if not fns:
            return None
        return "\n".join(fn.body for fn in fns)
    if file:
        return _read(root, file, stripped=True)
    return None


def _check_cpp_name(model: Model, root: str, enum: EnumDecl,
                    ignore: set, surface: dict) -> List[Finding]:
    scope = _cpp_scope(model, root, surface)
    where = surface.get("function") or surface.get("file", "?")
    if scope is None:
        return [Finding("schema", _surface_loc(surface), 0,
                        f"surface for {enum.name} not found: {where}")]
    findings = []
    for name in enum.names():
        if name in ignore:
            continue
        if not word_re(name).search(scope):
            findings.append(Finding(
                "schema", _surface_loc(surface), 0,
                f"{enum.name}::{name} is not handled in {where}"))
    return findings


def _check_cpp_max(model: Model, root: str, enum: EnumDecl,
                   ignore: set, surface: dict) -> List[Finding]:
    scope = _cpp_scope(model, root, surface)
    where = surface.get("function") or surface.get("file", "?")
    if scope is None:
        return [Finding("schema", _surface_loc(surface), 0,
                        f"surface for {enum.name} not found: {where}")]
    candidates = [(value, name) for name, value in enum.enumerators
                  if value is not None and name not in ignore]
    if not candidates:
        return []
    last = max(candidates)[1]
    pattern = surface.get("pattern", "{last}").replace("{last}", last)
    if not re.search(re.escape(pattern).replace(r"\ ", r"\s*"), scope):
        return [Finding(
            "schema", _surface_loc(surface), 0,
            f"decode bound in {where} does not reference the last "
            f"enumerator of {enum.name}: expected '{pattern}' — update "
            f"the bound when adding enumerators")]
    return []


def _py_module_dict(text: str, name: str) -> Optional[Dict]:
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return None
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(node.value, ast.Dict):
                    try:
                        return {ast.literal_eval(k): True
                                for k in node.value.keys if k is not None}
                    except ValueError:
                        return None
    return None


def _check_py_dict(model: Model, root: str, enum: EnumDecl,
                   ignore: set, surface: dict) -> List[Finding]:
    file = surface.get("file", "?")
    dict_name = surface.get("dict", "?")
    text = _read(root, file, stripped=False)
    if text is None:
        return [Finding("schema", file, 0,
                        f"surface for {enum.name} not found: {file}")]
    table = _py_module_dict(text, dict_name)
    if table is None:
        return [Finding(
            "schema", file, 0,
            f"no module-level dict literal '{dict_name}' in {file} "
            f"(surface for {enum.name})")]
    expected = {value: name for name, value in enum.enumerators
                if value is not None and name not in ignore}
    findings = []
    for value, name in sorted(expected.items()):
        if value not in table:
            findings.append(Finding(
                "schema", file, 0,
                f"{enum.name}::{name} (= {value}) is missing from "
                f"{dict_name} in {file}"))
    for key in sorted(k for k in table if isinstance(k, int)):
        if key not in expected:
            findings.append(Finding(
                "schema", file, 0,
                f"{dict_name} in {file} maps unknown value {key} — no "
                f"such {enum.name} enumerator"))
    return findings


_ENUM_SURFACES = {
    "cpp-name": _check_cpp_name,
    "cpp-max-enumerator": _check_cpp_max,
    "py-dict": _check_py_dict,
}


def _check_stringset(model: Model, root: str, spec: dict) -> List[Finding]:
    name = spec.get("name", "?")
    values = spec.get("values", [])
    findings = []
    for surface in spec.get("surface", []):
        file = surface.get("file", "?")
        # Dispatch literals live inside string constants, so search raw.
        text = _read(root, file, stripped=False)
        if text is None:
            findings.append(Finding(
                "schema", file, 0, f"surface for {name} not found: {file}"))
            continue
        pattern = surface.get("pattern", "")
        for value in values:
            if pattern and not re.search(
                    pattern.replace("{value}", re.escape(value)), text):
                findings.append(Finding(
                    "schema", file, 0,
                    f"{name} value '{value}' is not dispatched in {file} "
                    f"(no match for pattern '{pattern}')"))
        extract = surface.get("extract", "")
        if extract:
            for match in sorted(set(re.findall(extract, text))):
                if match not in values:
                    findings.append(Finding(
                        "schema", file, 0,
                        f"{file} dispatches '{match}' which is not a "
                        f"declared {name} value — add it to analyze.toml "
                        f"and to every other surface"))
    return findings


def run(model: Model, config: dict, root: str) -> List[Finding]:
    _FILE_CACHE.clear()
    schema_cfg = config.get("schema", {})
    findings = []
    for spec in schema_cfg.get("enum", []):
        name = spec.get("name", "?")
        enum = model.find_enum(name)
        if enum is None:
            findings.append(Finding(
                "schema", "analyze.toml", 0,
                f"[[schema.enum]] names unknown enum '{name}'"))
            continue
        ignore = set(spec.get("ignore", []))
        for enumerator in ignore:
            if enumerator not in enum.names():
                findings.append(Finding(
                    "schema", "analyze.toml", 0,
                    f"ignore entry '{enumerator}' is not an enumerator "
                    f"of {enum.name}"))
        for surface in spec.get("surface", []):
            kind = surface.get("kind", "?")
            checker = _ENUM_SURFACES.get(kind)
            if checker is None:
                findings.append(Finding(
                    "schema", "analyze.toml", 0,
                    f"unknown surface kind '{kind}' for enum {name}"))
                continue
            findings.extend(checker(model, root, enum, ignore, surface))
    for spec in schema_cfg.get("stringset", []):
        findings.extend(_check_stringset(model, root, spec))
    return findings
