"""Lock-order safety check.

Walks every function body and extracts nested acquisitions of the
annotated `MutexLock`/`WriterMutexLock`/`ReaderMutexLock` RAII wrappers
(src/common/mutex.h). A scope stack models lexical lifetime: a guard is
held from its declaration to the end of its enclosing brace scope, so
  { MutexLock a(mu_); { MutexLock b(other_); ... } }
observes the edge mu_ → other_, while two sibling scopes observe none.
Functions annotated HTUNE_REQUIRES(mu) are walked with mu already held.

Lock nodes are `Class::expr` (the owning class of the method, with
`this->` and whitespace normalized away), so `shard.mu` inside
LatencyKernelCache methods and `mu_` inside FleetSupervisor methods
never alias.

Two rules, both against the checked-in lock_order.toml:
  1. every observed edge must be declared — a new nested acquisition is
     a reviewed event, not an accident;
  2. the union of observed and declared edges must be acyclic — a
     declared-but-reversed pair still fails.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from model import Finding, FunctionDef, Model

LOCK_RE = re.compile(
    r"\b(MutexLock|WriterMutexLock|ReaderMutexLock)\s+\w+\s*\(([^()]*)\)")


def _normalize(expr: str, owner: str) -> str:
    expr = expr.split(",")[0]  # MutexLock(mu, defer) style: first arg
    expr = re.sub(r"\s+", "", expr)
    expr = expr.replace("this->", "")
    expr = expr.lstrip("&*")
    if owner and "::" not in expr:
        return f"{owner}::{expr}"
    return expr


def _owner_of(fn: FunctionDef) -> str:
    return fn.qname.rsplit("::", 1)[0] if "::" in fn.qname else ""


def _walk_function(fn: FunctionDef,
                   edges: Dict[Tuple[str, str], Tuple[str, int]]) -> None:
    owner = _owner_of(fn)
    held: List[Tuple[int, str]] = [
        (-1, _normalize(expr, owner)) for expr in fn.requires]
    body = fn.body
    depth = 0
    pos = 0
    matches = list(LOCK_RE.finditer(body))
    next_match = 0
    while pos < len(body):
        if next_match < len(matches) and matches[next_match].start() == pos:
            match = matches[next_match]
            next_match += 1
            node = _normalize(match.group(2), owner)
            line = fn.body_start_line + body.count("\n", 0, match.start())
            for _, outer in held:
                if outer != node:
                    edges.setdefault((outer, node), (fn.file, line))
            held.append((depth, node))
            pos = match.end()
            continue
        ch = body[pos]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            while held and held[-1][0] >= depth:
                held.pop()
        pos += 1


def _find_cycle(edges: Set[Tuple[str, str]]) -> List[str]:
    graph: Dict[str, List[str]] = {}
    for src, dst in sorted(edges):
        graph.setdefault(src, []).append(dst)
    state: Dict[str, int] = {}  # 1 = on stack, 2 = done
    stack: List[str] = []

    def visit(node: str) -> List[str]:
        state[node] = 1
        stack.append(node)
        for nxt in graph.get(node, []):
            if state.get(nxt) == 1:
                return stack[stack.index(nxt):] + [nxt]
            if nxt not in state:
                cycle = visit(nxt)
                if cycle:
                    return cycle
        stack.pop()
        state[node] = 2
        return []

    for node in sorted(graph):
        if node not in state:
            cycle = visit(node)
            if cycle:
                return cycle
    return []


def run(model: Model, lock_order: dict) -> List[Finding]:
    declared: Set[Tuple[str, str]] = set()
    for entry in lock_order.get("edge", []):
        declared.add((entry.get("from", ""), entry.get("to", "")))

    observed: Dict[Tuple[str, str], Tuple[str, int]] = {}
    for fns in model.functions.values():
        for fn in fns:
            _walk_function(fn, observed)

    findings = []
    for edge in sorted(observed):
        if edge not in declared:
            file, line = observed[edge]
            findings.append(Finding(
                "lock", file, line,
                f"nested acquisition {edge[0]} -> {edge[1]} is not "
                f"declared in lock_order.toml; review the ordering and "
                f"add an [[edge]] entry"))

    cycle = _find_cycle(set(observed) | declared)
    if cycle:
        first = cycle[0]
        site = observed.get((cycle[0], cycle[1]))
        file, line = site if site else ("lock_order.toml", 0)
        findings.append(Finding(
            "lock", file, line,
            "lock acquisition cycle: " + " -> ".join(cycle)))
    return findings
