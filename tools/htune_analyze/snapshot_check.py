"""Snapshot completeness check.

Guards the repo's central durability invariant (DESIGN.md §7/§11): a
field added to a state-bearing class and forgotten in its codec breaks
bitwise crash-resume silently. Three discovery rules feed one member
test:

  Rule A (own codec): a class that declares both a capture method
      (CaptureState/SaveState) and RestoreState owns its codec. Every
      non-static data member — any access level — must be referenced.

  Rule B (codec pair): a struct passed read-only into some Encode*
      function and mutably into some Decode* function is serialized by
      that free-function pair. Only public members are checked: a type
      with private members that shows up in codec signatures (e.g.
      BudgetLedger) serializes itself through its own methods, which
      Rule A or a binding covers.

  Bindings (config): structs encoded inline by some other class's codec
      (TaskState inside EncodeExecutorState, SharedTask inside
      SharedMarket::CaptureState) are bound explicitly in analyze.toml
      [[snapshot.binding]] entries to their capture/restore functions.

The member test: the member name must appear as a whole word in the
union of the capture bodies AND the union of the restore bodies, or the
declaration must carry `// HTUNE_TRANSIENT: <reason>` on its line or the
line above. A transient annotation is a reviewed claim that the field is
rebuilt after restore (cache, scratch buffer, derived weight, metrics).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional

from model import ClassDecl, Finding, Model, word_re

CAPTURE_METHODS = ("CaptureState", "SaveState")
RESTORE_METHODS = ("RestoreState",)


def _body_union(model: Model, qnames: Iterable[str]) -> str:
    parts = []
    for qname in qnames:
        for fn in model.functions.get(qname, []):
            parts.append(fn.body)
    return "\n".join(parts)


def _check_members(cls: ClassDecl, capture_text: str, restore_text: str,
                   capture_desc: str, restore_desc: str,
                   public_only: bool) -> List[Finding]:
    findings = []
    for member in cls.members:
        if public_only and member.access != "public":
            continue
        if member.transient_reason is not None:
            continue
        pattern = word_re(member.name)
        missing = []
        if not pattern.search(capture_text):
            missing.append(capture_desc)
        if not pattern.search(restore_text):
            missing.append(restore_desc)
        if missing:
            findings.append(Finding(
                "snapshot", cls.file, member.line,
                f"member '{cls.name}::{member.name}' is not referenced by "
                f"{' or '.join(missing)}; serialize it or annotate the "
                f"declaration with // HTUNE_TRANSIENT: <why it is rebuilt "
                f"after restore>"))
    return findings


def _rule_a(model: Model) -> List[Finding]:
    findings = []
    for cls in model.classes.values():
        captures = [m for m in CAPTURE_METHODS if cls.declares_method(m)]
        restores = [m for m in RESTORE_METHODS if cls.declares_method(m)]
        if not captures or not restores:
            continue
        own = cls.name.split("::")[-1]
        capture_text = _body_union(
            model, [f"{own}::{m}" for m in captures])
        restore_text = _body_union(
            model, [f"{own}::{m}" for m in restores])
        if not capture_text or not restore_text:
            continue  # declared elsewhere; nothing to search
        findings.extend(_check_members(
            cls, capture_text, restore_text,
            f"its capture path ({'/'.join(captures)})",
            f"its restore path ({'/'.join(restores)})",
            public_only=False))
    return findings


def _param_segments(params: str) -> List[str]:
    segments, depth, start = [], 0, 0
    for i, ch in enumerate(params):
        if ch in "(<[{":
            depth += 1
        elif ch in ")>]}":
            depth = max(0, depth - 1)
        elif ch == "," and depth == 0:
            segments.append(params[start:i])
            start = i + 1
    segments.append(params[start:])
    return segments


def _encode_takes(segment: str, name: str) -> bool:
    """Read-only parameter of the type: const-ref or by value."""
    if not word_re(name).search(segment) or "*" in segment:
        return False
    if "&" in segment:
        return "const" in segment
    return True


def _decode_takes(segment: str, name: str) -> bool:
    """Mutable out-parameter of the type: non-const ref or pointer."""
    if not word_re(name).search(segment):
        return False
    if "const" in segment:
        return False
    return "&" in segment or "*" in segment


def _rule_b(model: Model, bound: Dict[str, object]) -> List[Finding]:
    encode_fns: Dict[str, List[str]] = {}  # class tail -> encode qnames
    decode_fns: Dict[str, List[str]] = {}
    tails = {}
    for qname, cls in model.classes.items():
        tails.setdefault(qname.split("::")[-1], []).append(cls)
    for qname, fns in model.functions.items():
        base = qname.split("::")[-1]
        if base.startswith("Encode"):
            table: Optional[Dict[str, List[str]]] = encode_fns
            takes = _encode_takes
        elif base.startswith("Decode"):
            table = decode_fns
            takes = _decode_takes
        else:
            continue
        for fn in fns:
            for segment in _param_segments(fn.params):
                for tail in tails:
                    if takes(segment, tail):
                        table.setdefault(tail, []).append(qname)

    findings = []
    for tail in sorted(set(encode_fns) & set(decode_fns)):
        classes = tails[tail]
        if len(classes) != 1:
            continue  # ambiguous tail; bindings must name it explicitly
        cls = classes[0]
        if cls.name in bound or not cls.members:
            continue
        capture_text = _body_union(model, sorted(set(encode_fns[tail])))
        restore_text = _body_union(model, sorted(set(decode_fns[tail])))
        findings.extend(_check_members(
            cls, capture_text, restore_text,
            f"its encoder(s) ({', '.join(sorted(set(encode_fns[tail])))})",
            f"its decoder(s) ({', '.join(sorted(set(decode_fns[tail])))})",
            public_only=True))
    return findings


def _bindings(model: Model, bindings: List[dict]) -> List[Finding]:
    findings = []
    for binding in bindings:
        name = binding.get("class", "")
        cls = model.classes.get(name)
        if cls is None:
            matches = [c for qname, c in model.classes.items()
                       if qname.split("::")[-1] == name]
            cls = matches[0] if len(matches) == 1 else None
        if cls is None:
            findings.append(Finding(
                "snapshot", "analyze.toml", 0,
                f"[[snapshot.binding]] names unknown class '{name}'"))
            continue
        capture = binding.get("capture", [])
        restore = binding.get("restore", [])
        capture_text = _body_union(model, capture)
        restore_text = _body_union(model, restore)
        for qnames, text, role in ((capture, capture_text, "capture"),
                                   (restore, restore_text, "restore")):
            if qnames and not text:
                findings.append(Finding(
                    "snapshot", cls.file, cls.line,
                    f"binding for '{cls.name}' names {role} function(s) "
                    f"{qnames} but no definition was found"))
        if not capture_text or not restore_text:
            continue
        findings.extend(_check_members(
            cls, capture_text, restore_text,
            f"its bound capture path ({', '.join(capture)})",
            f"its bound restore path ({', '.join(restore)})",
            public_only=True))
    return findings


def run(model: Model, config: dict) -> List[Finding]:
    snapshot_cfg = config.get("snapshot", {})
    bindings = snapshot_cfg.get("binding", [])
    bound = {b.get("class", ""): b for b in bindings}
    findings = []
    findings.extend(_rule_a(model))
    findings.extend(_rule_b(model, bound))
    findings.extend(_bindings(model, bindings))
    return findings
