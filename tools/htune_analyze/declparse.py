"""Tolerant C++ declaration parser — the always-available frontend.

Not a C++ parser: a brace/statement scanner tuned to the declaration
idioms this tree actually uses (and the analyzer's fixture corpus
pins). It extracts, per file:

  * class/struct declarations (including nested ones and out-of-line
    `struct Outer::Inner { ... };` definitions in .cc files) with their
    non-static data members, access levels, declared method names, and
    per-member `// HTUNE_TRANSIENT: <reason>` annotations;
  * enums with enumerator names and values;
  * function definitions (free, out-of-line methods, and inline methods)
    with parameter text, HTUNE_REQUIRES(...) annotations, and the
    comment-stripped body text.

Unknown constructs are skipped, never fatal: when clang is available the
AST dump refines this model (astdump.py); when it is not, this parser is
the whole frontend, so it must degrade gracefully rather than error.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from model import ClassDecl, EnumDecl, FunctionDef, Member, Model, word_re

TRANSIENT_RE = re.compile(r"HTUNE_TRANSIENT:\s*(.*?)\s*(?:\*/.*)?$")
ACCESS_RE = re.compile(r"(?<!:)\b(public|private|protected)\s*:(?!:)")
CLASS_HEAD_RE = re.compile(
    r"\b(class|struct)\s+(?:HTUNE_\w+\s*(?:\([^()]*\))?\s*)*"
    r"([A-Za-z_]\w*(?:::\w+)*)\s*(?:final\s*)?(?::[^:].*)?$", re.S)
ENUM_HEAD_RE = re.compile(
    r"\benum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)\s*(?::\s*[\w:]+\s*)?$")
REQUIRES_RE = re.compile(r"\bHTUNE_REQUIRES\s*\(([^()]*)\)")
ANNOTATION_RE = re.compile(r"\bHTUNE_[A-Z_]+\s*(?:\([^()]*\))?")
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                    "do", "else", "sizeof", "alignof", "decltype"}
MEMBER_SKIP_PREFIXES = ("using ", "friend ", "typedef ", "template",
                        "static ", "static\n", "extern ", "namespace ")
RESERVED = {"const", "constexpr", "mutable", "volatile", "struct", "class",
            "enum", "unsigned", "signed", "long", "short", "int", "char",
            "bool", "double", "float", "void", "auto", "default", "delete",
            "override", "final", "noexcept", "true", "false", "nullptr"}


def strip_comments_and_strings(text: str) -> str:
    """Replaces comments, string/char literals, and preprocessor
    directives with spaces, keeping every newline so offsets map to the
    same line numbers."""
    out = []
    i, n = 0, len(text)
    at_line_start = True
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if at_line_start and c == "#":
            # Directive, including continuation lines.
            j = i
            while j < n:
                end = text.find("\n", j)
                end = n if end == -1 else end
                if text[j:end].rstrip().endswith("\\"):
                    j = end + 1
                    continue
                j = end
                break
            chunk = text[i:j]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j
            continue
        if not c.isspace():
            at_line_start = False
        elif c == "\n":
            at_line_start = True
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            chunk = text[i:min(j + 1, n)]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _strip_angle_groups(text: str) -> str:
    """Removes balanced <...> template-argument groups. Heuristic: inside
    a declaration statement `<` is template syntax, not comparison."""
    out = []
    depth = 0
    for ch in text:
        if ch == "<":
            depth += 1
        elif ch == ">":
            if depth > 0:
                depth -= 1
                continue
        if depth == 0:
            out.append(ch)
    return "".join(out)


def _split_top_level(text: str, sep: str) -> List[str]:
    parts, depth, start = [], 0, 0
    for i, ch in enumerate(text):
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth = max(0, depth - 1)
        elif ch == sep and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def _find_matching_brace(text: str, open_index: int) -> int:
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def _line_of(text: str, index: int) -> int:
    return text.count("\n", 0, index) + 1


def _content_line(text: str, start: int, end: int) -> int:
    """Line of the first non-whitespace character in text[start:end] —
    the line a statement actually begins on (leading blank space after
    the previous boundary is skipped)."""
    for i in range(start, min(end, len(text))):
        if not text[i].isspace():
            return _line_of(text, i)
    return _line_of(text, start)


def _transient_annotation(raw_lines: List[str], line: int) -> Optional[str]:
    """HTUNE_TRANSIENT reason on the member's own line or the line above."""
    for candidate in (line, line - 1):
        if 1 <= candidate <= len(raw_lines):
            match = TRANSIENT_RE.search(raw_lines[candidate - 1])
            if match:
                return match.group(1) or "unspecified"
    return None


def _function_name(head: str) -> Optional[str]:
    """The (possibly qualified) identifier before the first top-level
    parenthesis group — the declared name of a function signature."""
    stripped = _strip_angle_groups(head)
    depth = 0
    paren = -1
    for i, ch in enumerate(stripped):
        if ch == "(":
            if depth == 0:
                paren = i
                break
            depth += 1
        elif ch == ")":
            depth = max(0, depth - 1)
    if paren < 0:
        return None
    before = stripped[:paren].rstrip()
    match = re.search(r"((?:~?[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)$", before)
    if not match:
        return None
    name = match.group(1)
    if name.split("::")[-1] in CONTROL_KEYWORDS:
        return None
    return name


def _function_params(head: str) -> str:
    depth = 0
    start = -1
    for i, ch in enumerate(head):
        if ch == "(":
            if depth == 0:
                start = i
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0 and start >= 0:
                return head[start + 1:i]
    return ""


def _member_names(statement: str) -> List[str]:
    """Declared names of one member statement (initializer and template
    arguments already irrelevant; arrays and comma lists handled)."""
    body = _split_top_level(statement, "=")[0]
    body = _strip_angle_groups(body)
    body = re.sub(r"\{[^{}]*\}", " ", body)
    body = re.sub(r"\[[^\[\]]*\]", " ", body)
    names = []
    for part in _split_top_level(body, ","):
        match = re.search(r"([A-Za-z_]\w*)\s*$", part.strip())
        if match and match.group(1) not in RESERVED:
            names.append(match.group(1))
    return names


def _parse_enum_body(name: str, body: str) -> List[Tuple[str, Optional[int]]]:
    enumerators: List[Tuple[str, Optional[int]]] = []
    next_value: Optional[int] = 0
    for entry in _split_top_level(body, ","):
        entry = entry.strip()
        if not entry:
            continue
        if "=" in entry:
            ident, _, expr = entry.partition("=")
            ident = ident.strip()
            try:
                value: Optional[int] = int(expr.strip(), 0)
            except ValueError:
                value = None
        else:
            ident, value = entry, next_value
        match = re.match(r"^[A-Za-z_]\w*$", ident.strip())
        if not match:
            continue
        enumerators.append((ident.strip(), value))
        next_value = value + 1 if value is not None else None
    return enumerators


class _Scope:
    def __init__(self, kind: str, decl=None, access: str = "public"):
        self.kind = kind  # "namespace" | "class"
        self.decl = decl
        self.access = access


def parse_text(text: str, path: str) -> Model:
    model = Model()
    raw_lines = text.split("\n")
    stripped = strip_comments_and_strings(text)
    scopes: List[_Scope] = []
    i = 0
    head_start = 0
    pending = ""  # carried head across a consumed brace-initializer
    pending_line = 0  # line the carried head started on
    n = len(stripped)

    def class_prefix() -> str:
        names = [s.decl.name for s in scopes
                 if s.kind == "class" and s.decl is not None]
        return names[-1] + "::" if names else ""

    def innermost_class() -> Optional[_Scope]:
        for scope in reversed(scopes):
            if scope.kind == "class":
                return scope
            return None
        return None

    def apply_access_labels(head: str) -> str:
        scope = innermost_class()
        pieces = ACCESS_RE.split(head)
        if len(pieces) == 1:
            return head
        if scope is not None:
            # pieces alternate text/label/text/...; last label wins.
            scope.access = pieces[-2]
        return pieces[-1]

    def process_member_statement(statement: str, line: int,
                                 start: int, end: int) -> None:
        scope = innermost_class()
        if scope is None or scope.decl is None:
            return
        statement = apply_access_labels(statement).strip()
        if not statement:
            return
        lowered = statement + " "
        if lowered.startswith(MEMBER_SKIP_PREFIXES):
            return
        requires_free = ANNOTATION_RE.sub(" ", statement)
        if "(" in _strip_angle_groups(requires_free):
            name = _function_name(requires_free)
            if name is not None:
                scope.decl.method_names.append(name.split("::")[-1])
            return
        if re.match(r"^(struct|class|enum)\b[^=]*$", requires_free.strip()):
            return  # forward declaration
        for name in _member_names(requires_free):
            # The declarator's own line (access labels or blank lines may
            # precede it inside the same statement): last occurrence of
            # the name within the statement's source range.
            name_line = line
            hits = list(word_re(name).finditer(stripped, start, end))
            if hits:
                name_line = _line_of(stripped, hits[-1].start())
            scope.decl.members.append(Member(
                name=name, line=name_line, access=scope.access,
                transient_reason=_transient_annotation(raw_lines, name_line)))

    while i < n:
        ch = stripped[i]
        if ch == ";":
            head = pending + stripped[head_start:i]
            line = pending_line if pending else _content_line(
                stripped, head_start, i)
            pending = ""
            process_member_statement(head, line, head_start, i)
            head_start = i + 1
            i += 1
            continue
        if ch == "}":
            if scopes:
                scopes.pop()
            pending = ""
            head_start = i + 1
            i += 1
            continue
        if ch != "{":
            i += 1
            continue

        head = (pending + stripped[head_start:i]).strip()
        head_line = pending_line if pending else _content_line(
            stripped, head_start, i)
        head = apply_access_labels(head).strip()
        if head.rstrip().endswith("=") or (
                innermost_class() is not None and "(" not in
                _strip_angle_groups(ANNOTATION_RE.sub(" ", head))
                and not CLASS_HEAD_RE.search(head)
                and not ENUM_HEAD_RE.search(head)
                and not head.startswith("namespace")):
            # Brace initializer inside a declaration: consume the braces
            # and keep accumulating the same statement up to its ';'.
            close = _find_matching_brace(stripped, i)
            if not pending:
                pending_line = head_line
            pending = pending + stripped[head_start:i] + " "
            head_start = close + 1
            i = close + 1
            continue
        pending = ""

        enum_match = ENUM_HEAD_RE.search(head)
        if enum_match and "enum" in head.split():
            close = _find_matching_brace(stripped, i)
            decl = EnumDecl(
                name=class_prefix() + enum_match.group(1), file=path,
                line=head_line,
                enumerators=_parse_enum_body(
                    enum_match.group(1), stripped[i + 1:close]))
            model.add_enum(decl)
            head_start = close + 1
            i = close + 1
            continue

        if head.startswith("namespace") or head == "extern \"C\"":
            scopes.append(_Scope("namespace"))
            head_start = i + 1
            i += 1
            continue

        class_match = CLASS_HEAD_RE.search(ANNOTATION_RE.sub(" ", head))
        maybe_fn = _function_name(ANNOTATION_RE.sub(" ", head))
        if class_match and maybe_fn is None:
            decl = ClassDecl(
                name=class_prefix() + class_match.group(2), file=path,
                line=head_line, kind=class_match.group(1))
            model.add_class(decl)
            scopes.append(_Scope(
                "class", decl,
                access="public" if decl.kind == "struct" else "private"))
            head_start = i + 1
            i += 1
            continue

        if maybe_fn is not None:
            close = _find_matching_brace(stripped, i)
            qname = maybe_fn if "::" in maybe_fn else (
                class_prefix() + maybe_fn)
            scope = innermost_class()
            if scope is not None and scope.decl is not None:
                scope.decl.method_names.append(maybe_fn.split("::")[-1])
            model.add_function(FunctionDef(
                qname=qname, params=_function_params(head),
                body=stripped[i:close + 1], file=path, line=head_line,
                requires=[expr.strip()
                          for expr in REQUIRES_RE.findall(head)],
                body_start_line=_line_of(stripped, i)))
            head_start = close + 1
            i = close + 1
            continue

        # Unrecognized block (array initializer at namespace scope, ...):
        # skip it whole.
        close = _find_matching_brace(stripped, i)
        head_start = close + 1
        i = close + 1

    return model


def parse_file(path: str, virtual_path: Optional[str] = None) -> Model:
    with open(path, encoding="utf-8", errors="replace") as handle:
        return parse_text(handle.read(), virtual_path or path)
