#!/usr/bin/env python3
"""htune_analyze CLI — run the whole-tree invariant checks.

Usage:
  python3 tools/htune_analyze/analyze.py [--root DIR] [--checks a,b,c]
      [--config FILE] [--lock-order FILE]
      [--compile-db build/compile_commands.json] [--cache-dir DIR]

Checks: snapshot, lock, schema (default: all three). Exit status is 0
when the tree is clean, 1 when there are findings, 2 on usage errors.

The declaration model always comes from the tolerant in-repo parser
over src/ and tools/ (or the whole --root for fixture trees); when
--compile-db points at a compile_commands.json and clang is installed,
per-TU AST dumps refine it (see astdump.py). Config files default to
<root>/analyze.toml and <root>/lock_order.toml, falling back to the
checked-in ones under tools/htune_analyze/.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import tomllib

import astdump
import declparse
import lock_check
import schema_check
import snapshot_check
from model import Model

CPP_EXTENSIONS = (".h", ".cc")
SKIP_DIR_NAMES = {".git", "__pycache__", "analyze_fixtures",
                  "third_party", "htune_analyze"}


def collect_sources(root: str) -> list:
    scan = [d for d in (os.path.join(root, "src"),
                        os.path.join(root, "tools"))
            if os.path.isdir(d)]
    if not scan:
        scan = [root]
    files = []
    for top in scan:
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in SKIP_DIR_NAMES and not d.startswith("build"))
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return files


def load_toml(explicit, root, basename):
    candidates = [explicit] if explicit else [
        os.path.join(root, basename),
        os.path.join(root, "tools", "htune_analyze", basename)]
    for path in candidates:
        if path and os.path.isfile(path):
            with open(path, "rb") as handle:
                return tomllib.load(handle)
    if explicit:
        raise FileNotFoundError(explicit)
    return {}


def build_model(root: str, compile_db, cache_dir, verbose: bool) -> Model:
    model = Model()
    for path in collect_sources(root):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        model.merge(declparse.parse_file(path, rel))
    if compile_db and os.path.isfile(compile_db):
        stats = astdump.refine(model, root, compile_db, cache_dir)
        if verbose:
            print(f"[htune-analyze] ast refine: {stats['tus']} TUs, "
                  f"{stats['cached']} cached, {stats['dumped']} dumped, "
                  f"{stats['failed']} fell back", file=sys.stderr)
    return model


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="htune-analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=".")
    parser.add_argument("--checks", default="snapshot,lock,schema")
    parser.add_argument("--config", default=None)
    parser.add_argument("--lock-order", default=None)
    parser.add_argument("--compile-db", default=None)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in checks if c not in ("snapshot", "lock", "schema")]
    if unknown:
        print(f"unknown check(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    try:
        config = load_toml(args.config, root, "analyze.toml")
        lock_order = load_toml(args.lock_order, root, "lock_order.toml")
    except FileNotFoundError as error:
        print(f"config not found: {error}", file=sys.stderr)
        return 2
    cache_dir = args.cache_dir or os.path.join(root, ".htune-ast-cache")

    model = build_model(root, args.compile_db, cache_dir, args.verbose)
    findings = []
    if "snapshot" in checks:
        findings.extend(snapshot_check.run(model, config))
    if "lock" in checks:
        findings.extend(lock_check.run(model, lock_order))
    if "schema" in checks:
        findings.extend(schema_check.run(model, config, root))

    findings.sort(key=lambda f: (f.file, f.line, f.check, f.message))
    for finding in findings:
        print(finding)
    summary = (f"[htune-analyze] checks: {','.join(checks)} — "
               f"{len(findings)} finding(s)")
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
