"""Clang AST-dump frontend: refines the declaration model per TU.

When a compile database and clang are available (CI; any dev box with
clang installed), each translation unit is dumped with
`clang ... -fsyntax-only -Xclang -ast-dump=json` and its record/enum
declarations are extracted and merged (union) into the declparse
baseline. Clang sees through macros and template idioms the tolerant
parser cannot, so a member hidden behind an HTUNE_ attribute macro or a
macro-generated field still reaches the snapshot check. Function
*bodies* intentionally stay with declparse: the checks word-search
source as written, and clang's macro-expanded view would both lose
HTUNE_TRANSIENT comments and rewrite the text under test.

Dumps are cached under `--cache-dir`, keyed by a hash of the dumper
identity (compiler path + version), the TU source, and the transitive
closure of its in-repo `#include "..."` headers — so an unchanged TU
never re-dumps, and editing any header it includes invalidates exactly
the TUs that see it. What is cached is the *extracted* model (a few KB),
not the raw AST JSON (hundreds of MB per TU).

Every step is defensive: any failure (no clang, crash, JSON the
extractor does not understand) falls back to the declparse-only model
for that TU instead of failing the analysis run.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import subprocess
from typing import Callable, Dict, List, Optional, Set, Tuple

import declparse
from model import ClassDecl, EnumDecl, Member, Model

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)


# ---------------------------------------------------------------------------
# Cache keying


def _read_bytes(path: str) -> Optional[bytes]:
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except OSError:
        return None


def include_closure(source_path: str, root: str) -> List[str]:
    """Transitive in-repo `#include "..."` closure of one TU, resolved
    against the including file's directory and the repo root (the tree
    compiles with `-I <root>`). Sorted for stable hashing."""
    seen: Set[str] = set()
    queue = [source_path]
    while queue:
        path = queue.pop()
        data = _read_bytes(path)
        if data is None:
            continue
        for rel in INCLUDE_RE.findall(data.decode("utf-8", "replace")):
            for base in (os.path.dirname(path), root,
                         os.path.join(root, "src")):
                candidate = os.path.normpath(os.path.join(base, rel))
                if candidate.startswith(os.path.normpath(root) + os.sep) \
                        and os.path.isfile(candidate):
                    if candidate not in seen:
                        seen.add(candidate)
                        queue.append(candidate)
                    break
    return sorted(seen)


def cache_key(source_path: str, root: str, dumper_id: str) -> str:
    digest = hashlib.sha256()
    digest.update(dumper_id.encode())
    for path in [source_path] + include_closure(source_path, root):
        digest.update(b"\0" + os.path.relpath(path, root).encode())
        digest.update(b"\0" + (_read_bytes(path) or b""))
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Model (de)serialization for the cache


def model_to_json(model: Model) -> dict:
    return {
        "classes": [{
            "name": c.name, "kind": c.kind, "file": c.file, "line": c.line,
            "members": [[m.name, m.line, m.access] for m in c.members],
            "methods": c.method_names,
        } for c in model.classes.values()],
        "enums": [{
            "name": e.name, "file": e.file, "line": e.line,
            "enumerators": [[n, v] for n, v in e.enumerators],
        } for e in model.enums.values()],
    }


def model_from_json(data: dict) -> Model:
    model = Model()
    for entry in data.get("classes", []):
        model.add_class(ClassDecl(
            name=entry["name"], kind=entry["kind"], file=entry["file"],
            line=entry["line"],
            members=[Member(name=n, line=l, access=a)
                     for n, l, a in entry["members"]],
            method_names=list(entry["methods"])))
    for entry in data.get("enums", []):
        model.add_enum(EnumDecl(
            name=entry["name"], file=entry["file"], line=entry["line"],
            enumerators=[(n, v) for n, v in entry["enumerators"]]))
    return model


# ---------------------------------------------------------------------------
# Clang JSON extraction


class _Loc:
    """Clang's JSON elides unchanged file/line fields; carry them."""

    def __init__(self) -> None:
        self.file = ""
        self.line = 0

    def update(self, loc: Optional[dict]) -> None:
        if not isinstance(loc, dict):
            return
        spelling = loc.get("spellingLoc", loc)
        if "file" in spelling:
            self.file = spelling["file"]
        if "line" in spelling:
            self.line = spelling.get("line", self.line)


def _enum_value(node: dict, fallback: Optional[int]) -> Optional[int]:
    for child in node.get("inner", []) or []:
        value = child.get("value")
        if value is not None:
            try:
                return int(value)
            except (TypeError, ValueError):
                return fallback
    return fallback


def extract_model(tu: dict, root: str) -> Model:
    """Record and enum declarations from one TU's AST JSON, restricted
    to files under `root` (system headers are dropped)."""
    model = Model()
    loc = _Loc()
    norm_root = os.path.normpath(os.path.abspath(root))

    def rel_file() -> Optional[str]:
        path = os.path.normpath(os.path.abspath(loc.file))
        if path.startswith(norm_root + os.sep):
            return os.path.relpath(path, norm_root).replace(os.sep, "/")
        return None

    def visit(node: dict, class_prefix: str) -> None:
        if not isinstance(node, dict):
            return
        loc.update(node.get("loc"))
        kind = node.get("kind")
        if kind == "CXXRecordDecl" and node.get("completeDefinition") \
                and node.get("name"):
            file = rel_file()
            if file is not None:
                _extract_record(node, class_prefix, file, loc.line)
            return
        if kind == "EnumDecl" and node.get("name"):
            file = rel_file()
            if file is not None:
                _extract_enum(node, class_prefix, file, loc.line)
            return
        for child in node.get("inner", []) or []:
            visit(child, class_prefix)

    def _extract_record(node: dict, prefix: str, file: str,
                        line: int) -> None:
        tag = node.get("tagUsed", "struct")
        name = prefix + node["name"]
        decl = ClassDecl(name=name, kind=tag, file=file, line=line)
        access = "public" if tag == "struct" else "private"
        for child in node.get("inner", []) or []:
            loc.update(child.get("loc"))
            ckind = child.get("kind")
            if ckind == "AccessSpecDecl":
                access = child.get("access", access)
            elif ckind == "FieldDecl" and child.get("name"):
                decl.members.append(Member(
                    name=child["name"], line=loc.line, access=access))
            elif ckind in ("CXXMethodDecl", "CXXConstructorDecl",
                           "CXXDestructorDecl") and child.get("name"):
                decl.method_names.append(child["name"])
            elif ckind in ("CXXRecordDecl", "EnumDecl"):
                visit(child, node["name"] + "::")
        model.add_class(decl)

    def _extract_enum(node: dict, prefix: str, file: str,
                      line: int) -> None:
        enumerators: List[Tuple[str, Optional[int]]] = []
        next_value: Optional[int] = 0
        for child in node.get("inner", []) or []:
            if child.get("kind") == "EnumConstantDecl" and child.get("name"):
                value = _enum_value(child, next_value)
                enumerators.append((child["name"], value))
                next_value = value + 1 if value is not None else None
        model.add_enum(EnumDecl(
            name=prefix + node["name"], file=file, line=line,
            enumerators=enumerators))

    visit(tu, "")
    return model


def _annotate_transients(model: Model, root: str) -> None:
    """The AST knows nothing of comments: re-harvest HTUNE_TRANSIENT
    annotations from source for every AST-discovered member."""
    lines_cache: Dict[str, List[str]] = {}
    for cls in model.classes.values():
        for member in cls.members:
            if cls.file not in lines_cache:
                data = _read_bytes(os.path.join(root, cls.file))
                lines_cache[cls.file] = (
                    data.decode("utf-8", "replace").split("\n")
                    if data is not None else [])
            member.transient_reason = declparse._transient_annotation(
                lines_cache[cls.file], member.line)


# ---------------------------------------------------------------------------
# Driver


def _clang_dumper(clang: str) -> Callable[[dict], Optional[dict]]:
    def dump(entry: dict) -> Optional[dict]:
        args = [clang]
        raw = entry.get("arguments")
        if raw:
            raw = raw[1:]
        else:
            raw = entry.get("command", "").split()[1:]
        skip_next = False
        for arg in raw:
            if skip_next:
                skip_next = False
                continue
            if arg in ("-o", "-c"):
                skip_next = arg == "-o"
                continue
            args.append(arg)
        args += ["-fsyntax-only", "-Xclang", "-ast-dump=json", "-w"]
        try:
            proc = subprocess.run(
                args, cwd=entry.get("directory"), capture_output=True,
                text=True, timeout=300)
            if proc.returncode != 0 or not proc.stdout:
                return None
            return json.loads(proc.stdout)
        except (OSError, subprocess.SubprocessError, json.JSONDecodeError,
                ValueError):
            return None
    return dump


def dumper_identity(clang: str) -> str:
    try:
        proc = subprocess.run([clang, "--version"], capture_output=True,
                              text=True, timeout=30)
        return clang + "\n" + proc.stdout.splitlines()[0]
    except (OSError, subprocess.SubprocessError, IndexError):
        return clang


def find_clang() -> Optional[str]:
    for name in ("clang++", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_db(path: str) -> List[dict]:
    try:
        with open(path, encoding="utf-8") as handle:
            db = json.load(handle)
        return db if isinstance(db, list) else []
    except (OSError, json.JSONDecodeError):
        return []


def refine(model: Model, root: str, compile_db: str, cache_dir: str,
           dumper: Optional[Callable[[dict], Optional[dict]]] = None,
           dumper_id: Optional[str] = None) -> Dict[str, int]:
    """Merges AST-extracted declarations for every in-repo TU in the
    compile database into `model`. Returns counters for reporting and
    the cache unit test: {"tus", "cached", "dumped", "failed"}."""
    stats = {"tus": 0, "cached": 0, "dumped": 0, "failed": 0}
    entries = load_compile_db(compile_db)
    if not entries:
        return stats
    if dumper is None:
        clang = find_clang()
        if clang is None:
            return stats
        dumper = _clang_dumper(clang)
        dumper_id = dumper_identity(clang)
    dumper_id = dumper_id or "injected"
    norm_root = os.path.normpath(os.path.abspath(root))
    os.makedirs(cache_dir, exist_ok=True)

    for entry in entries:
        source = os.path.normpath(os.path.join(
            entry.get("directory", ""), entry.get("file", "")))
        if not source.startswith(norm_root + os.sep):
            continue
        rel = os.path.relpath(source, norm_root)
        if not rel.startswith(("src" + os.sep, "tools" + os.sep)):
            continue
        stats["tus"] += 1
        key = cache_key(source, norm_root, dumper_id)
        stem = os.path.splitext(os.path.basename(source))[0]
        cache_path = os.path.join(cache_dir, f"{stem}-{key[:16]}.json")
        cached = _read_bytes(cache_path)
        if cached is not None:
            try:
                model.merge(model_from_json(json.loads(cached)))
                stats["cached"] += 1
                continue
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                pass
        tu = dumper(entry)
        if tu is None:
            stats["failed"] += 1
            continue
        try:
            extracted = extract_model(tu, norm_root)
            _annotate_transients(extracted, norm_root)
        except Exception:  # noqa: BLE001 — fall back, never fail the run
            stats["failed"] += 1
            continue
        stats["dumped"] += 1
        try:
            with open(cache_path, "w", encoding="utf-8") as handle:
                json.dump(model_to_json(extracted), handle)
        except OSError:
            pass
        model.merge(extracted)
    return stats
