#!/usr/bin/env python3
"""Run the tuning microbenchmarks and distill a BENCH_tuning.json snapshot.

Runs the google-benchmark `microbench` binary with --benchmark_format=json,
keeps the allocator end-to-end and parallel-runtime entries, and computes the
shared-cache speedup (Baseline / ManyGroups wall time at each group count).
Stdlib only; no third-party packages.

Usage:
  tools/bench_report.py --bin build/bench/microbench --out BENCH_tuning.json \
      [--min-time 0.1] [--extra-filter REGEX]
"""

import argparse
import json
import re
import subprocess
import sys

# Benchmarks the report tracks: allocator end-to-end costs plus the parallel
# runtime primitives they are built on.
FILTER = (
    "ManyGroups|LatencyCacheHit|ParallelForOverhead|ParallelMonteCarlo"
    "|BM_RepetitionAllocator/|BM_HeterogeneousAllocator/"
)


def run_benchmarks(binary, min_time, extra_filter):
    bench_filter = FILTER
    if extra_filter:
        bench_filter = f"{bench_filter}|{extra_filter}"
    cmd = [
        binary,
        f"--benchmark_filter={bench_filter}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed: {' '.join(cmd)}")
    return json.loads(proc.stdout)


def speedups(benchmarks):
    """Baseline / shared-cache time ratio per group-count argument."""
    times = {}
    for entry in benchmarks:
        name = entry.get("name", "")
        match = re.fullmatch(
            r"BM_RepetitionAllocatorManyGroups(Baseline)?/(\d+)", name)
        if not match:
            continue
        variant = "baseline" if match.group(1) else "shared"
        # User counters surface as top-level keys in the JSON entries.
        groups = int(entry.get("groups", 0))
        times.setdefault(groups, {})[variant] = entry["real_time"]
    out = []
    for groups in sorted(times):
        pair = times[groups]
        if "baseline" in pair and "shared" in pair and pair["shared"] > 0:
            out.append({
                "groups": groups,
                "shared_cache_ms": pair["shared"],
                "baseline_ms": pair["baseline"],
                "speedup": pair["baseline"] / pair["shared"],
            })
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin", default="build/bench/microbench",
                        help="path to the microbench binary")
    parser.add_argument("--out", default="BENCH_tuning.json",
                        help="output JSON path")
    parser.add_argument("--min-time", default="0.1",
                        help="--benchmark_min_time per benchmark (seconds)")
    parser.add_argument("--extra-filter", default="",
                        help="extra regex OR-ed onto the benchmark filter")
    args = parser.parse_args()

    raw = run_benchmarks(args.bin, args.min_time, args.extra_filter)
    benchmarks = [
        {
            "name": b["name"],
            "real_time": b["real_time"],
            "cpu_time": b["cpu_time"],
            "time_unit": b["time_unit"],
            "iterations": b["iterations"],
            **({"groups": b["groups"]} if "groups" in b else {}),
        }
        for b in raw.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    ]
    report = {
        "context": {
            key: raw.get("context", {}).get(key)
            for key in ("host_name", "num_cpus", "mhz_per_cpu",
                        "library_build_type")
        },
        "allocator_speedup_vs_cloned_curves": speedups(benchmarks),
        "benchmarks": benchmarks,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    for entry in report["allocator_speedup_vs_cloned_curves"]:
        print(f"{entry['groups']} groups: {entry['speedup']:.2f}x "
              f"({entry['baseline_ms']:.1f} -> {entry['shared_cache_ms']:.1f})")
    print(f"wrote {args.out} ({len(benchmarks)} benchmarks)")


if __name__ == "__main__":
    main()
