#!/usr/bin/env python3
"""Run the tuning microbenchmarks and distill a BENCH_tuning.json snapshot.

Runs the google-benchmark `microbench` binary with --benchmark_format=json,
keeps the allocator end-to-end and parallel-runtime entries, and computes the
shared-cache speedup (Baseline / ManyGroups wall time at each group count).
Stdlib only; no third-party packages.

Usage:
  tools/bench_report.py --bin build/bench/microbench --out BENCH_tuning.json \
      [--min-time 0.1] [--extra-filter REGEX] [--metrics METRICS_JSON]
  tools/bench_report.py --validate-metrics METRICS_JSON
  tools/bench_report.py --chaos CHAOS_JSON

--metrics folds an observability export (htune_cli --metrics=PATH, schema
version 1; see src/obs/export.h) into the report under a "metrics" key:
counters and gauges verbatim, histograms summarized, spans aggregated per
name. --validate-metrics parses an export, checks every invariant the
schema promises (finite numbers, histogram count arithmetic, span field
sanity), prints a canonical digest, and exits nonzero on any violation —
the C++ round-trip test drives this mode.

--chaos parses a bench/chaos_soak --out=PATH export, re-checks the two
gates it encodes (every chaos schedule converged to the fault-free
reference; fault-free resilience overhead within the gated ratio), prints
a canonical digest, and exits nonzero on any violation — CI's chaos job
drives this mode after the bench smoke run.

--market parses a bench/market_throughput --out=PATH export, checks every
field's shape, re-derives events_per_sec and speedup from their inputs
(the committed BENCH_market.json must be internally consistent, not just
well-formed), re-checks the ≥10x gate on at least one 1M+-event workload
when a baseline was supplied, prints a canonical digest, and exits
nonzero on any violation — CI's perf-smoke job drives this mode.

--fleet parses a bench/fleet_soak --out=PATH export, re-checks the gates
it encodes (supervision overhead within the gated ratio; quarantined ==
deliberately poisoned; latency stats ordered), prints a canonical digest,
and exits nonzero on any violation — CI's fleet job drives this mode
after the bench smoke run and against the committed BENCH_fleet.json.

--shared parses a bench/shared_market --out=PATH export, re-checks the
gates it encodes (>= min_jobs_for_gate concurrent jobs on one market when
not a smoke run; every posted task completed; the observed competition
ratio matches the thinning model's prediction), prints a canonical
digest, and exits nonzero on any violation — CI's server job drives this
mode and against the committed BENCH_shared.json.

Overhead and competition gates whose denominator recorded as 0 (a smoke
run finishing inside the timer's resolution) are reported as skipped on
stderr instead of tripping a ZeroDivisionError; the remaining shape
checks still run.
"""

import argparse
import json
import math
import re
import subprocess
import sys

METRICS_SCHEMA_VERSION = 1

# Benchmarks the report tracks: allocator end-to-end costs plus the parallel
# runtime primitives they are built on.
FILTER = (
    "ManyGroups|LatencyCacheHit|ParallelForOverhead|ParallelMonteCarlo"
    "|BM_RepetitionAllocator/|BM_HeterogeneousAllocator/"
)


def run_benchmarks(binary, min_time, extra_filter):
    bench_filter = FILTER
    if extra_filter:
        bench_filter = f"{bench_filter}|{extra_filter}"
    cmd = [
        binary,
        f"--benchmark_filter={bench_filter}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed: {' '.join(cmd)}")
    return json.loads(proc.stdout)


def speedups(benchmarks):
    """Baseline / shared-cache time ratio per group-count argument."""
    times = {}
    for entry in benchmarks:
        name = entry.get("name", "")
        match = re.fullmatch(
            r"BM_RepetitionAllocatorManyGroups(Baseline)?/(\d+)", name)
        if not match:
            continue
        variant = "baseline" if match.group(1) else "shared"
        # User counters surface as top-level keys in the JSON entries.
        groups = int(entry.get("groups", 0))
        times.setdefault(groups, {})[variant] = entry["real_time"]
    out = []
    for groups in sorted(times):
        pair = times[groups]
        if "baseline" in pair and "shared" in pair and pair["shared"] > 0:
            out.append({
                "groups": groups,
                "shared_cache_ms": pair["shared"],
                "baseline_ms": pair["baseline"],
                "speedup": pair["baseline"] / pair["shared"],
            })
    return out


def load_metrics(path):
    """Parses and validates an observability metrics export."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema_version") != METRICS_SCHEMA_VERSION:
        raise SystemExit(
            f"{path}: unsupported metrics schema_version "
            f"{data.get('schema_version')!r} (expected "
            f"{METRICS_SCHEMA_VERSION})")
    for section in ("counters", "gauges", "histograms", "spans"):
        if section not in data:
            raise SystemExit(f"{path}: missing '{section}' section")
    for name, value in data["counters"].items():
        if not isinstance(value, int) or value < 0:
            raise SystemExit(f"{path}: counter {name} is not a non-negative "
                             f"integer: {value!r}")
    for name, value in data["gauges"].items():
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            raise SystemExit(f"{path}: gauge {name} is not finite: {value!r}")
    for name, hist in data["histograms"].items():
        for bound in ("lo", "hi"):
            if not math.isfinite(hist[bound]):
                raise SystemExit(f"{path}: histogram {name} {bound} is not "
                                 f"finite: {hist[bound]!r}")
        if not hist["lo"] < hist["hi"]:
            raise SystemExit(f"{path}: histogram {name} has lo >= hi")
        parts = (sum(hist["buckets"]) + hist["underflow"] + hist["overflow"]
                 + hist["nan_count"])
        if parts != hist["count"]:
            raise SystemExit(
                f"{path}: histogram {name} count {hist['count']} != "
                f"buckets+underflow+overflow+nan {parts}")
    for span in data["spans"]:
        for key in ("id", "parent_id", "start_ns", "duration_ns", "depth",
                    "thread"):
            if not isinstance(span.get(key), int) or span[key] < 0:
                raise SystemExit(f"{path}: span {span.get('name')!r} has a "
                                 f"bad '{key}' field: {span.get(key)!r}")
        if span["id"] == 0:
            raise SystemExit(f"{path}: span {span.get('name')!r} has id 0 "
                             "(ids start at 1)")
    if data.get("spans_dropped", 0) < 0:
        raise SystemExit(f"{path}: negative spans_dropped")
    return data


CHAOS_SCHEMA_VERSION = 1

# Overhead ratios are exported with ~6 significant digits while the ms
# inputs carry 4 decimals, so the re-derived ratio only matches
# approximately; 2% is far tighter than any real regression and far looser
# than the rounding error of any timeable run.
OVERHEAD_RATIO_TOLERANCE = 0.02
# Below this many ms the 4-decimal export rounding dominates the quotient
# and re-derivation is meaningless.
OVERHEAD_REDERIVE_FLOOR_MS = 0.1


def check_overhead_gate(path, overhead, section, num_key, den_key):
    """Validates one {num, den, ratio, max_ratio} overhead section.

    Returns True when the gate was checked, False when it was *skipped*
    because the run recorded a 0 ms denominator (a --smoke run can finish
    inside the timer's resolution; the ratio is then 0/0 noise, and
    re-deriving it would divide by zero). A skip is reported, never a
    traceback, and the rest of the export is still validated.
    """
    for key in (num_key, den_key, "ratio", "max_ratio"):
        value = overhead.get(key)
        if not isinstance(value, (int, float)) or not math.isfinite(value) \
                or value < 0:
            raise SystemExit(f"{path}: {section}.{key} is not a "
                             f"non-negative finite number: {value!r}")
    if overhead["max_ratio"] <= 0:
        raise SystemExit(f"{path}: {section}.max_ratio is not positive: "
                         f"{overhead['max_ratio']!r}")
    if overhead[den_key] <= 0 or overhead[num_key] <= 0:
        print(f"{path}: {section} gate SKIPPED: {num_key}="
              f"{overhead[num_key]!r} {den_key}={overhead[den_key]!r} "
              "(run too fast to time; ratio not derivable)",
              file=sys.stderr)
        return False
    derived = overhead[num_key] / overhead[den_key]
    if min(overhead[num_key], overhead[den_key]) >= \
            OVERHEAD_REDERIVE_FLOOR_MS and \
            abs(derived - overhead["ratio"]) > \
            OVERHEAD_RATIO_TOLERANCE * max(derived, 1.0):
        raise SystemExit(
            f"{path}: {section}.ratio {overhead['ratio']!r} does not equal "
            f"{num_key}/{den_key} ({derived!r})")
    if overhead["ratio"] > overhead["max_ratio"]:
        raise SystemExit(
            f"{path}: {section} ratio {overhead['ratio']:.4f} exceeds the "
            f"gated maximum {overhead['max_ratio']:.4f}")
    return True


def load_chaos(path):
    """Parses and validates a bench/chaos_soak --out export."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema_version") != CHAOS_SCHEMA_VERSION:
        raise SystemExit(
            f"{path}: unsupported chaos schema_version "
            f"{data.get('schema_version')!r} (expected "
            f"{CHAOS_SCHEMA_VERSION})")
    for key in ("schedules", "converged", "crashes", "faults_healed"):
        if not isinstance(data.get(key), int) or data[key] < 0:
            raise SystemExit(f"{path}: '{key}' is not a non-negative "
                             f"integer: {data.get(key)!r}")
    if data["converged"] != data["schedules"]:
        raise SystemExit(
            f"{path}: only {data['converged']} of {data['schedules']} chaos "
            "schedules converged to the fault-free reference")
    overhead = data.get("fault_free_overhead")
    if not isinstance(overhead, dict):
        raise SystemExit(f"{path}: missing 'fault_free_overhead' section")
    check_overhead_gate(path, overhead, "fault_free_overhead",
                        "on_ms", "off_ms")
    latency = data.get("recovery_latency_ms")
    if not isinstance(latency, dict):
        raise SystemExit(f"{path}: missing 'recovery_latency_ms' section")
    if not isinstance(latency.get("count"), int) or latency["count"] < 0:
        raise SystemExit(f"{path}: recovery_latency_ms.count is not a "
                         f"non-negative integer: {latency.get('count')!r}")
    for key in ("min", "mean", "max", "fresh_run_ms"):
        value = latency.get(key)
        if not isinstance(value, (int, float)) or not math.isfinite(value) \
                or value < 0:
            raise SystemExit(f"{path}: recovery_latency_ms.{key} is not a "
                             f"non-negative finite number: {value!r}")
    if latency["count"] > 0 and not (
            latency["min"] <= latency["mean"] <= latency["max"]):
        raise SystemExit(
            f"{path}: recovery latency min/mean/max are not ordered: "
            f"{latency['min']!r}/{latency['mean']!r}/{latency['max']!r}")
    return data


def chaos_digest(data):
    """Canonical one-line-per-fact text form of a chaos export."""
    overhead = data["fault_free_overhead"]
    latency = data["recovery_latency_ms"]
    lines = [
        f"schema_version={data['schema_version']}",
        f"schedules={data['schedules']} converged={data['converged']} "
        f"crashes={data['crashes']} faults_healed={data['faults_healed']}",
        "overhead on_ms=%.17g off_ms=%.17g ratio=%.17g max_ratio=%.17g"
        % (overhead["on_ms"], overhead["off_ms"], overhead["ratio"],
           overhead["max_ratio"]),
        "recovery count=%d min_ms=%.17g mean_ms=%.17g max_ms=%.17g "
        "fresh_run_ms=%.17g"
        % (latency["count"], latency["min"], latency["mean"], latency["max"],
           latency["fresh_run_ms"]),
    ]
    return "\n".join(lines)


MARKET_SCHEMA_VERSION = 1

# Re-derived ratios (events/sec from counts and wall time, speedup from the
# baseline rate) must agree to this relative tolerance; the bench computes
# them from the same doubles it exports, so only real corruption or a
# hand-edited report trips it.
MARKET_RATIO_TOLERANCE = 1e-9


def load_market(path):
    """Parses and validates a bench/market_throughput --out export."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema_version") != MARKET_SCHEMA_VERSION:
        raise SystemExit(
            f"{path}: unsupported market schema_version "
            f"{data.get('schema_version')!r} (expected "
            f"{MARKET_SCHEMA_VERSION})")
    for key in ("smoke", "has_baseline"):
        if not isinstance(data.get(key), bool):
            raise SystemExit(f"{path}: '{key}' is not a bool: "
                             f"{data.get(key)!r}")
    gate_events = data.get("min_events_for_gate")
    if not isinstance(gate_events, int) or gate_events <= 0:
        raise SystemExit(f"{path}: min_events_for_gate is not a positive "
                         f"integer: {gate_events!r}")
    # Without a baseline there is nothing to gate against and the bench
    # exports target_speedup 0; with one, the target must be positive.
    target = data.get("target_speedup")
    if not isinstance(target, (int, float)) or not math.isfinite(target) \
            or target < 0 or (data.get("has_baseline") and target <= 0):
        raise SystemExit(f"{path}: target_speedup is not a valid gate "
                         f"target: {target!r}")
    workloads = data.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise SystemExit(f"{path}: 'workloads' is not a non-empty list")
    names = set()
    gate_met = False
    for w in workloads:
        name = w.get("name")
        if not isinstance(name, str) or not name:
            raise SystemExit(f"{path}: workload with a missing name: {w!r}")
        if name in names:
            raise SystemExit(f"{path}: duplicate workload '{name}'")
        names.add(name)
        where = f"{path}: workload '{name}'"
        for key in ("tasks", "worker_arrivals", "events_dispatched",
                    "reprices", "total_events", "trace_records", "spent"):
            if not isinstance(w.get(key), int) or w[key] < 0:
                raise SystemExit(f"{where}: '{key}' is not a non-negative "
                                 f"integer: {w.get(key)!r}")
        if w["tasks"] == 0 or w["total_events"] == 0:
            raise SystemExit(f"{where}: ran no work (tasks="
                             f"{w['tasks']}, total_events="
                             f"{w['total_events']})")
        if w["total_events"] < w["worker_arrivals"] + w["events_dispatched"]:
            raise SystemExit(
                f"{where}: total_events {w['total_events']} below its "
                f"components ({w['worker_arrivals']} arrivals + "
                f"{w['events_dispatched']} dispatched)")
        for key in ("wall_seconds", "events_per_sec"):
            value = w.get(key)
            if not isinstance(value, (int, float)) \
                    or not math.isfinite(value) or value <= 0:
                raise SystemExit(f"{where}: '{key}' is not a positive "
                                 f"finite number: {value!r}")
        derived = w["total_events"] / w["wall_seconds"]
        if abs(derived - w["events_per_sec"]) > \
                MARKET_RATIO_TOLERANCE * derived:
            raise SystemExit(
                f"{where}: events_per_sec {w['events_per_sec']!r} does not "
                f"equal total_events/wall_seconds ({derived!r})")
        has_speedup = "speedup" in w or "baseline_events_per_sec" in w
        if data["has_baseline"] != has_speedup:
            raise SystemExit(
                f"{where}: baseline fields "
                f"{'missing' if data['has_baseline'] else 'present'} but "
                f"has_baseline is {data['has_baseline']}")
        if has_speedup:
            for key in ("baseline_events_per_sec", "speedup"):
                value = w.get(key)
                if not isinstance(value, (int, float)) \
                        or not math.isfinite(value) or value <= 0:
                    raise SystemExit(f"{where}: '{key}' is not a positive "
                                     f"finite number: {value!r}")
            derived = w["events_per_sec"] / w["baseline_events_per_sec"]
            if abs(derived - w["speedup"]) > MARKET_RATIO_TOLERANCE * derived:
                raise SystemExit(
                    f"{where}: speedup {w['speedup']!r} does not equal "
                    f"events_per_sec/baseline_events_per_sec ({derived!r})")
            if w["total_events"] >= gate_events and w["speedup"] >= target:
                gate_met = True
    if data["has_baseline"] and not gate_met:
        raise SystemExit(
            f"{path}: no workload with >= {gate_events} events reached the "
            f"{target}x speedup gate")
    return data


def market_digest(data):
    """Canonical one-line-per-workload text form of a market export."""
    lines = [
        f"schema_version={data['schema_version']} "
        f"smoke={str(data['smoke']).lower()} "
        f"min_events_for_gate={data['min_events_for_gate']} "
        f"target_speedup=%.17g has_baseline=%s"
        % (data["target_speedup"], str(data["has_baseline"]).lower()),
    ]
    for w in data["workloads"]:
        line = (
            "workload %s tasks=%d total_events=%d events_per_sec=%.17g"
            % (w["name"], w["tasks"], w["total_events"], w["events_per_sec"]))
        if "speedup" in w:
            line += " speedup=%.17g" % w["speedup"]
        lines.append(line)
    return "\n".join(lines)


FLEET_SCHEMA_VERSION = 1


def load_fleet(path):
    """Parses and validates a bench/fleet_soak --out export."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema_version") != FLEET_SCHEMA_VERSION:
        raise SystemExit(
            f"{path}: unsupported fleet schema_version "
            f"{data.get('schema_version')!r} (expected "
            f"{FLEET_SCHEMA_VERSION})")
    if not isinstance(data.get("smoke"), bool):
        raise SystemExit(f"{path}: 'smoke' is not a bool: "
                         f"{data.get('smoke')!r}")
    for key in ("fleet_jobs", "schedules", "kills", "poisoned",
                "quarantines", "recovered_jobs"):
        if not isinstance(data.get(key), int) or data[key] < 0:
            raise SystemExit(f"{path}: '{key}' is not a non-negative "
                             f"integer: {data.get(key)!r}")
    if data["fleet_jobs"] == 0 or data["schedules"] == 0:
        raise SystemExit(f"{path}: ran no work (fleet_jobs="
                         f"{data['fleet_jobs']}, schedules="
                         f"{data['schedules']})")
    # The quarantine gate: exactly the deliberately poisoned journals were
    # quarantined, nothing else.
    if data["quarantines"] != data["poisoned"]:
        raise SystemExit(
            f"{path}: quarantined {data['quarantines']} jobs but poisoned "
            f"{data['poisoned']}")
    overhead = data.get("supervision_overhead")
    if not isinstance(overhead, dict):
        raise SystemExit(f"{path}: missing 'supervision_overhead' section")
    check_overhead_gate(path, overhead, "supervision_overhead",
                        "supervised_ms", "direct_ms")
    latency = data.get("recovery_latency_ms")
    if not isinstance(latency, dict):
        raise SystemExit(f"{path}: missing 'recovery_latency_ms' section")
    if not isinstance(latency.get("count"), int) or latency["count"] < 0:
        raise SystemExit(f"{path}: recovery_latency_ms.count is not a "
                         f"non-negative integer: {latency.get('count')!r}")
    for key in ("min", "mean", "max"):
        value = latency.get(key)
        if not isinstance(value, (int, float)) or not math.isfinite(value) \
                or value < 0:
            raise SystemExit(f"{path}: recovery_latency_ms.{key} is not a "
                             f"non-negative finite number: {value!r}")
    if latency["count"] > 0 and not (
            latency["min"] <= latency["mean"] <= latency["max"]):
        raise SystemExit(
            f"{path}: recovery latency min/mean/max are not ordered: "
            f"{latency['min']!r}/{latency['mean']!r}/{latency['max']!r}")
    return data


def fleet_digest(data):
    """Canonical one-line-per-fact text form of a fleet export."""
    overhead = data["supervision_overhead"]
    latency = data["recovery_latency_ms"]
    lines = [
        f"schema_version={data['schema_version']} "
        f"smoke={str(data['smoke']).lower()}",
        f"fleet_jobs={data['fleet_jobs']} schedules={data['schedules']} "
        f"kills={data['kills']} poisoned={data['poisoned']} "
        f"quarantines={data['quarantines']} "
        f"recovered_jobs={data['recovered_jobs']}",
        "overhead supervised_ms=%.17g direct_ms=%.17g ratio=%.17g "
        "max_ratio=%.17g"
        % (overhead["supervised_ms"], overhead["direct_ms"],
           overhead["ratio"], overhead["max_ratio"]),
        "recovery count=%d min_ms=%.17g mean_ms=%.17g max_ms=%.17g"
        % (latency["count"], latency["min"], latency["mean"],
           latency["max"]),
    ]
    return "\n".join(lines)


SHARED_SCHEMA_VERSION = 1

# bench/shared_market exports its doubles at %.17g, so re-derivation is
# exact up to one ulp of quotient rounding.
SHARED_RATIO_TOLERANCE = 1e-9


def load_shared(path):
    """Parses and validates a bench/shared_market --out export."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema_version") != SHARED_SCHEMA_VERSION:
        raise SystemExit(
            f"{path}: unsupported shared schema_version "
            f"{data.get('schema_version')!r} (expected "
            f"{SHARED_SCHEMA_VERSION})")
    if not isinstance(data.get("smoke"), bool):
        raise SystemExit(f"{path}: 'smoke' is not a bool: "
                         f"{data.get('smoke')!r}")
    for key in ("jobs", "min_jobs_for_gate", "tasks", "tasks_completed",
                "total_events"):
        if not isinstance(data.get(key), int) or data[key] < 0:
            raise SystemExit(f"{path}: '{key}' is not a non-negative "
                             f"integer: {data.get(key)!r}")
    if data["jobs"] == 0 or data["tasks"] == 0 or data["total_events"] == 0:
        raise SystemExit(f"{path}: ran no work (jobs={data['jobs']}, "
                         f"tasks={data['tasks']}, total_events="
                         f"{data['total_events']})")
    # The concurrency gate: a full (non-smoke) run must actually host the
    # advertised job count on one shared market.
    if not data["smoke"] and data["jobs"] < data["min_jobs_for_gate"]:
        raise SystemExit(
            f"{path}: only {data['jobs']} concurrent jobs; the gate "
            f"requires >= {data['min_jobs_for_gate']}")
    # The completion gate: every posted task finished inside the run.
    if data["tasks_completed"] != data["tasks"]:
        raise SystemExit(
            f"{path}: completed {data['tasks_completed']} of "
            f"{data['tasks']} tasks")
    for key in ("wall_seconds", "events_per_sec"):
        value = data.get(key)
        if not isinstance(value, (int, float)) or not math.isfinite(value) \
                or value <= 0:
            raise SystemExit(f"{path}: '{key}' is not a positive finite "
                             f"number: {value!r}")
    derived = data["total_events"] / data["wall_seconds"]
    if abs(derived - data["events_per_sec"]) > \
            SHARED_RATIO_TOLERANCE * derived:
        raise SystemExit(
            f"{path}: events_per_sec {data['events_per_sec']!r} does not "
            f"equal total_events/wall_seconds ({derived!r})")
    comp = data.get("competition")
    if not isinstance(comp, dict):
        raise SystemExit(f"{path}: missing 'competition' section")
    for key in ("isolated_rate", "shared_rate", "expected_ratio",
                "observed_ratio", "tolerance"):
        value = comp.get(key)
        if not isinstance(value, (int, float)) or not math.isfinite(value) \
                or value < 0:
            raise SystemExit(f"{path}: competition.{key} is not a "
                             f"non-negative finite number: {value!r}")
    if comp["tolerance"] <= 0:
        raise SystemExit(f"{path}: competition.tolerance is not positive: "
                         f"{comp['tolerance']!r}")
    if comp["isolated_rate"] <= 0:
        # A smoke run can end before the isolated reference accepts
        # anything; the ratio is then 0/0 and the fairness gate has no
        # denominator to check against.
        print(f"{path}: competition gate SKIPPED: isolated_rate="
              f"{comp['isolated_rate']!r} (no isolated acceptances; "
              "ratio not derivable)", file=sys.stderr)
        return data
    derived = comp["shared_rate"] / comp["isolated_rate"]
    if abs(derived - comp["observed_ratio"]) > \
            SHARED_RATIO_TOLERANCE * max(derived, 1.0):
        raise SystemExit(
            f"{path}: competition.observed_ratio "
            f"{comp['observed_ratio']!r} does not equal "
            f"shared_rate/isolated_rate ({derived!r})")
    # The fairness gate: under symmetric competition each job's acceptance
    # rate must land where the thinning model predicts (about half the
    # isolated rate for two identical saturating jobs).
    if abs(comp["observed_ratio"] - comp["expected_ratio"]) > \
            comp["tolerance"]:
        raise SystemExit(
            f"{path}: competition ratio {comp['observed_ratio']:.6f} "
            f"outside {comp['expected_ratio']:.6f} +/- "
            f"{comp['tolerance']:.6f}")
    return data


def shared_digest(data):
    """Canonical one-line-per-fact text form of a shared-market export."""
    comp = data["competition"]
    lines = [
        f"schema_version={data['schema_version']} "
        f"smoke={str(data['smoke']).lower()}",
        f"jobs={data['jobs']} min_jobs_for_gate={data['min_jobs_for_gate']} "
        f"tasks={data['tasks']} tasks_completed={data['tasks_completed']}",
        "throughput total_events=%d wall_seconds=%.17g events_per_sec=%.17g"
        % (data["total_events"], data["wall_seconds"],
           data["events_per_sec"]),
        "competition isolated_rate=%.17g shared_rate=%.17g "
        "expected_ratio=%.17g observed_ratio=%.17g tolerance=%.17g"
        % (comp["isolated_rate"], comp["shared_rate"],
           comp["expected_ratio"], comp["observed_ratio"],
           comp["tolerance"]),
    ]
    return "\n".join(lines)


def aggregate_spans(spans):
    """Per-name span aggregates, name-sorted."""
    by_name = {}
    for span in spans:
        agg = by_name.setdefault(span["name"],
                                 {"count": 0, "total_ns": 0, "max_ns": 0})
        agg["count"] += 1
        agg["total_ns"] += span["duration_ns"]
        agg["max_ns"] = max(agg["max_ns"], span["duration_ns"])
    return {name: by_name[name] for name in sorted(by_name)}


def metrics_digest(data):
    """Canonical text form of an export; %.17g matches the C++ writer, so a
    digest comparison proves the numbers survived the JSON round trip."""
    lines = [f"schema_version={data['schema_version']}"]
    for name in sorted(data["counters"]):
        lines.append(f"counter {name}={data['counters'][name]}")
    for name in sorted(data["gauges"]):
        lines.append("gauge %s=%.17g" % (name, data["gauges"][name]))
    for name in sorted(data["histograms"]):
        hist = data["histograms"][name]
        buckets = ",".join(str(b) for b in hist["buckets"])
        lines.append(
            "histogram %s lo=%.17g hi=%.17g count=%d underflow=%d "
            "overflow=%d nan=%d buckets=%s"
            % (name, hist["lo"], hist["hi"], hist["count"],
               hist["underflow"], hist["overflow"], hist["nan_count"],
               buckets))
    lines.append(f"spans={len(data['spans'])} "
                 f"dropped={data['spans_dropped']}")
    return "\n".join(lines)


def fold_metrics(data):
    """The report's "metrics" entry: raw scalars, summarized distributions."""
    return {
        "schema_version": data["schema_version"],
        "counters": dict(sorted(data["counters"].items())),
        "gauges": dict(sorted(data["gauges"].items())),
        "histograms": {
            name: {
                "lo": hist["lo"],
                "hi": hist["hi"],
                "count": hist["count"],
                "underflow": hist["underflow"],
                "overflow": hist["overflow"],
                "nan_count": hist["nan_count"],
            }
            for name, hist in sorted(data["histograms"].items())
        },
        "spans": aggregate_spans(data["spans"]),
        "spans_dropped": data["spans_dropped"],
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin", default="build/bench/microbench",
                        help="path to the microbench binary")
    parser.add_argument("--out", default="BENCH_tuning.json",
                        help="output JSON path")
    parser.add_argument("--min-time", default="0.1",
                        help="--benchmark_min_time per benchmark (seconds)")
    parser.add_argument("--extra-filter", default="",
                        help="extra regex OR-ed onto the benchmark filter")
    parser.add_argument("--metrics", default="",
                        help="observability metrics JSON (htune_cli "
                             "--metrics=PATH) to fold into the report")
    parser.add_argument("--validate-metrics", default="",
                        help="validate a metrics JSON export, print its "
                             "canonical digest, and exit")
    parser.add_argument("--chaos", default="",
                        help="validate a bench/chaos_soak JSON export "
                             "(convergence + overhead gate), print its "
                             "canonical digest, and exit")
    parser.add_argument("--market", default="",
                        help="validate a bench/market_throughput JSON "
                             "export (shape + ratio consistency + speedup "
                             "gate), print its canonical digest, and exit")
    parser.add_argument("--fleet", default="",
                        help="validate a bench/fleet_soak JSON export "
                             "(supervision-overhead gate + quarantine "
                             "exactness), print its canonical digest, and "
                             "exit")
    parser.add_argument("--shared", default="",
                        help="validate a bench/shared_market JSON export "
                             "(concurrency + completion + competition-ratio "
                             "gates), print its canonical digest, and exit")
    args = parser.parse_args()

    if args.validate_metrics:
        print(metrics_digest(load_metrics(args.validate_metrics)))
        return
    if args.chaos:
        print(chaos_digest(load_chaos(args.chaos)))
        return
    if args.market:
        print(market_digest(load_market(args.market)))
        return
    if args.fleet:
        print(fleet_digest(load_fleet(args.fleet)))
        return
    if args.shared:
        print(shared_digest(load_shared(args.shared)))
        return

    raw = run_benchmarks(args.bin, args.min_time, args.extra_filter)
    benchmarks = [
        {
            "name": b["name"],
            "real_time": b["real_time"],
            "cpu_time": b["cpu_time"],
            "time_unit": b["time_unit"],
            "iterations": b["iterations"],
            **({"groups": b["groups"]} if "groups" in b else {}),
        }
        for b in raw.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    ]
    report = {
        "context": {
            key: raw.get("context", {}).get(key)
            for key in ("host_name", "num_cpus", "mhz_per_cpu",
                        "library_build_type")
        },
        "allocator_speedup_vs_cloned_curves": speedups(benchmarks),
        "benchmarks": benchmarks,
    }
    if args.metrics:
        report["metrics"] = fold_metrics(load_metrics(args.metrics))
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    for entry in report["allocator_speedup_vs_cloned_curves"]:
        print(f"{entry['groups']} groups: {entry['speedup']:.2f}x "
              f"({entry['baseline_ms']:.1f} -> {entry['shared_cache_ms']:.1f})")
    print(f"wrote {args.out} ({len(benchmarks)} benchmarks)")


if __name__ == "__main__":
    main()
