#!/usr/bin/env python3
"""Run the tuning microbenchmarks and distill a BENCH_tuning.json snapshot.

Runs the google-benchmark `microbench` binary with --benchmark_format=json,
keeps the allocator end-to-end and parallel-runtime entries, and computes the
shared-cache speedup (Baseline / ManyGroups wall time at each group count).
Stdlib only; no third-party packages.

Usage:
  tools/bench_report.py --bin build/bench/microbench --out BENCH_tuning.json \
      [--min-time 0.1] [--extra-filter REGEX] [--metrics METRICS_JSON]
  tools/bench_report.py --validate-metrics METRICS_JSON
  tools/bench_report.py --chaos CHAOS_JSON

--metrics folds an observability export (htune_cli --metrics=PATH, schema
version 1; see src/obs/export.h) into the report under a "metrics" key:
counters and gauges verbatim, histograms summarized, spans aggregated per
name. --validate-metrics parses an export, checks every invariant the
schema promises (finite numbers, histogram count arithmetic, span field
sanity), prints a canonical digest, and exits nonzero on any violation —
the C++ round-trip test drives this mode.

--chaos parses a bench/chaos_soak --out=PATH export, re-checks the two
gates it encodes (every chaos schedule converged to the fault-free
reference; fault-free resilience overhead within the gated ratio), prints
a canonical digest, and exits nonzero on any violation — CI's chaos job
drives this mode after the bench smoke run.
"""

import argparse
import json
import math
import re
import subprocess
import sys

METRICS_SCHEMA_VERSION = 1

# Benchmarks the report tracks: allocator end-to-end costs plus the parallel
# runtime primitives they are built on.
FILTER = (
    "ManyGroups|LatencyCacheHit|ParallelForOverhead|ParallelMonteCarlo"
    "|BM_RepetitionAllocator/|BM_HeterogeneousAllocator/"
)


def run_benchmarks(binary, min_time, extra_filter):
    bench_filter = FILTER
    if extra_filter:
        bench_filter = f"{bench_filter}|{extra_filter}"
    cmd = [
        binary,
        f"--benchmark_filter={bench_filter}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed: {' '.join(cmd)}")
    return json.loads(proc.stdout)


def speedups(benchmarks):
    """Baseline / shared-cache time ratio per group-count argument."""
    times = {}
    for entry in benchmarks:
        name = entry.get("name", "")
        match = re.fullmatch(
            r"BM_RepetitionAllocatorManyGroups(Baseline)?/(\d+)", name)
        if not match:
            continue
        variant = "baseline" if match.group(1) else "shared"
        # User counters surface as top-level keys in the JSON entries.
        groups = int(entry.get("groups", 0))
        times.setdefault(groups, {})[variant] = entry["real_time"]
    out = []
    for groups in sorted(times):
        pair = times[groups]
        if "baseline" in pair and "shared" in pair and pair["shared"] > 0:
            out.append({
                "groups": groups,
                "shared_cache_ms": pair["shared"],
                "baseline_ms": pair["baseline"],
                "speedup": pair["baseline"] / pair["shared"],
            })
    return out


def load_metrics(path):
    """Parses and validates an observability metrics export."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema_version") != METRICS_SCHEMA_VERSION:
        raise SystemExit(
            f"{path}: unsupported metrics schema_version "
            f"{data.get('schema_version')!r} (expected "
            f"{METRICS_SCHEMA_VERSION})")
    for section in ("counters", "gauges", "histograms", "spans"):
        if section not in data:
            raise SystemExit(f"{path}: missing '{section}' section")
    for name, value in data["counters"].items():
        if not isinstance(value, int) or value < 0:
            raise SystemExit(f"{path}: counter {name} is not a non-negative "
                             f"integer: {value!r}")
    for name, value in data["gauges"].items():
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            raise SystemExit(f"{path}: gauge {name} is not finite: {value!r}")
    for name, hist in data["histograms"].items():
        for bound in ("lo", "hi"):
            if not math.isfinite(hist[bound]):
                raise SystemExit(f"{path}: histogram {name} {bound} is not "
                                 f"finite: {hist[bound]!r}")
        if not hist["lo"] < hist["hi"]:
            raise SystemExit(f"{path}: histogram {name} has lo >= hi")
        parts = (sum(hist["buckets"]) + hist["underflow"] + hist["overflow"]
                 + hist["nan_count"])
        if parts != hist["count"]:
            raise SystemExit(
                f"{path}: histogram {name} count {hist['count']} != "
                f"buckets+underflow+overflow+nan {parts}")
    for span in data["spans"]:
        for key in ("id", "parent_id", "start_ns", "duration_ns", "depth",
                    "thread"):
            if not isinstance(span.get(key), int) or span[key] < 0:
                raise SystemExit(f"{path}: span {span.get('name')!r} has a "
                                 f"bad '{key}' field: {span.get(key)!r}")
        if span["id"] == 0:
            raise SystemExit(f"{path}: span {span.get('name')!r} has id 0 "
                             "(ids start at 1)")
    if data.get("spans_dropped", 0) < 0:
        raise SystemExit(f"{path}: negative spans_dropped")
    return data


CHAOS_SCHEMA_VERSION = 1


def load_chaos(path):
    """Parses and validates a bench/chaos_soak --out export."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema_version") != CHAOS_SCHEMA_VERSION:
        raise SystemExit(
            f"{path}: unsupported chaos schema_version "
            f"{data.get('schema_version')!r} (expected "
            f"{CHAOS_SCHEMA_VERSION})")
    for key in ("schedules", "converged", "crashes", "faults_healed"):
        if not isinstance(data.get(key), int) or data[key] < 0:
            raise SystemExit(f"{path}: '{key}' is not a non-negative "
                             f"integer: {data.get(key)!r}")
    if data["converged"] != data["schedules"]:
        raise SystemExit(
            f"{path}: only {data['converged']} of {data['schedules']} chaos "
            "schedules converged to the fault-free reference")
    overhead = data.get("fault_free_overhead")
    if not isinstance(overhead, dict):
        raise SystemExit(f"{path}: missing 'fault_free_overhead' section")
    for key in ("on_ms", "off_ms", "ratio", "max_ratio"):
        value = overhead.get(key)
        if not isinstance(value, (int, float)) or not math.isfinite(value) \
                or value <= 0:
            raise SystemExit(f"{path}: fault_free_overhead.{key} is not a "
                             f"positive finite number: {value!r}")
    if overhead["ratio"] > overhead["max_ratio"]:
        raise SystemExit(
            f"{path}: fault-free overhead ratio {overhead['ratio']:.4f} "
            f"exceeds the gated maximum {overhead['max_ratio']:.4f}")
    latency = data.get("recovery_latency_ms")
    if not isinstance(latency, dict):
        raise SystemExit(f"{path}: missing 'recovery_latency_ms' section")
    if not isinstance(latency.get("count"), int) or latency["count"] < 0:
        raise SystemExit(f"{path}: recovery_latency_ms.count is not a "
                         f"non-negative integer: {latency.get('count')!r}")
    for key in ("min", "mean", "max", "fresh_run_ms"):
        value = latency.get(key)
        if not isinstance(value, (int, float)) or not math.isfinite(value) \
                or value < 0:
            raise SystemExit(f"{path}: recovery_latency_ms.{key} is not a "
                             f"non-negative finite number: {value!r}")
    if latency["count"] > 0 and not (
            latency["min"] <= latency["mean"] <= latency["max"]):
        raise SystemExit(
            f"{path}: recovery latency min/mean/max are not ordered: "
            f"{latency['min']!r}/{latency['mean']!r}/{latency['max']!r}")
    return data


def chaos_digest(data):
    """Canonical one-line-per-fact text form of a chaos export."""
    overhead = data["fault_free_overhead"]
    latency = data["recovery_latency_ms"]
    lines = [
        f"schema_version={data['schema_version']}",
        f"schedules={data['schedules']} converged={data['converged']} "
        f"crashes={data['crashes']} faults_healed={data['faults_healed']}",
        "overhead on_ms=%.17g off_ms=%.17g ratio=%.17g max_ratio=%.17g"
        % (overhead["on_ms"], overhead["off_ms"], overhead["ratio"],
           overhead["max_ratio"]),
        "recovery count=%d min_ms=%.17g mean_ms=%.17g max_ms=%.17g "
        "fresh_run_ms=%.17g"
        % (latency["count"], latency["min"], latency["mean"], latency["max"],
           latency["fresh_run_ms"]),
    ]
    return "\n".join(lines)


def aggregate_spans(spans):
    """Per-name span aggregates, name-sorted."""
    by_name = {}
    for span in spans:
        agg = by_name.setdefault(span["name"],
                                 {"count": 0, "total_ns": 0, "max_ns": 0})
        agg["count"] += 1
        agg["total_ns"] += span["duration_ns"]
        agg["max_ns"] = max(agg["max_ns"], span["duration_ns"])
    return {name: by_name[name] for name in sorted(by_name)}


def metrics_digest(data):
    """Canonical text form of an export; %.17g matches the C++ writer, so a
    digest comparison proves the numbers survived the JSON round trip."""
    lines = [f"schema_version={data['schema_version']}"]
    for name in sorted(data["counters"]):
        lines.append(f"counter {name}={data['counters'][name]}")
    for name in sorted(data["gauges"]):
        lines.append("gauge %s=%.17g" % (name, data["gauges"][name]))
    for name in sorted(data["histograms"]):
        hist = data["histograms"][name]
        buckets = ",".join(str(b) for b in hist["buckets"])
        lines.append(
            "histogram %s lo=%.17g hi=%.17g count=%d underflow=%d "
            "overflow=%d nan=%d buckets=%s"
            % (name, hist["lo"], hist["hi"], hist["count"],
               hist["underflow"], hist["overflow"], hist["nan_count"],
               buckets))
    lines.append(f"spans={len(data['spans'])} "
                 f"dropped={data['spans_dropped']}")
    return "\n".join(lines)


def fold_metrics(data):
    """The report's "metrics" entry: raw scalars, summarized distributions."""
    return {
        "schema_version": data["schema_version"],
        "counters": dict(sorted(data["counters"].items())),
        "gauges": dict(sorted(data["gauges"].items())),
        "histograms": {
            name: {
                "lo": hist["lo"],
                "hi": hist["hi"],
                "count": hist["count"],
                "underflow": hist["underflow"],
                "overflow": hist["overflow"],
                "nan_count": hist["nan_count"],
            }
            for name, hist in sorted(data["histograms"].items())
        },
        "spans": aggregate_spans(data["spans"]),
        "spans_dropped": data["spans_dropped"],
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin", default="build/bench/microbench",
                        help="path to the microbench binary")
    parser.add_argument("--out", default="BENCH_tuning.json",
                        help="output JSON path")
    parser.add_argument("--min-time", default="0.1",
                        help="--benchmark_min_time per benchmark (seconds)")
    parser.add_argument("--extra-filter", default="",
                        help="extra regex OR-ed onto the benchmark filter")
    parser.add_argument("--metrics", default="",
                        help="observability metrics JSON (htune_cli "
                             "--metrics=PATH) to fold into the report")
    parser.add_argument("--validate-metrics", default="",
                        help="validate a metrics JSON export, print its "
                             "canonical digest, and exit")
    parser.add_argument("--chaos", default="",
                        help="validate a bench/chaos_soak JSON export "
                             "(convergence + overhead gate), print its "
                             "canonical digest, and exit")
    args = parser.parse_args()

    if args.validate_metrics:
        print(metrics_digest(load_metrics(args.validate_metrics)))
        return
    if args.chaos:
        print(chaos_digest(load_chaos(args.chaos)))
        return

    raw = run_benchmarks(args.bin, args.min_time, args.extra_filter)
    benchmarks = [
        {
            "name": b["name"],
            "real_time": b["real_time"],
            "cpu_time": b["cpu_time"],
            "time_unit": b["time_unit"],
            "iterations": b["iterations"],
            **({"groups": b["groups"]} if "groups" in b else {}),
        }
        for b in raw.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    ]
    report = {
        "context": {
            key: raw.get("context", {}).get(key)
            for key in ("host_name", "num_cpus", "mhz_per_cpu",
                        "library_build_type")
        },
        "allocator_speedup_vs_cloned_curves": speedups(benchmarks),
        "benchmarks": benchmarks,
    }
    if args.metrics:
        report["metrics"] = fold_metrics(load_metrics(args.metrics))
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    for entry in report["allocator_speedup_vs_cloned_curves"]:
        print(f"{entry['groups']} groups: {entry['speedup']:.2f}x "
              f"({entry['baseline_ms']:.1f} -> {entry['shared_cache_ms']:.1f})")
    print(f"wrote {args.out} ({len(benchmarks)} benchmarks)")


if __name__ == "__main__":
    main()
