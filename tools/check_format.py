#!/usr/bin/env python3
"""Diff-mode clang-format check for htune.

Verifies that files conform to the checked-in .clang-format. The default
--changed mode checks only files the current branch touches, so the tree
never needs a big-bang reformat: formatting debt is paid off line-by-line
as files are edited. --fix rewrites the files in place instead of
checking.

Exit codes: 0 clean, 1 violations, 2 environment error. Pure stdlib.
"""

import argparse
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from run_tidy import git_changed_files  # noqa: E402

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")
CHECKED_DIRS = ("src/", "tools/", "tests/", "bench/", "examples/")


def find_clang_format():
    explicit = os.environ.get("CLANG_FORMAT")
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-format", "clang-format-18", "clang-format-17",
                 "clang-format-16", "clang-format-15", "clang-format-14"):
        if shutil.which(name):
            return name
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="check (or fix) formatting against .clang-format")
    parser.add_argument("files", nargs="*",
                        help="explicit files (default: --changed set)")
    parser.add_argument("--changed", action="store_true", default=False,
                        help="check files changed relative to --base "
                             "(implied when no files are given)")
    parser.add_argument("--base", default="origin/main")
    parser.add_argument("--fix", action="store_true",
                        help="reformat in place instead of checking")
    args = parser.parse_args(argv)

    clang_format = find_clang_format()
    if clang_format is None:
        print("check_format: clang-format not found on PATH (set "
              "CLANG_FORMAT to override)", file=sys.stderr)
        return 2

    if args.files:
        files = [os.path.abspath(f) for f in args.files]
    else:
        files = [os.path.join(REPO_ROOT, rel)
                 for rel in git_changed_files(args.base)
                 if rel.endswith(CXX_EXTENSIONS)
                 and rel.startswith(CHECKED_DIRS)
                 # Linter fixtures stay byte-exact on purpose.
                 and not rel.startswith("tests/lint_fixtures/")]
        files = [f for f in files if os.path.exists(f)]
    if not files:
        print("check_format: no files to check")
        return 0

    if args.fix:
        subprocess.run([clang_format, "-i", "--style=file"] + files,
                       check=False)
        print(f"check_format: reformatted {len(files)} file(s)")
        return 0

    violations = 0
    for path in files:
        result = subprocess.run(
            [clang_format, "--dry-run", "--Werror", "--style=file", path],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        if result.returncode != 0:
            violations += 1
            sys.stderr.write(result.stderr)
    rel = "file(s)"
    print(f"check_format: {len(files)} {rel} checked, "
          f"{violations} need reformatting")
    if violations:
        print("check_format: run tools/check_format.py --fix to fix",
              file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
